"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml; this file additionally enables
`python setup.py develop` in fully offline environments.
"""
from setuptools import setup

setup()
