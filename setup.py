"""Distribution metadata.

Kept in setup.py (rather than pyproject's ``[project]`` table) so
``python setup.py develop`` works in fully offline environments without
the ``wheel`` package; pyproject.toml carries only the build backend and
lint configuration.

NumPy is an optional accelerator (``pip install -e '.[numpy]'``): it
unlocks the ``"numpy"`` mmap page storage backend, vectorizes the
columnar backend's construction, and speeds the statistics/shuffle
modules, while the core motif models run on the pure-Python paths
without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro-temporal-motifs",
    version="0.3.0",
    description=(
        "Reproduction of ICDE'22 temporal-motif model comparison: four motif "
        "models, null-model experiments, pluggable storage engines, and a "
        "sharded parallel census engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "numpy": ["numpy>=1.22"],
    },
)
