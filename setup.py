"""Distribution metadata.

Kept in setup.py (rather than pyproject's ``[project]`` table) so
``python setup.py develop`` works in fully offline environments without
the ``wheel`` package; pyproject.toml carries only the build backend and
lint configuration.

NumPy is an optional accelerator (``pip install -e '.[numpy]'``): it
unlocks the ``"numpy"`` mmap page storage backend, vectorizes the
columnar backend's construction, and speeds the statistics/shuffle
modules, while the core motif models run on the pure-Python paths
without it.

Numba is a second, stacked accelerator (``pip install -e
'.[numpy,native]'``): it registers the JIT ``"native"`` execution-engine
kernel (``repro.engine.native``), which the numpy backend advertises and
which demotes to the vectorized numpy kernel — then to generic — when
the import fails (see ``repro.engine.kernels.KERNEL_FALLBACKS``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-temporal-motifs",
    version="0.3.0",
    description=(
        "Reproduction of ICDE'22 temporal-motif model comparison: four motif "
        "models, null-model experiments, pluggable storage engines, and a "
        "sharded parallel census engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        "numpy": ["numpy>=1.22"],
        # The JIT kernel tier sits on top of the numpy backend's flat
        # arrays, so install as '.[numpy,native]'.
        "native": ["numba>=0.57"],
    },
)
