"""Ablation benchmarks for the design choices DESIGN.md calls out.

* sampling accuracy/speed trade-off (root sampling vs exact counting),
* the cost of the ΔW bound relative to ΔC (window pruning effectiveness),
* resolution degrading's effect on counts (the Table 4 preamble: ~80 %
  count loss at 300 s in message networks, much less on Q&A sites).
"""

import numpy as np
import pytest

from repro.algorithms.counting import count_motifs
from repro.algorithms.sampling import (
    estimate_counts_root_sampling,
    relative_error,
)
from repro.core.constraints import TimingConstraints
from repro.datasets.registry import get_dataset

CONSTRAINTS = TimingConstraints(delta_c=1500, delta_w=3000)


@pytest.fixture(scope="module")
def sms():
    return get_dataset("sms-copenhagen", scale=0.25)


def test_exact_counting_baseline(benchmark, sms):
    counts = benchmark(lambda: count_motifs(sms, 3, CONSTRAINTS, max_nodes=3))
    assert sum(counts.values()) > 0


def test_sampled_counting_q01(benchmark, sms):
    """Root sampling at q=0.1 — the speed side of the trade-off."""
    rng_seed = [0]

    def sample():
        rng_seed[0] += 1
        return estimate_counts_root_sampling(
            sms,
            3,
            CONSTRAINTS,
            q=0.1,
            max_nodes=3,
            rng=np.random.default_rng(rng_seed[0]),
        )

    estimate = benchmark(sample)
    exact = count_motifs(sms, 3, CONSTRAINTS, max_nodes=3)
    # accuracy side: a single q=0.1 sample lands within 60 % relative error
    # on this workload (averaging samples tightens it; see tests).
    assert relative_error(exact, estimate) < 0.6


def test_delta_w_pruning_effectiveness(benchmark, sms):
    """Adding ΔW on top of ΔC should not be slower than only-ΔC (it only
    tightens the search deadline)."""
    only_c = TimingConstraints.only_c(1500)

    def run_both():
        a = count_motifs(sms, 3, only_c, max_nodes=3)
        b = count_motifs(sms, 3, CONSTRAINTS, max_nodes=3)
        return a, b

    a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # ΔW=3000 with ΔC=1500 and m=3 is the only-ΔC regime: identical counts.
    assert a == b


def test_resolution_degrading_count_loss(benchmark, bench_scale):
    """Table 4 preamble: degrading message networks to 300 s loses most
    motifs; networks with large inter-event times (bitcoin: m(Δt) in the
    thousands of seconds) lose far less."""
    del bench_scale

    def measure():
        out = {}
        for name in ("sms-copenhagen", "bitcoin-otc"):
            g = get_dataset(name, scale=0.5)
            fine = sum(
                count_motifs(g, 3, TimingConstraints.only_c(1500),
                             max_nodes=3, node_counts={3}).values()
            )
            coarse = sum(
                count_motifs(g.degrade_resolution(300), 3,
                             TimingConstraints.only_c(1500),
                             max_nodes=3, node_counts={3}).values()
            )
            out[name] = coarse / max(fine, 1)
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("survival after 300s degrading:", ratios)
    # the dense message network loses more than the sparse ratings network
    assert ratios["sms-copenhagen"] < ratios["bitcoin-otc"]


def test_fast_two_node_counter_vs_engine(benchmark, sms):
    """Paranjape-style DP vs the generic engine on two-node motifs.

    The DP must agree exactly and is expected to be substantially faster
    (it skips instance materialization entirely).
    """
    from collections import Counter

    from repro.algorithms.fast2node import count_two_node_motifs

    delta_w = 3000.0
    fast = benchmark(lambda: count_two_node_motifs(sms, 3, delta_w))
    engine = Counter(
        count_motifs(
            sms,
            3,
            TimingConstraints.only_w(delta_w),
            max_nodes=2,
            node_counts={2},
        )
    )
    assert fast == engine
