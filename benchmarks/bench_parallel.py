"""Parallel-census speedup curves: workers × storage backends.

Times the end-to-end 3-event motif census on a generated 100k-event
stream for every registered storage backend at 1/2/4/8 workers, and
reports wall-clock speedup relative to the serial run.  Parity is
asserted on every timed run — a parallel census that returned different
counts would be a correctness bug, not a speedup.

Run under pytest-benchmark like the other kernels, or standalone for a
comparison table and a BENCH-format JSON record::

    PYTHONPATH=src python benchmarks/bench_parallel.py --events 20000 \
        --jobs 1 2 4 --json bench_parallel.json

The JSON payload mirrors ``bench_storage.py --json``: a ``benchmark``
name, the generating ``config``, and a flat ``results`` list — one row
per (backend, jobs) cell — so CI can archive both files side by side.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace

import pytest

from bench_storage import CONSTRAINTS, STREAM_CONFIG, _best_of
from repro.algorithms.counting import run_census
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import generate
from repro.storage import available_backends

# The out-of-core partitioned backend has its own harness
# (bench_outofcore.py); the in-memory engines race here.
BACKENDS = tuple(b for b in available_backends() if b != "partitioned")

#: Worker counts of the speedup curve (1 = the serial baseline).
JOBS_CURVE = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def small_stream_events():
    return generate(replace(STREAM_CONFIG, n_events=10_000), seed=42).events


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("jobs", (1, 2))
def test_census_sharded(benchmark, small_stream_events, backend, jobs):
    graph = TemporalGraph(small_stream_events, backend=backend)
    census = benchmark(
        lambda: run_census(graph, 3, CONSTRAINTS, max_nodes=3, jobs=jobs),
    )
    assert census.total > 0


def compare(
    n_events: int = STREAM_CONFIG.n_events,
    jobs_curve: tuple[int, ...] = JOBS_CURVE,
    rounds: int = 3,
) -> dict:
    """Best-of-``rounds`` census seconds per (backend, jobs) cell."""
    config = replace(STREAM_CONFIG, n_events=n_events)
    events = generate(config, seed=42).events
    results: list[dict] = []
    for backend in BACKENDS:
        graph = TemporalGraph(events, backend=backend)
        serial_census = run_census(graph, 3, CONSTRAINTS, max_nodes=3)
        baseline: float | None = None
        for jobs in jobs_curve:
            census = run_census(graph, 3, CONSTRAINTS, max_nodes=3, jobs=jobs)
            if census.code_counts != serial_census.code_counts:
                raise AssertionError(
                    f"parallel census diverged (backend={backend}, jobs={jobs})",
                )
            seconds = _best_of(
                lambda: run_census(graph, 3, CONSTRAINTS, max_nodes=3, jobs=jobs),
                rounds=rounds,
            )
            if baseline is None:
                baseline = seconds
            results.append(
                {
                    "backend": backend,
                    "jobs": jobs,
                    "seconds": seconds,
                    "speedup": baseline / seconds,
                }
            )
    return {
        "benchmark": "bench_parallel",
        "config": {
            "n_events": n_events,
            "jobs_curve": list(jobs_curve),
            "rounds": rounds,
            "backends": list(BACKENDS),
            "delta_c": CONSTRAINTS.delta_c,
            "delta_w": CONSTRAINTS.delta_w,
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - manual tool
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=STREAM_CONFIG.n_events,
        help="stream size (default 100k, the acceptance-bar census)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=list(JOBS_CURVE),
        help="worker counts to time (first one is the speedup baseline)",
    )
    parser.add_argument("--rounds", type=int, default=3, help="best-of rounds per cell")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    payload = compare(args.events, tuple(args.jobs), rounds=args.rounds)
    print(f"{'backend':<10}{'jobs':>6}{'seconds':>12}{'speedup':>10}")
    for row in payload["results"]:
        print(
            f"{row['backend']:<10}{row['jobs']:>6}"
            f"{row['seconds'] * 1000:>10.1f}ms{row['speedup']:>9.2f}x"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
