"""Bench: Table 7 (appendix) — full 32-motif proportion-change table."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table7(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table7", scale=bench_scale)
    )
    print()
    print(result.text)

    per_dataset = result.data["proportion_changes"]
    for name, changes in per_dataset.items():
        assert len(changes) == 32, name
        # proportion changes over the full universe sum to ~0 (share moves
        # between motifs, it doesn't appear or vanish).
        assert abs(sum(changes.values())) < 1e-6, name
