"""Bench: Figure 5 — motif timespan distributions across configs."""

from conftest import run_once

from repro.experiments import run_experiment


def test_figure5(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("figure5", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    for name, per_config in data.items():
        only_c = per_config["only-ΔC"]
        only_w = per_config["only-ΔW"]
        if only_c["summary"].count < 50 or only_w["summary"].count < 50:
            continue
        # 1. Distributions regularize toward only-ΔW (uniformity rises).
        assert only_w["uniformity"] >= only_c["uniformity"] - 0.03, name
        # 2. Only-ΔW hard-caps the timespan at ΔW = 3000 s.
        assert only_w["summary"].maximum <= 3000, name
        # 3. Instance sets grow with the ΔC/ΔW ratio (subset property).
        assert only_w["summary"].count >= only_c["summary"].count, name
