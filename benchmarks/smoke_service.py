"""CI smoke drill for the census service: boot, query, stream, shut down.

The scripted client mix the ``service-smoke`` CI job runs against a
server booted on a registered dataset:

1. ``health`` — workers up, graph loaded;
2. ``census`` — bit-identical to a serial :func:`run_census` over the
   same (deterministic) dataset, key order included;
3. three ``window`` queries — each bit-identical to a serial census of
   the slice;
4. a ``push`` stream fed in batches — trailing-window counters equal to
   a local :class:`OnlineCensus` fed the same events;
5. ``stats`` — server + worker observability snapshots merged, request
   counters consistent with the mix just sent;
6. clean shutdown — no worker deaths, listener closed.

Exit code 0 when every assertion holds, 1 otherwise.  Run it locally::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import sys
import traceback

from repro.algorithms.counting import run_census
from repro.core.constraints import TimingConstraints
from repro.datasets.registry import get_dataset
from repro.online import OnlineCensus
from repro.service.client import ServiceClient
from repro.service.server import start_in_thread
from repro.service.workers import _serialize_census

DATASET = "sms-copenhagen"
SCALE = 0.1
CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)
STREAM_WINDOW = 6000.0


def _wire(payload):
    import json

    return json.loads(json.dumps(payload))


def check(label: str, ok: bool, detail: str = "") -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f" — {detail}" if detail else ""))
    if not ok:
        raise AssertionError(f"{label}: {detail}")


def main() -> int:
    print(f"booting census service on {DATASET!r} scale={SCALE} (2 workers)...")
    graph = get_dataset(DATASET, scale=SCALE)  # deterministic: the oracle graph
    handle = start_in_thread(dataset=DATASET, scale=SCALE, workers=2)
    try:
        with ServiceClient(handle.host, handle.port) as client:
            health = client.health()
            check("health", health["status"] == "ok", str(health))
            check(
                "graph loaded",
                health["graph"].get("events") == len(graph.events),
                f"served {health['graph'].get('events')} != {len(graph.events)}",
            )

            oracle = _wire(_serialize_census(run_census(graph, 3, CONSTRAINTS, max_nodes=3)))
            got = client.census(
                delta_c=CONSTRAINTS.delta_c, delta_w=CONSTRAINTS.delta_w,
                n_events=3, max_nodes=3,
            )
            got.pop("elapsed", None)
            check("census parity", got == oracle)
            check("census key order", list(got["codes"]) == list(oracle["codes"]))

            times = graph.times
            for k in (1, 2, 3):
                t_hi = times[(len(times) * k) // 4]
                t_lo = max(times[0], t_hi - 4 * CONSTRAINTS.delta_w)
                w_oracle = _wire(
                    _serialize_census(
                        run_census(graph.slice(t_lo, t_hi), 3, CONSTRAINTS, max_nodes=3)
                    )
                )
                w_got = client.window(
                    t_lo, t_hi, delta_c=CONSTRAINTS.delta_c,
                    delta_w=CONSTRAINTS.delta_w, n_events=3, max_nodes=3,
                )
                w_got.pop("elapsed", None)
                check(f"window parity [{t_lo:.0f}, {t_hi:.0f}]", w_got == w_oracle)

            # Push stream vs a local online engine fed the same events.
            stream_events = [(e.u, e.v, e.t) for e in graph.events[:600]]
            local = OnlineCensus(3, CONSTRAINTS, STREAM_WINDOW, max_nodes=3)
            for start in range(0, len(stream_events), 200):
                batch = stream_events[start : start + 200]
                pushed = client.push(
                    batch, stream="smoke", window=STREAM_WINDOW,
                    delta_c=CONSTRAINTS.delta_c, delta_w=CONSTRAINTS.delta_w,
                    n_events=3, max_nodes=3, want_counts=True,
                )
                for ev in batch:
                    local.push(ev)
                check(
                    f"push batch @{start} accepted", pushed["accepted"] == len(batch)
                )
                check(
                    f"push batch @{start} parity",
                    pushed["codes"] == dict(local.counts())
                    and pushed["now"] == local.now,
                )
            check("stream close", client.stream_close("smoke")["closed"] is True)

            stats = client.stats(timeout=30)
            service = stats["service"]
            counters = stats["metrics"]["counters"]
            check("stats: both worker snapshots", service["worker_snapshots"] == 2)
            check(
                "stats: request counters",
                counters.get("service.requests{op=census}", 0) >= 1
                and counters.get("service.requests{op=window}", 0) >= 3
                and counters.get("service.push.events", 0) == len(stream_events),
            )
            check("stats: no worker deaths", service["pool"]["deaths"] == 0)
            check(
                "stats: request latency histograms",
                "service.request.seconds{op=census}" in stats["metrics"]["histograms"],
            )
    finally:
        handle.stop()
    check("clean shutdown", not handle._thread.is_alive())
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception:
        traceback.print_exc()
        sys.exit(1)
