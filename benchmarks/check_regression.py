"""CI perf-regression gate: compare fresh BENCH records against baselines.

Both ``bench_storage.py --json`` and ``bench_parallel.py --json`` emit the
same record shape — a ``benchmark`` name, a ``config`` block, and a flat
``results`` list whose rows carry identifying fields (backend, kernel,
jobs, ...) plus a ``seconds`` measurement.  This tool joins a fresh record
against a committed baseline row-by-row and fails when any kernel got more
than ``--threshold`` times slower (default 1.5x).

Because CI runners and developer machines differ in absolute speed, the
default comparison is **machine-normalized**: every kernel's fresh/base
ratio is divided by the median ratio across all kernels, so a uniformly
slower (or faster) machine cancels out and only a kernel that regressed
*relative to the others* trips the gate.  ``--absolute`` compares raw
ratios instead, for same-machine tracking.

Normalization cancels only *uniform* machine differences, so dimensions
that scale non-uniformly with the host — the worker counts of
``bench_parallel``, whose jobs>1 rows speed up with the core count —
must be excluded from gating with ``--filter`` (CI gates the parallel
record with ``--filter jobs=1``: the serial census rows are guarded,
the speedup curves are archived as artifacts only).

Typical CI invocation (see ``.github/workflows/ci.yml``)::

    python benchmarks/check_regression.py \
        benchmarks/baselines/BENCH_storage.json \
        bench-artifacts/bench_storage.json

Updating baselines after an intentional perf change::

    PYTHONPATH=src python benchmarks/bench_storage.py --events 20000 \
        --json benchmarks/baselines/BENCH_storage.json
    PYTHONPATH=src python benchmarks/bench_parallel.py --events 20000 \
        --jobs 1 2 4 --rounds 2 --json benchmarks/baselines/BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import statistics

#: Measurement fields: everything else in a result row identifies the kernel.
#: ``warmup`` (bench_engine's per-kernel first-call cost: lazy indices +
#: JIT compilation) is a measurement, not an identity field — the gate
#: compares steady-state seconds only.
MEASUREMENTS = ("seconds", "speedup", "warmup")


def row_key(row: dict) -> tuple:
    """The identifying fields of one result row, as a stable key."""
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASUREMENTS))


def load_results(
    path: str, row_filter: dict[str, str] | None = None
) -> tuple[str, dict[tuple, float]]:
    """Read a BENCH json record into ``(benchmark name, key -> seconds)``."""
    with open(path) as fh:
        payload = json.load(fh)
    out: dict[tuple, float] = {}
    for row in payload.get("results", ()):
        if row_filter and any(
            str(row.get(k)) != v for k, v in row_filter.items()
        ):
            continue
        out[row_key(row)] = float(row["seconds"])
    if not out:
        raise SystemExit(f"{path}: no results rows found (filter: {row_filter})")
    return payload.get("benchmark", "?"), out


def label(key: tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def check(
    baseline_path: str,
    fresh_path: str,
    *,
    threshold: float,
    absolute: bool,
    min_seconds: float,
    row_filter: dict[str, str] | None = None,
) -> int:
    """Compare one record pair; print a verdict table; return an exit code."""
    base_name, baseline = load_results(baseline_path, row_filter)
    fresh_name, fresh = load_results(fresh_path, row_filter)
    if base_name != fresh_name:
        print(f"FAIL: comparing {fresh_name!r} against a {base_name!r} baseline")
        return 1

    missing = sorted(set(baseline) - set(fresh), key=label)
    extra = sorted(set(fresh) - set(baseline), key=label)
    shared = [k for k in baseline if k in fresh]
    if not shared:
        print("FAIL: baseline and fresh records share no kernels")
        return 1

    ratios = {k: fresh[k] / max(baseline[k], 1e-12) for k in shared}
    scale = 1.0 if absolute else statistics.median(ratios.values())
    mode = "absolute" if absolute else f"machine-normalized (median ratio {scale:.2f})"
    print(f"{base_name}: {len(shared)} kernels, threshold {threshold:.2f}x, {mode}\n")
    print(f"{'kernel':<44}{'base':>10}{'fresh':>10}{'ratio':>8}  verdict")

    failures = []
    for key in shared:
        ratio = ratios[key] / scale
        verdict = "ok"
        if baseline[key] < min_seconds and fresh[key] < min_seconds:
            # Sub-floor kernels flap on scheduler noise; a real regression
            # of a fast kernel crosses the floor and is gated normally.
            verdict = "ok (below noise floor)"
        elif ratio > threshold:
            verdict = "REGRESSED"
            failures.append((key, ratio))
        print(
            f"{label(key):<44}{baseline[key] * 1000:>8.1f}ms"
            f"{fresh[key] * 1000:>8.1f}ms{ratio:>7.2f}x  {verdict}"
        )

    for key in extra:
        print(
            f"{label(key):<44}{'-':>10}{fresh[key] * 1000:>8.1f}ms{'':>8}"
            "  new (no baseline)"
        )
    for key in missing:
        print(
            f"{label(key):<44}{baseline[key] * 1000:>8.1f}ms{'-':>10}{'':>8}"
            "  MISSING from fresh run"
        )

    if missing or failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed >{threshold}x", end="")
        print(f", {len(missing)} kernel(s) missing" if missing else "")
        print(
            "\nIf this slowdown is intentional (or the kernel set changed), refresh\n"
            "the committed baseline and include it in the same change:\n"
            f"    PYTHONPATH=src python {_regen_hint(base_name)} --json {baseline_path}\n"
            "Otherwise, profile the regressed kernel — the fresh JSON record is\n"
            "archived as a CI artifact for comparison."
        )
        return 1
    if extra:
        print(
            f"\nOK ({len(extra)} new kernel(s) not yet in the baseline — refresh "
            f"{baseline_path} to start guarding them)"
        )
    else:
        print("\nOK: no kernel regressed")
    return 0


def _regen_hint(benchmark: str) -> str:
    if benchmark == "bench_parallel":
        return "benchmarks/bench_parallel.py --events 20000 --jobs 1 2 4 --rounds 2"
    if benchmark == "bench_online":
        return "benchmarks/bench_online.py --events 20000"
    if benchmark == "bench_engine":
        return "benchmarks/bench_engine.py --events 20000"
    if benchmark == "bench_service":
        return "benchmarks/bench_service.py --events 4000 --clients 4"
    if benchmark == "bench_outofcore":
        return (
            "benchmarks/bench_outofcore.py --events 30000 "
            "--partition-events 4096 --jobs 1 4"
        )
    return "benchmarks/bench_storage.py --events 20000"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH json baseline")
    parser.add_argument("fresh", help="freshly produced BENCH json record")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="maximum tolerated slowdown factor per kernel (default 1.5)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw seconds ratios instead of machine-normalized ones",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.002,
        help="kernels faster than this on both sides are too noisy to gate "
        "(default 2ms)",
    )
    parser.add_argument(
        "--filter",
        metavar="KEY=VALUE",
        action="append",
        default=[],
        help="gate only rows whose KEY field equals VALUE (repeatable); "
        "e.g. --filter jobs=1 compares just the serial census rows, since "
        "worker-scaling rows depend on the machine's core count and cannot "
        "be normalized across hosts",
    )
    args = parser.parse_args(argv)
    row_filter = dict(item.split("=", 1) for item in args.filter)
    return check(
        args.baseline,
        args.fresh,
        threshold=args.threshold,
        absolute=args.absolute,
        min_seconds=args.min_seconds,
        row_filter=row_filter or None,
    )


if __name__ == "__main__":
    raise SystemExit(main())
