"""Bench: Figure 6 — ordered pair-sequence heat maps and asymmetries."""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment
from repro.core.eventpairs import ALL_PAIR_TYPES, PairType

W_INDEX = list(ALL_PAIR_TYPES).index(PairType.WEAKLY_CONNECTED)
R_INDEX = list(ALL_PAIR_TYPES).index(PairType.REPETITION)


def test_figure6(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("figure6", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    for name, entry in data.items():
        matrix = np.array(entry["matrix"])
        total = matrix.sum()
        if total < 100:
            continue
        # 1. Weakly-connected sequences are rare (paper: "only a few motifs
        #    are formed by sequences including weakly-connected pairs").
        w_mass = (matrix[W_INDEX].sum() + matrix[:, W_INDEX].sum()) / total
        r_mass = (matrix[R_INDEX].sum() + matrix[:, R_INDEX].sum()) / total
        assert w_mass < r_mass, name
        # 2. Asymmetry: conveys are followed by out-bursts more than
        #    out-bursts are followed by conveys.
        assert entry["asymmetries"]["C_then_O_vs_O_then_C"] > 0, name
    # 3. Message networks lean on ping-pong sequences (reciprocal
    #    conversations) more than the calls network does — the paper's
    #    "there are less motifs formed by sequences involving ping-pongs"
    #    observation for Calls-Copenhagen.
    def p_share(name):
        m = np.array(data[name]["matrix"])
        p_index = 1  # row/col of PairType.PING_PONG
        return (m[p_index].sum() + m[:, p_index].sum()) / max(m.sum(), 1)

    assert p_share("sms-a") > p_share("calls-copenhagen")
