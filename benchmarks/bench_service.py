"""Census-service kernels: sustained concurrent load over one shared graph.

The service's reason to exist is that N clients can query one
page-directory-backed graph concurrently without N copies of it — so the
benchmark drives exactly that shape: ``--clients`` threads (>= 4 for the
acceptance drill), each with its own connection, each running a fixed
query mix (one full census + two counts + a spread of window queries)
against a server booted on a generated stream.

**Every answer is checked bit-identical** to the serial oracle computed
in this process (values *and* JSON key order — the ``merge_counts``
first-appearance contract, over the wire, under concurrency).  A
benchmark that returns wrong answers fast would be worse than useless.

Reported: sustained queries/sec across all clients, plus p50/p99
per-request latency.  Standalone run writes the BENCH-format JSON
record::

    PYTHONPATH=src:benchmarks python benchmarks/bench_service.py \
        --events 4000 --clients 4 --json bench_service.json

Committed baselines for the CI perf-regression gate live in
``benchmarks/baselines/``; see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from dataclasses import replace

from bench_storage import CONSTRAINTS, STREAM_CONFIG
from repro.algorithms.counting import count_motifs, run_census
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import generate
from repro.service.client import ServiceClient
from repro.service.server import start_in_thread
from repro.service.workers import _serialize_census

#: Window-query width (seconds of stream time) for the mix's lookups.
WINDOW_SPAN = CONSTRAINTS.delta_w * 4

#: Window queries per client in the mix.
WINDOW_QUERIES = 9

MOTIF_KW = dict(n_events=3, max_nodes=3)


def _wire(payload: dict) -> dict:
    """Normalize an oracle payload the way the wire does (JSON roundtrip)."""
    return json.loads(json.dumps(payload))


def _strip(result: dict) -> dict:
    """Drop per-request fields that legitimately vary (timing)."""
    return {k: v for k, v in result.items() if k != "elapsed"}


def _build_oracles(graph: TemporalGraph) -> dict:
    """Serial ground truth for every request in the client mix."""
    census = run_census(graph, 3, CONSTRAINTS, max_nodes=3)
    counts = count_motifs(graph, 3, CONSTRAINTS, max_nodes=3)
    times = graph.times
    windows = []
    for k in range(WINDOW_QUERIES):
        t_hi = times[((k + 1) * (len(times) - 1)) // WINDOW_QUERIES]
        t_lo = max(times[0], t_hi - WINDOW_SPAN)
        w_census = run_census(graph.slice(t_lo, t_hi), 3, CONSTRAINTS, max_nodes=3)
        windows.append((t_lo, t_hi, _wire(_serialize_census(w_census))))
    return {
        "census": _wire(_serialize_census(census)),
        "count": _wire({"codes": dict(counts), "total": sum(counts.values())}),
        "windows": windows,
    }


def _check(result: dict, oracle: dict, what: str) -> None:
    got = _strip(result)
    if got != oracle or list(got["codes"]) != list(oracle["codes"]):
        raise AssertionError(
            f"{what}: service answer diverged from the serial oracle\n"
            f"  got:    {got}\n  oracle: {oracle}"
        )


def _client_mix(host: str, port: int, oracles: dict, latencies: list[float]) -> None:
    """One client's request mix; appends per-request seconds to latencies."""
    local: list[float] = []
    with ServiceClient(host, port) as client:
        def timed(fn, *args, **kw):
            started = time.perf_counter()
            out = fn(*args, **kw)
            local.append(time.perf_counter() - started)
            return out

        _check(
            timed(client.census, delta_c=CONSTRAINTS.delta_c,
                  delta_w=CONSTRAINTS.delta_w, **MOTIF_KW),
            oracles["census"],
            "census",
        )
        for _ in range(2):
            _check(
                timed(client.count, delta_c=CONSTRAINTS.delta_c,
                      delta_w=CONSTRAINTS.delta_w, **MOTIF_KW),
                oracles["count"],
                "count",
            )
        for t_lo, t_hi, oracle in oracles["windows"]:
            _check(
                timed(client.window, t_lo, t_hi, delta_c=CONSTRAINTS.delta_c,
                      delta_w=CONSTRAINTS.delta_w, **MOTIF_KW),
                oracle,
                f"window[{t_lo:.0f},{t_hi:.0f}]",
            )
    latencies.extend(local)


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_load(n_events: int, clients: int, workers: int) -> dict:
    """Boot a server, drive it with ``clients`` threads, return the report."""
    graph = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42)
    oracles = _build_oracles(graph)
    handle = start_in_thread(
        events=[(e.u, e.v, e.t) for e in graph.events], workers=workers
    )
    try:
        latencies: list[float] = []
        threads = [
            threading.Thread(
                target=_client_mix,
                args=(handle.host, handle.port, oracles, latencies),
                name=f"client-{i}",
            )
            for i in range(clients)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        with ServiceClient(handle.host, handle.port) as client:
            stats = client.stats(timeout=30)
    finally:
        handle.stop()
    n_requests = clients * (1 + 2 + WINDOW_QUERIES)
    if len(latencies) != n_requests:
        raise AssertionError(
            f"expected {n_requests} verified requests, got {len(latencies)} "
            "(a client died mid-mix)"
        )
    ordered = sorted(latencies)
    return {
        "wall": wall,
        "qps": n_requests / wall,
        "p50": _quantile(ordered, 0.50),
        "p99": _quantile(ordered, 0.99),
        "requests": n_requests,
        "stats": stats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=4000, help="generated stream size"
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads (acceptance floor: 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="server compute processes"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error("--clients must be >= 1")
    report = run_load(args.events, args.clients, args.workers)
    print(
        f"{args.clients} clients x {report['requests'] // args.clients} requests "
        f"over {args.events} events ({args.workers} workers): "
        f"all answers bit-identical to the serial oracle"
    )
    print(
        f"  {report['qps']:.1f} queries/sec sustained | "
        f"p50 {report['p50'] * 1000:.1f}ms | p99 {report['p99'] * 1000:.1f}ms | "
        f"wall {report['wall']:.2f}s"
    )
    if args.json:
        payload = {
            "benchmark": "bench_service",
            "config": {
                "n_events": args.events,
                "clients": args.clients,
                "workers": args.workers,
                "requests": report["requests"],
            },
            # qps stays out of the result rows: check_regression gates on
            # "seconds" (lower is better); throughput rides as context.
            "qps": report["qps"],
            "results": [
                {"kernel": "request_mix", "clients": args.clients,
                 "stat": stat, "seconds": report[stat]}
                for stat in ("p50", "p99", "wall")
            ],
            # Observability sidecar: the server's merged server+worker
            # snapshot after the load (request histograms, queue depth,
            # engine/storage counters from inside the workers).
            "obs_snapshot": report["stats"]["metrics"],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
