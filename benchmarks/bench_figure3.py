"""Bench: Figure 3 — event-pair ratio pies, only-ΔW vs only-ΔC."""

from conftest import run_once

from repro.experiments import run_experiment


def test_figure3(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_experiment("figure3", scale=bench_scale),
    )
    print()
    print(result.text)

    data = result.data
    # Paper shapes:
    # 1. Repetition share decreases from only-ΔW to only-ΔC (both panels).
    for name, per_size in data.items():
        for size, per_config in per_size.items():
            r_w = per_config["only-ΔW"]["R"]
            r_c = per_config["only-ΔC"]["R"]
            assert r_c <= r_w + 0.02, (name, size)
    # 2. StackOverflow's in-burst share increases under only-ΔC (answers
    #    arrive from many users in a short period).
    so3 = data["stackoverflow"]["3e"]
    assert so3["only-ΔC"]["I"] >= so3["only-ΔW"]["I"] - 0.02
    # 3. Q&A in-burst share exceeds the calls network's in-burst share.
    calls3 = data["calls-copenhagen"]["3e"]
    assert so3["only-ΔC"]["I"] > calls3["only-ΔC"]["I"]
