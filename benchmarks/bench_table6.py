"""Bench: Table 6 (appendix) — full 32-motif ranking-change table."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table6(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table6", scale=bench_scale)
    )
    print()
    print(result.text)

    per_dataset = result.data["rank_changes"]
    for name, changes in per_dataset.items():
        # all 32 motifs covered, and rank changes are a permutation delta:
        # they sum to zero over the full universe.
        assert len(changes) == 32, name
        assert sum(changes.values()) == 0, name
