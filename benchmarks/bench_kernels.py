"""Kernel benchmarks: the hot paths behind every experiment.

Unlike the per-table reproductions (rounds=1), these are proper
multi-round micro/meso benchmarks on fixed small inputs, for tracking the
performance of the enumeration engine, the census, the restriction
checkers, and the streaming matcher.
"""

import pytest

from repro.algorithms.counting import count_motifs, run_census
from repro.algorithms.pattern import chain_pattern
from repro.algorithms.restrictions import (
    satisfies_cdg,
    satisfies_consecutive_events,
)
from repro.algorithms.streaming import match_graph
from repro.core.constraints import TimingConstraints
from repro.datasets.registry import get_dataset

CONSTRAINTS = TimingConstraints(delta_c=1500, delta_w=3000)


@pytest.fixture(scope="module")
def sms():
    return get_dataset("sms-copenhagen", scale=0.25)


@pytest.fixture(scope="module")
def stackoverflow():
    return get_dataset("stackoverflow", scale=0.25)


def test_count_3e_motifs_sms(benchmark, sms):
    counts = benchmark(
        lambda: count_motifs(sms, 3, CONSTRAINTS, max_nodes=3)
    )
    assert sum(counts.values()) > 0


def test_count_3e_motifs_stackoverflow(benchmark, stackoverflow):
    counts = benchmark(
        lambda: count_motifs(stackoverflow, 3, CONSTRAINTS, max_nodes=3)
    )
    assert sum(counts.values()) > 0


def test_count_4e_motifs_sms(benchmark, sms):
    counts = benchmark(
        lambda: count_motifs(sms, 4, CONSTRAINTS, max_nodes=4)
    )
    assert sum(counts.values()) > 0


def test_full_census_sms(benchmark, sms):
    census = benchmark(
        lambda: run_census(
            sms,
            3,
            CONSTRAINTS,
            max_nodes=3,
            collect_timespans=True,
            collect_positions=True,
        )
    )
    assert census.total > 0


def test_consecutive_restriction_overhead(benchmark, sms):
    counts = benchmark(
        lambda: count_motifs(
            sms,
            3,
            CONSTRAINTS,
            max_nodes=3,
            predicate=satisfies_consecutive_events,
        )
    )
    assert sum(counts.values()) >= 0


def test_cdg_restriction_overhead(benchmark, sms):
    counts = benchmark(
        lambda: count_motifs(
            sms, 3, CONSTRAINTS, max_nodes=3, predicate=satisfies_cdg
        )
    )
    assert sum(counts.values()) >= 0


def test_streaming_chain_match(benchmark, sms):
    matches = benchmark(
        lambda: match_graph(sms, chain_pattern(2, total=True), delta_w=900)
    )
    assert isinstance(matches, list)


def test_dataset_generation(benchmark):
    graph = benchmark(lambda: get_dataset("college-msg", scale=0.25, seed=1))
    assert len(graph) > 0
