"""Multi-view fan-out: events/sec as live view count grows on one stream.

The multi-view engine's reason to exist is that N concurrent windows
over one stream should cost far less than N independent engines: the
expensive per-event work (storage append, prefix-store extension,
kernel candidate generation) happens once in the shared core, and each
registered view only pays counter folds for the completions it accepts.

This benchmark replays one generated stream through
:class:`~repro.online.MultiViewCensus` at increasing view counts — a
small set of global windows plus node-sliced tenant views, the
multi-tenant monitoring shape — and records total replay seconds per
view count.  The headline target (the multi-view PR's acceptance bar):
**1000 live views at no worse than 10x the single-view per-event cost**
(>0.1x single-view throughput), i.e. wildly sublinear in view count.

Every timed replay is parity-checked on a seeded spot sample of its
views: a global view must be bit-identical (counter key order included)
to an independent single-window :class:`~repro.online.OnlineCensus`
replay, and a tenant view to an independent engine fed only its node
slice of the stream.

Run under pytest-benchmark like the other kernels, or standalone for a
comparison table and a BENCH-format JSON record::

    PYTHONPATH=src python benchmarks/bench_multiview.py --events 20000 \
        --json bench_multiview.json

Committed baselines for the CI perf-regression gate live in
``benchmarks/baselines/``; see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import replace

import pytest

import repro.obs as obs
from bench_storage import CONSTRAINTS, STREAM_CONFIG
from repro.datasets.generators import generate
from repro.online import MultiViewCensus, OnlineCensus

#: Trailing-window length of the widest (and the single benchmark) view.
WINDOW = CONSTRAINTS.delta_w

#: Live view counts the comparison table sweeps.
VIEW_COUNTS = (1, 10, 100, 1000)

#: Distinct global-window views per engine; every view beyond these is a
#: node-sliced tenant view (the realistic many-view composition — a
#: dashboard holds a few window lengths but thousands of tenant slices).
MAX_GLOBAL_VIEWS = 8

#: Nodes per tenant slice.
TENANT_NODES = 3

#: Views parity-checked per timed replay (seeded sample).
SPOT_CHECKS = 2


def _view_specs(n_views: int, n_nodes: int, seed: int = 7) -> list[dict]:
    """The view mix for one engine: global windows, then tenant slices."""
    rng = random.Random(seed)
    specs: list[dict] = []
    n_global = min(n_views, MAX_GLOBAL_VIEWS)
    for i in range(n_global):
        # Distinct window lengths, widest first; the widest is WINDOW so
        # the single-view configuration matches bench_online's engine.
        specs.append(
            {"name": f"global-{i}", "window": WINDOW * (1.0 - i / (2 * MAX_GLOBAL_VIEWS))}
        )
    for i in range(n_views - n_global):
        nodes = rng.sample(range(n_nodes), TENANT_NODES)
        specs.append(
            {
                "name": f"tenant-{i}",
                "window": WINDOW * (0.5 + 0.5 * rng.random()),
                "nodes": nodes,
            }
        )
    return specs


def _build(specs: list[dict], backend: str | None = None) -> MultiViewCensus:
    engine = MultiViewCensus(
        3, CONSTRAINTS, WINDOW, max_nodes=3, backend=backend, prune_every=8192
    )
    for spec in specs:
        engine.add_view(spec["name"], spec["window"], nodes=spec.get("nodes"))
    return engine


def _replay(events, specs: list[dict], backend: str | None = None) -> MultiViewCensus:
    engine = _build(specs, backend)
    for event in events:
        engine.push(event)
    return engine


def _oracle_items(events, spec: dict, backend: str | None = None):
    """An independent single-window engine's final ordered counters."""
    oracle = OnlineCensus(
        3, CONSTRAINTS, spec["window"], max_nodes=3, backend=backend, prune_every=8192
    )
    nodes = set(spec.get("nodes") or ())
    for event in events:
        u, v, t = event.u, event.v, event.t
        if not nodes or (u in nodes and v in nodes):
            oracle.push(event)
        else:
            # Keep the oracle's clock in step so expiry parity holds.
            oracle.advance_to(t)
    return list(oracle.counts().items())


def _spot_check(engine: MultiViewCensus, events, specs: list[dict], seed: int) -> int:
    """Bit-identity of a seeded view sample vs independent engines."""
    rng = random.Random(seed)
    sample = rng.sample(specs, min(SPOT_CHECKS, len(specs)))
    for spec in sample:
        got = list(engine.counts(spec["name"]).items())
        want = _oracle_items(events, spec)
        assert got == want, (
            f"view {spec['name']!r} diverged from an independent "
            f"single-window engine: {got[:3]}... != {want[:3]}..."
        )
    return len(sample)


@pytest.fixture(scope="module")
def stream_events():
    return generate(replace(STREAM_CONFIG, n_events=20_000), seed=42).events


@pytest.mark.parametrize("views", (1, 100))
def test_multiview_replay(benchmark, stream_events, views):
    specs = _view_specs(views, STREAM_CONFIG.n_nodes)
    engine = benchmark(lambda: _replay(stream_events, specs))
    assert engine.discovered > 0


def compare(n_events: int = STREAM_CONFIG.n_events) -> dict[int, dict[str, float]]:
    """Replay seconds per live-view count (parity spot-checked)."""
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    out: dict[int, dict[str, float]] = {}
    for views in VIEW_COUNTS:
        specs = _view_specs(views, STREAM_CONFIG.n_nodes)
        started = time.perf_counter()
        engine = _replay(events, specs)
        seconds = time.perf_counter() - started
        _spot_check(engine, events, specs, seed=views)
        out[views] = {"multiview_replay": seconds}

    # The acceptance bar: 1000 views cost at most 10x one view per event
    # (the shared core is the dominant cost, fan-out the marginal one).
    per_event_1 = out[VIEW_COUNTS[0]]["multiview_replay"] / n_events
    per_event_max = out[VIEW_COUNTS[-1]]["multiview_replay"] / n_events
    assert per_event_max <= 10 * per_event_1, (
        f"{VIEW_COUNTS[-1]} views cost {per_event_max / per_event_1:.1f}x a "
        f"single view per event (target <= 10x)"
    )
    return out


def _obs_snapshot(n_events: int) -> dict:
    """Registry snapshot of one instrumented replay (10 views)."""
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    specs = _view_specs(10, STREAM_CONFIG.n_nodes)
    prior = obs.ACTIVE
    registry = obs.MetricsRegistry()
    obs.enable(registry)
    try:
        _replay(events, specs)
    finally:
        obs.ACTIVE = prior
    return registry.snapshot()


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - manual tool
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=STREAM_CONFIG.n_events,
        help="generated stream size (the acceptance target is at 100k)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    results = compare(args.events)
    base = results[VIEW_COUNTS[0]]["multiview_replay"] / args.events
    print(f"{'views':<8}{'replay':>12}{'per-event':>12}{'vs 1 view':>12}{'events/s':>12}")
    for views, row in results.items():
        seconds = row["multiview_replay"]
        per_event = seconds / args.events
        print(
            f"{views:<8}{seconds:>10.2f}s{per_event * 1e6:>10.1f}us"
            f"{per_event / base:>11.2f}x{args.events / seconds:>12,.0f}"
        )
    print(
        "\nvs 1 view = per-event cost relative to a single-view replay "
        f"(target <= 10x at {VIEW_COUNTS[-1]} views; sublinear fan-out)"
    )
    if args.json:
        payload = {
            "benchmark": "bench_multiview",
            "config": {
                "n_events": args.events,
                "window": WINDOW,
                "view_counts": list(VIEW_COUNTS),
                "max_global_views": MAX_GLOBAL_VIEWS,
                "tenant_nodes": TENANT_NODES,
            },
            "results": [
                {"views": views, "kernel": "multiview_replay", "seconds": row["multiview_replay"]}
                for views, row in results.items()
            ],
            # Observability sidecar: one untimed instrumented replay at 10
            # views, so the record carries fan-out latency histograms and
            # view lifecycle counters next to the timings.
            "obs_snapshot": _obs_snapshot(args.events),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
