"""Execution-engine kernels: vectorized frontier extension vs generic.

The engine PR's bargain: one plan/kernel split shared by every counting
path, with the numpy backend's kernel extending whole *batches* of
partial instances per ``searchsorted`` sweep instead of one
``adjacent_events_between`` bisection per DFS state.  This benchmark
times the end-to-end ``run_census`` under both kernels on every
registered backend:

* **census_engine** — the plan's advertised kernel (what ``run_census``
  picks by default: the JIT tier on ``numpy`` when numba is installed,
  the vectorized numpy kernel otherwise, generic elsewhere);
* **census_generic** — the same census with the kernel forced to
  ``"generic"`` via :func:`repro.engine.compile_plan`; on the numpy
  backend this is the per-state bisection path the pre-engine DFS ran,
  so the engine/generic ratio is the vectorization speedup;
* **census_native** — the numba kernel forced explicitly (numpy
  backend, only when registered), so the JIT tier has its own gated
  baseline row independent of what ``census_engine`` resolves to.

Parity is asserted on every timed run — all kernels must produce the
identical census, counter key order included.  Per-kernel warm-up
(lazy index build + JIT compilation) is measured separately and
recorded in the JSON ``warmup`` field, excluded from the timed rounds,
so the regression gate compares steady-state numbers.

Acceptance record (the engine PR): ``run_census`` on the numpy backend
over the 100k-event generated stream took **29.9 s** through the
pre-refactor recursive DFS and **12.0 s** through the engine's
vectorized kernel on the same machine — a **2.5x** end-to-end speedup
against the committed pre-refactor measurement (2.2x against the
engine's own generic kernel, which already ships the refactor's cheaper
census fold).  Reproduce with ``--events 100000``; the committed CI
baseline guards the 20k smoke sizes.

Run under pytest-benchmark like the other kernels, or standalone for a
comparison table and a BENCH-format JSON record::

    PYTHONPATH=src python benchmarks/bench_engine.py --events 20000 \
        --json bench_engine.json

Committed baselines for the CI perf-regression gate live in
``benchmarks/baselines/``; see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from dataclasses import replace

import pytest

import repro.obs as obs
from bench_storage import CONSTRAINTS, STREAM_CONFIG
from repro.algorithms.counting import run_census
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import generate
from repro.engine import compile_plan, has_kernel
from repro.storage import available_backends

# The out-of-core partitioned backend has its own harness
# (bench_outofcore.py); the in-memory engines race here.
BACKENDS = tuple(b for b in available_backends() if b != "partitioned")

#: Census configuration (matches bench_storage's census kernel).
N_EVENTS = 3
MAX_NODES = 3


def _census(graph: TemporalGraph, kernel: str | None):
    plan = None
    if kernel is not None:
        plan = compile_plan(
            N_EVENTS,
            CONSTRAINTS,
            None,
            graph.storage,
            max_nodes=MAX_NODES,
            kernel=kernel,
        )
    return run_census(graph, N_EVENTS, CONSTRAINTS, max_nodes=MAX_NODES, plan=plan)


@pytest.fixture(scope="module")
def stream_events():
    return generate(replace(STREAM_CONFIG, n_events=20_000), seed=42).events


@pytest.mark.parametrize("backend", BACKENDS)
def test_census_engine_kernel(benchmark, stream_events, backend):
    graph = TemporalGraph(stream_events, backend=backend)
    census = benchmark(lambda: _census(graph, None))
    assert census.total > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_census_generic_kernel(benchmark, stream_events, backend):
    graph = TemporalGraph(stream_events, backend=backend)
    census = benchmark(lambda: _census(graph, "generic"))
    assert census.total > 0


@pytest.mark.skipif(
    not has_kernel("native"), reason="the native (numba) kernel is not registered"
)
def test_census_native_kernel(benchmark, stream_events):
    graph = TemporalGraph(stream_events, backend="numpy")
    _census(graph, "native")  # JIT compile outside the timed rounds
    census = benchmark(lambda: _census(graph, "native"))
    assert census.total > 0
    assert _census_key(census) == _census_key(_census(graph, "generic"))


def _census_key(census):
    return (
        dict(census.code_counts),
        list(census.code_counts),
        dict(census.pair_sequence_counts),
        census.total,
    )


def _best_of(fn, rounds: int) -> tuple[float, object]:
    best = math.inf
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def compare(
    n_events: int = STREAM_CONFIG.n_events, *, rounds: int = 2
) -> tuple[dict[str, dict[str, float]], dict[str, dict[str, float]]]:
    """Per-backend kernel seconds and warm-up seconds, parity-checked.

    Each kernel is timed ``rounds`` times and the minimum kept — the
    generic rows measure an identical code path on pure-Python backends,
    so single-run scheduler noise would otherwise read as a kernel
    difference.  The first (untimed) call per kernel is recorded
    separately in the warm-up map: it covers the lazy index build and,
    for the native kernel, JIT compilation — the regression gate
    compares steady-state medians, never first-call compile cost.

    When the native (numba) kernel is registered, the numpy backend
    grows an explicit ``census_native`` forced row alongside the
    default-resolution ``census_engine`` row.
    """
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    out: dict[str, dict[str, float]] = {}
    warmups: dict[str, dict[str, float]] = {}
    for backend in BACKENDS:
        graph = TemporalGraph(events, backend=backend)
        kernels: dict[str, str | None] = {
            "census_engine": None,
            "census_generic": "generic",
        }
        if backend == "numpy" and has_kernel("native"):
            kernels["census_native"] = "native"
        rows: dict[str, float] = {}
        warm: dict[str, float] = {}
        reference = None
        for label, kernel in kernels.items():
            started = time.perf_counter()
            _census(graph, kernel)  # lazy indices + JIT compile, untimed
            warm[label] = time.perf_counter() - started
            seconds, census = _best_of(lambda k=kernel: _census(graph, k), rounds)
            key = _census_key(census)
            if reference is None:
                reference = key
            else:
                assert key == reference, f"{backend}/{label}: kernel parity broken"
            rows[label] = seconds
        out[backend] = rows
        warmups[backend] = warm
    return out, warmups


def instrumentation_overhead(
    n_events: int = STREAM_CONFIG.n_events, *, rounds: int = 2
) -> tuple[dict[str, dict[str, float]], dict]:
    """Disabled-vs-enabled observability timings per backend, plus snapshot.

    ``disabled`` is the null-recorder default every caller pays (its
    acceptance gate is the unchanged ``census_engine`` baseline in
    ``benchmarks/baselines/BENCH_engine.json``, held within 3% by CI);
    ``enabled`` runs the same census with a live
    :class:`repro.obs.MetricsRegistry`, and ``ratio`` is
    ``enabled / disabled`` — the price of switching the recorder on.
    The second return value is the merged registry snapshot across
    backends (the BENCH JSON's ``obs_snapshot``).
    """
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    prior = obs.ACTIVE
    out: dict[str, dict[str, float]] = {}
    snapshots = []
    try:
        for backend in BACKENDS:
            graph = TemporalGraph(events, backend=backend)
            _census(graph, None)  # warm the lazy indices out of the timings
            obs.disable()
            disabled_seconds, _ = _best_of(lambda: _census(graph, None), rounds)
            registry = obs.enable(obs.MetricsRegistry())
            enabled_seconds, _ = _best_of(lambda: _census(graph, None), rounds)
            obs.disable()
            snapshots.append(registry.snapshot())
            out[backend] = {
                "disabled": disabled_seconds,
                "enabled": enabled_seconds,
                "ratio": enabled_seconds / disabled_seconds,
            }
    finally:
        obs.ACTIVE = prior
    return out, obs.merge_snapshots(snapshots)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - manual tool
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=STREAM_CONFIG.n_events,
        help="generated stream size (the acceptance target is at 100k)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="timed rounds per kernel; the minimum is recorded (default 2)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    results, warmups = compare(args.events, rounds=args.rounds)
    print(f"{'backend':<10}{'kernel':<16}{'seconds':>10}{'warmup':>10}{'speedup':>10}")
    for backend, row in results.items():
        for label, seconds in row.items():
            speedup = row["census_generic"] / seconds
            print(
                f"{backend:<10}{label:<16}{seconds:>9.2f}s"
                f"{warmups[backend][label]:>9.2f}s{speedup:>9.2f}x"
            )
    print(
        "\nspeedup = generic-kernel census seconds / kernel census seconds "
        "(numpy engine target >= 2x at 100k events, native >= 5x over the "
        "numpy kernel; warm-up covers lazy indices + JIT compile and is "
        "excluded from the timed rounds)"
    )
    overhead, snapshot = instrumentation_overhead(args.events, rounds=args.rounds)
    print(f"\n{'backend':<10}{'obs off':>12}{'obs on':>12}{'overhead':>10}")
    for backend, row in overhead.items():
        print(
            f"{backend:<10}{row['disabled']:>10.2f}s{row['enabled']:>10.2f}s"
            f"{row['ratio']:>9.2f}x"
        )
    print(
        "\noverhead = census seconds with a live repro.obs registry / with "
        "the null recorder (the disabled path is gated separately: CI holds "
        "census_engine within 3% of the committed baseline)"
    )
    if args.json:
        payload = {
            "benchmark": "bench_engine",
            "config": {
                "n_events": args.events,
                "rounds": args.rounds,
                "census_events": N_EVENTS,
                "max_nodes": MAX_NODES,
                "backends": list(BACKENDS),
            },
            "results": [
                {
                    "backend": backend,
                    "kernel": kernel,
                    "seconds": seconds,
                    "warmup": warmups[backend][kernel],
                }
                for backend, row in results.items()
                for kernel, seconds in row.items()
            ],
            # Observability sidecar: not regression-gated rows — the
            # disabled path is gated through census_engine itself.
            "instrumentation": overhead,
            "obs_snapshot": snapshot,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
