"""Bench: the null-model dilemma (Section 5, comparison criteria)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_nullmodels(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("nullmodels", scale=bench_scale)
    )
    print()
    print(result.text)

    entry = result.data["sms-copenhagen"]
    loose = entry["loose (P(t))"]
    restrictive = entry["restrictive (P(Δt))"]
    # the loose null flags the large majority of observed motifs...
    assert loose["flagged_fraction"] > 0.7
    # ...and collapses the total count far more than the restrictive null.
    assert loose["count_shift"] > 2 * restrictive["count_shift"]
    # the restrictive null "barely changes" the counts.
    assert restrictive["count_shift"] < 0.5
