"""Out-of-core census benchmark: wall time AND peak RSS per run (PR 8).

The partitioned page layout exists so a census can run over a directory
much larger than the memory it is allowed to keep resident.  Wall time
alone cannot verify that claim, so every measured run here happens in a
**subprocess** and reports its ``resource.getrusage`` peak RSS
(``ru_maxrss`` is a per-process high-water mark, hence the isolation;
``RUSAGE_CHILDREN`` folds in pool workers for ``jobs>1`` runs).

One deterministic synthetic stream is written as a partitioned
directory, then censused three ways:

* ``partitioned`` at ``jobs=1`` — the serial out-of-core path (shards
  execute sequentially; peak memory follows the largest shard);
* ``partitioned`` at ``jobs=4`` — the pooled path (workers rebuild
  δ-overlapped shard slices from the manifest);
* ``inmemory`` at ``jobs=1`` — the same stream built as a plain numpy
  graph, the bit-identity oracle and the RSS contrast.

Hard checks (non-zero exit on violation, so the CI bench step fails):

* all three censuses are **bit-identical** (counter key order included);
* both partitioned runs stay under the **RSS ceiling**: the measured
  interpreter floor plus ``max(48 MiB, total page bytes / 3)``.  At CI
  smoke scale the 48 MiB slack dominates and the ceiling mostly guards
  against accidentally materializing the stream; past ~150 MB of pages
  the budget is a third of the data, i.e. a genuine out-of-core proof —
  ``--require-outofcore`` additionally *requires* the directory to
  exceed the budget (the acceptance-run configuration)::

      PYTHONPATH=src python benchmarks/bench_outofcore.py \
          --events 1500000 --require-outofcore

The ``--json`` record is the standard BENCH shape; CI gates the
``jobs=1`` rows against ``benchmarks/baselines/BENCH_outofcore.json``
(worker-scaling rows depend on the host's core count, as in
``bench_parallel``).  Peak-RSS numbers ride along in the top-level
``rss`` block — informational in the JSON, enforced by this script.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

MiB = 2**20

#: Timing window of the measured census, in stream time units (ticks are
#: 1.0 apart, so the enumeration fans over ~DELTA ticks per anchor).
DELTA = 12.0

N_MOTIF_EVENTS = 3


def _constraints():
    from repro.core.constraints import TimingConstraints

    return TimingConstraints(delta_c=DELTA, delta_w=DELTA)


def _stream(n_events: int, *, n_nodes: int, tick: int, seed: int):
    """A deterministic bursty (u, v, t) stream, yielded lazily.

    ``tick`` events share each integer timestamp, so partition edges
    always abut same-timestamp runs — the layout's hard case.  Node
    choice is a seeded affine walk: cheap, reproducible in any process,
    and no self-loops by construction.
    """
    state = seed * 2654435761 % 2**32
    for i in range(n_events):
        state = (state * 1103515245 + 12345) % 2**31
        u = state % n_nodes
        off = 1 + (state >> 8) % (n_nodes - 1)
        yield u, (u + off) % n_nodes, float(i // tick)


def _digest(census) -> dict:
    """The bit-identity fingerprint: counters with their key order."""
    return {
        "codes": [[code, n] for code, n in census.code_counts.items()],
        "pairs": [[str(pair), n] for pair, n in census.pair_counts.items()],
        "total": census.total,
    }


def _peak_rss_kb() -> int:
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, child_kb)


# ----------------------------------------------------------------------
# subprocess roles (one measured run each; stdout is one JSON line)
# ----------------------------------------------------------------------
def _child(args) -> int:
    out: dict = {}
    if args.child == "floor":
        # The non-data baseline: interpreter + numpy + manifest parse.
        from repro.storage.partitioned import load_partitioned

        storage, _meta = load_partitioned(args.path, max_resident=args.max_resident)
        out["n_partitions"] = storage.n_partitions
    elif args.child == "census":
        from repro.algorithms.counting import run_census
        from repro.core.temporal_graph import TemporalGraph

        graph = TemporalGraph.load(args.path)
        started = time.perf_counter()
        census = run_census(
            graph, N_MOTIF_EVENTS, _constraints(), jobs=args.jobs[0]
        )
        out["seconds"] = time.perf_counter() - started
        out["digest"] = _digest(census)
    elif args.child == "inmemory":
        from repro.algorithms.counting import run_census
        from repro.core.events import Event
        from repro.core.temporal_graph import TemporalGraph

        graph = TemporalGraph(
            (
                Event(*t)
                for t in _stream(
                    args.events, n_nodes=args.nodes, tick=args.tick, seed=args.seed
                )
            ),
            backend="numpy",
        )
        started = time.perf_counter()
        census = run_census(graph, N_MOTIF_EVENTS, _constraints(), jobs=1)
        out["seconds"] = time.perf_counter() - started
        out["digest"] = _digest(census)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown child role {args.child!r}")
    out["rss_kb"] = _peak_rss_kb()
    print(json.dumps(out))
    return 0


def _run_child(role: str, args, *, jobs: int = 1) -> dict:
    argv = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        role,
        "--path",
        args.path,
        "--jobs",
        str(jobs),
        "--events",
        str(args.events),
        "--nodes",
        str(args.nodes),
        "--tick",
        str(args.tick),
        "--seed",
        str(args.seed),
        "--max-resident",
        str(args.max_resident),
    ]
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"child {role!r} (jobs={jobs}) failed")
    return json.loads(proc.stdout.splitlines()[-1])


def _dir_bytes(path: str) -> int:
    total = 0
    for root, _dirs, files in os.walk(path):
        total += sum(os.path.getsize(os.path.join(root, f)) for f in files)
    return total


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run(args) -> int:
    from repro.storage.partitioned import write_partitioned

    with tempfile.TemporaryDirectory(prefix="bench-outofcore-") as tmp:
        args.path = tmp
        started = time.perf_counter()
        manifest = write_partitioned(
            _stream(args.events, n_nodes=args.nodes, tick=args.tick, seed=args.seed),
            tmp,
            partition_events=args.partition_events,
            name="bench-outofcore",
        )
        write_seconds = time.perf_counter() - started
        total_bytes = _dir_bytes(tmp)
        largest = max(
            (_dir_bytes(os.path.join(tmp, p["dir"])) for p in manifest["partitions"]),
            default=0,
        )
        print(
            f"wrote {args.events} events -> {len(manifest['partitions'])} "
            f"partitions, {total_bytes / MiB:.1f} MiB on disk "
            f"(largest partition {largest / MiB:.1f} MiB) "
            f"in {write_seconds:.1f}s"
        )

        floor = _run_child("floor", args)
        budget_bytes = max(48 * MiB, total_bytes // 3)
        ceiling_kb = floor["rss_kb"] + budget_bytes // 1024
        outofcore = total_bytes > budget_bytes
        print(
            f"interpreter floor {floor['rss_kb'] / 1024:.1f} MiB, data budget "
            f"{budget_bytes / MiB:.1f} MiB -> RSS ceiling {ceiling_kb / 1024:.1f} MiB"
            + (
                ""
                if outofcore
                else "  [pages fit the budget: smoke scale, ceiling still enforced]"
            )
        )
        if args.require_outofcore and not outofcore:
            print(
                f"FAIL: --require-outofcore, but {total_bytes / MiB:.1f} MiB of "
                f"pages fit the {budget_bytes / MiB:.1f} MiB budget — raise --events"
            )
            return 1

        runs: list[tuple[str, int, dict]] = []
        for jobs in args.jobs:
            runs.append(("partitioned", jobs, _run_child("census", args, jobs=jobs)))
        runs.append(("inmemory", 1, _run_child("inmemory", args)))

    failures = 0
    reference = runs[-1][2]["digest"]
    print(f"\n{'mode':<14}{'jobs':>5}{'seconds':>10}{'peak rss':>12}  verdict")
    for mode, jobs, result in runs:
        verdicts = []
        if result["digest"] != reference:
            verdicts.append("DIGEST MISMATCH vs in-memory serial")
            failures += 1
        if mode == "partitioned" and result["rss_kb"] > ceiling_kb:
            verdicts.append(
                f"RSS {result['rss_kb'] / 1024:.1f} MiB OVER the "
                f"{ceiling_kb / 1024:.1f} MiB ceiling"
            )
            failures += 1
        print(
            f"{mode:<14}{jobs:>5}{result['seconds']:>9.2f}s"
            f"{result['rss_kb'] / 1024:>8.1f} MiB  "
            + ("; ".join(verdicts) or "ok (bit-identical, under ceiling)")
        )
    print(
        f"\ntotal instances: {reference['total']}"
        + ("  [out-of-core: pages exceed the budget]" if outofcore else "")
    )

    if args.json:
        payload = {
            "benchmark": "bench_outofcore",
            "config": {
                "n_events": args.events,
                "partition_events": args.partition_events,
                "n_nodes": args.nodes,
                "tick": args.tick,
                "seed": args.seed,
                "max_resident": args.max_resident,
                "delta": DELTA,
            },
            "results": [
                {"mode": "write", "jobs": 1, "seconds": write_seconds},
                *(
                    {"mode": mode, "jobs": jobs, "seconds": result["seconds"]}
                    for mode, jobs, result in runs
                ),
            ],
            # Informational sidecar: RSS is asserted above, not gated by
            # check_regression (rows stay keyed on mode/jobs only).
            "rss": {
                "floor_kb": floor["rss_kb"],
                "ceiling_kb": ceiling_kb,
                "total_page_bytes": total_bytes,
                "largest_partition_bytes": largest,
                "runs": {
                    f"{mode}-j{jobs}": result["rss_kb"]
                    for mode, jobs, result in runs
                },
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    if failures:
        print(f"\nFAIL: {failures} check(s) violated")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=120_000)
    parser.add_argument("--partition-events", type=int, default=8_192)
    parser.add_argument("--nodes", type=int, default=512)
    parser.add_argument(
        "--tick", type=int, default=4, help="events sharing each timestamp"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--max-resident", type=int, default=2, help="LRU partition bound"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=[1, 4],
        help="worker counts for the partitioned census runs",
    )
    parser.add_argument(
        "--require-outofcore",
        action="store_true",
        help="fail unless the page directory exceeds the RSS data budget "
        "(the acceptance-run configuration; needs --events large enough "
        "that pages exceed 144 MiB)",
    )
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--child", choices=("floor", "census", "inmemory"))
    parser.add_argument("--path", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _child(args)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main(None))
