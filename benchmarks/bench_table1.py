"""Bench: Table 1 — the model aspect matrix (conceptual, near-instant)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table1(benchmark):
    result = run_once(benchmark, lambda: run_experiment("table1"))
    print()
    print(result.text)
    assert result.data["mismatches"] == []
