"""Online-census kernels: per-event push cost vs the batch-recount baseline.

The online engine's reason to exist is that maintaining the trailing
window ``[now - W, now]`` incrementally beats re-running
:func:`~repro.algorithms.counting.run_census` over the window after every
arrival.  This benchmark times both sides on the same generated stream,
per storage backend:

* **online_replay** — push the whole stream through
  :class:`~repro.online.OnlineCensus` (auto-pruned), total seconds; the
  comparison table divides by the event count for the amortized per-event
  cost;
* **batch_recount** — one ``run_census`` over the trailing W-window
  slice, averaged over checkpoints spread along the stream: the cost a
  recount-per-event design would pay *per event*.

The acceptance target of the online-engine PR: amortized per-event cost
at least **10x** cheaper than a batch recount at 100k events.  Parity is
asserted on every timed replay — the online counters must equal the
final batch recount bit-for-bit.

Run under pytest-benchmark like the other kernels, or standalone for a
comparison table and a BENCH-format JSON record::

    PYTHONPATH=src python benchmarks/bench_online.py --events 20000 \
        --json bench_online.json

Committed baselines for the CI perf-regression gate live in
``benchmarks/baselines/``; see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace

import pytest

import repro.obs as obs
from bench_storage import CONSTRAINTS, STREAM_CONFIG
from repro.algorithms.counting import run_census
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import generate
from repro.online import OnlineCensus
from repro.storage import available_backends

# The out-of-core partitioned backend has its own harness
# (bench_outofcore.py); the in-memory engines race here.
BACKENDS = tuple(b for b in available_backends() if b != "partitioned")

#: Trailing-window length (= the ΔW bound: every instance fits exactly).
WINDOW = CONSTRAINTS.delta_w

#: Batch recounts are averaged over this many checkpoints on the stream.
RECOUNT_POINTS = 5


def _replay(events, backend: str) -> OnlineCensus:
    engine = OnlineCensus(
        3, CONSTRAINTS, WINDOW, max_nodes=3, backend=backend, prune_every=8192
    )
    for event in events:
        engine.push(event)
    return engine


def _recount_checkpoints(graph: TemporalGraph) -> list[float]:
    """Seconds per batch recount at evenly spaced stream positions."""
    times = graph.times
    out = []
    for k in range(1, RECOUNT_POINTS + 1):
        now = times[(len(times) * k) // RECOUNT_POINTS - 1]
        started = time.perf_counter()
        run_census(graph.slice(now - WINDOW, now), 3, CONSTRAINTS, max_nodes=3)
        out.append(time.perf_counter() - started)
    return out


@pytest.fixture(scope="module")
def stream_events():
    return generate(replace(STREAM_CONFIG, n_events=20_000), seed=42).events


@pytest.mark.parametrize("backend", BACKENDS)
def test_online_replay(benchmark, stream_events, backend):
    engine = benchmark(lambda: _replay(stream_events, backend))
    assert engine.discovered > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_recount_window(benchmark, stream_events, backend):
    graph = TemporalGraph(stream_events, backend=backend)
    now = graph.times[-1]
    census = benchmark(
        lambda: run_census(graph.slice(now - WINDOW, now), 3, CONSTRAINTS, max_nodes=3)
    )
    assert census.total >= 0


def compare(n_events: int = STREAM_CONFIG.n_events) -> dict[str, dict[str, float]]:
    """Per-backend kernel seconds (one replay, averaged recounts)."""
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    out: dict[str, dict[str, float]] = {}
    for backend in BACKENDS:
        started = time.perf_counter()
        engine = _replay(events, backend)
        online_seconds = time.perf_counter() - started

        graph = TemporalGraph(events, backend=backend)
        recounts = _recount_checkpoints(graph)

        # Parity: the engine's final window must equal the last recount.
        batch = run_census(
            graph.slice(engine.now - WINDOW, engine.now), 3, CONSTRAINTS, max_nodes=3
        )
        online = engine.census()
        assert online.code_counts == batch.code_counts, f"{backend}: parity broken"
        assert online.total == batch.total

        out[backend] = {
            "online_replay": online_seconds,
            "batch_recount": sum(recounts) / len(recounts),
        }
    return out


def _obs_snapshot(n_events: int) -> dict:
    """Registry snapshot of one instrumented replay (first backend)."""
    events = generate(replace(STREAM_CONFIG, n_events=n_events), seed=42).events
    prior = obs.ACTIVE
    registry = obs.MetricsRegistry()
    obs.enable(registry)
    try:
        _replay(events, BACKENDS[0])
    finally:
        obs.ACTIVE = prior
    return registry.snapshot()


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - manual tool
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=STREAM_CONFIG.n_events,
        help="generated stream size (the acceptance target is at 100k)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    results = compare(args.events)
    print(
        f"{'backend':<10}{'replay':>12}{'per-event':>12}{'recount':>12}{'speedup':>10}"
    )
    for backend, row in results.items():
        per_event = row["online_replay"] / args.events
        speedup = row["batch_recount"] / per_event
        print(
            f"{backend:<10}{row['online_replay']:>10.2f}s"
            f"{per_event * 1e6:>10.1f}us{row['batch_recount'] * 1000:>10.1f}ms"
            f"{speedup:>9.0f}x"
        )
    print(
        "\nspeedup = batch recount seconds per event / amortized online "
        "seconds per event (target >= 10x at 100k events)"
    )
    if args.json:
        payload = {
            "benchmark": "bench_online",
            "config": {
                "n_events": args.events,
                "window": WINDOW,
                "backends": list(BACKENDS),
            },
            "results": [
                {"backend": backend, "kernel": kernel, "seconds": row[kernel]}
                for backend, row in results.items()
                for kernel in ("online_replay", "batch_recount")
            ],
            # Observability sidecar: one untimed instrumented replay on
            # the first backend, so the record carries push-latency
            # histograms and store/heap gauges next to the timings.
            "obs_snapshot": _obs_snapshot(args.events),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
