"""Bench: Figure 1 — four candidate motifs judged by the four models."""

from conftest import run_once

from repro.experiments import run_experiment


def test_figure1(benchmark):
    result = run_once(benchmark, lambda: run_experiment("figure1"))
    print()
    print(result.text)
    assert result.data["agreement"], "validity matrix deviates from the paper"
