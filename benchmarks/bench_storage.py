"""Storage-engine kernel benchmarks: construction, window queries, census.

Compares every registered backend on the kernels the storage contract was
designed around:

* **construction** — indexing a pre-validated 100k-event generated stream
  (the acceptance bar of the storage PR: columnar ≥ 1.5× faster than the
  plain-list reference);
* **window query** — per-node closed-window bisections, the restriction
  checkers' hot path, issued one query at a time;
* **batched window query** — the same sweep through
  ``count_node_events_in_batch``, the vectorization seam of array-backed
  engines (the numpy backend's acceptance bar: ≥ 2× faster than
  columnar);
* **census** — an end-to-end 3-event motif census through the enumeration
  engine, exercising the half-open candidate query.

Run under pytest-benchmark like the other kernels, or standalone for a
quick comparison table and an optional BENCH-format JSON record::

    PYTHONPATH=src python benchmarks/bench_storage.py --events 20000 \
        --json bench_storage.json

Committed baselines for the CI perf-regression gate live in
``benchmarks/baselines/``; see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace

import pytest

from repro.algorithms.counting import run_census
from repro.core.constraints import TimingConstraints
from repro.datasets.generators import ActivityConfig, generate
from repro.datasets.registry import get_dataset
from repro.storage import available_backends, get_backend

# The out-of-core partitioned backend has its own harness
# (bench_outofcore.py); the in-memory engines race here.
BACKENDS = tuple(b for b in available_backends() if b != "partitioned")

#: A SNAP-ish 100k-event stream: heavy reactions, realistic node reuse.
STREAM_CONFIG = ActivityConfig(
    n_nodes=5_000,
    n_events=100_000,
    timespan=1_000_000.0,
    p_reply=0.3,
    p_repeat=0.2,
    p_cc=0.2,
    p_forward=0.15,
    p_in_burst=0.1,
)

CONSTRAINTS = TimingConstraints(delta_c=1500, delta_w=3000)


@pytest.fixture(scope="module")
def stream_events():
    return generate(STREAM_CONFIG, seed=42).events


@pytest.mark.parametrize("backend", BACKENDS)
def test_construction_100k(benchmark, stream_events, backend):
    cls = get_backend(backend)
    storage = benchmark(lambda: cls.from_events(stream_events, presorted=True))
    assert len(storage) == len(stream_events)


@pytest.mark.parametrize("backend", BACKENDS)
def test_node_window_queries(benchmark, stream_events, backend):
    storage = get_backend(backend).from_events(stream_events, presorted=True)
    nodes = sorted(storage.nodes)[:2_000]
    t0 = storage.start_time
    span = storage.end_time - t0

    def sweep() -> int:
        total = 0
        for i, node in enumerate(nodes):
            lo = t0 + (i % 10) * span / 10
            total += storage.count_node_events_in(node, lo, lo + span / 10)
            total += len(storage.node_events_between(node, lo, lo + span / 20))
        return total

    assert benchmark(sweep) > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_node_window_queries_batched(benchmark, stream_events, backend):
    storage = get_backend(backend).from_events(stream_events, presorted=True)
    nodes, t_los, t_his = _window_sweep_queries(storage)
    counts = benchmark(lambda: storage.count_node_events_in_batch(nodes, t_los, t_his))
    assert sum(counts) > 0


def _window_sweep_queries(storage) -> tuple[list[int], list[float], list[float]]:
    """The window sweep as one batch: 2 000 nodes, 10 rotating windows."""
    nodes = sorted(storage.nodes)[:2_000]
    t0 = storage.start_time
    span = storage.end_time - t0
    t_los = [t0 + (i % 10) * span / 10 for i in range(len(nodes))]
    t_his = [lo + span / 10 for lo in t_los]
    return nodes, t_los, t_his


@pytest.mark.parametrize("backend", BACKENDS)
def test_census_small_sms(benchmark, backend):
    graph = get_dataset("sms-copenhagen", scale=0.25).with_backend(backend)
    census = benchmark(
        lambda: run_census(graph, 3, CONSTRAINTS, max_nodes=3)
    )
    assert census.total > 0


def _best_of(fn, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


KERNELS = ("construct", "window", "window_batch", "census")


def compare(n_events: int = STREAM_CONFIG.n_events) -> dict[str, dict[str, float]]:
    """Best-of-5 kernel seconds per backend (standalone comparison table)."""
    config = replace(STREAM_CONFIG, n_events=n_events)
    events = generate(config, seed=42).events
    sms = get_dataset("sms-copenhagen", scale=0.25)
    out: dict[str, dict[str, float]] = {}
    for backend in BACKENDS:
        cls = get_backend(backend)
        storage = cls.from_events(events, presorted=True)
        nodes, t_los, t_his = _window_sweep_queries(storage)
        graph = sms.with_backend(backend)
        out[backend] = {
            "construct": _best_of(lambda: cls.from_events(events, presorted=True)),
            "window": _best_of(
                lambda: [
                    storage.count_node_events_in(n, lo, hi)
                    for n, lo, hi in zip(nodes, t_los, t_his)
                ]
            ),
            "window_batch": _best_of(
                lambda: storage.count_node_events_in_batch(nodes, t_los, t_his)
            ),
            "census": _best_of(
                lambda: run_census(graph, 3, CONSTRAINTS, max_nodes=3), rounds=3
            ),
        }
    return out


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - manual tool
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=STREAM_CONFIG.n_events,
        help="generated stream size for the construction/window kernels",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the BENCH json record to PATH",
    )
    args = parser.parse_args(argv)
    results = compare(args.events)
    print(f"{'backend':<10}" + "".join(f"{k:>14}" for k in KERNELS))
    for backend, row in results.items():
        print(f"{backend:<10}" + "".join(f"{row[k] * 1000:>12.1f}ms" for k in KERNELS))
    ratio = results["list"]["construct"] / results["columnar"]["construct"]
    print(f"\ncolumnar construction speedup over list: {ratio:.2f}x (target >= 1.5x)")
    if "numpy" in results:
        ratio = results["columnar"]["window_batch"] / results["numpy"]["window_batch"]
        print(f"numpy batched-window speedup over columnar: {ratio:.2f}x (target >= 2x)")
    if args.json:
        payload = {
            "benchmark": "bench_storage",
            "config": {"n_events": args.events, "backends": list(BACKENDS)},
            "results": [
                {"backend": backend, "kernel": kernel, "seconds": row[kernel]}
                for backend, row in results.items()
                for kernel in KERNELS
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
