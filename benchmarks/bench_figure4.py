"""Bench: Figure 4 — intermediate event occurrence positions."""

from conftest import run_once

from repro.experiments import run_experiment


def test_figure4(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("figure4", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    # Paper shape: enforcing ΔC regularizes the skew — |skew| in only-ΔC is
    # no larger than in only-ΔW for every panel with enough samples.
    for panel, per_config in data.items():
        w = per_config["only-ΔW"]
        c = per_config["only-ΔC"]
        if min(w["samples"], c["samples"]) < 50:
            continue  # too few instances for a stable estimate
        assert abs(c["skew"]) <= abs(w["skew"]) + 0.03, panel
    # Direction check for the repetition-first motif: the second event
    # piles up near the first (negative skew) under only-ΔW.
    sms = data["sms-copenhagen:010102"]["only-ΔW"]
    assert sms["skew"] < 0
