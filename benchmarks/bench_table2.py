"""Bench: Table 2 — dataset statistics of all nine synthetic analogues."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table2(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table2", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    # Paper-shape assertions (Table 2 signatures):
    # 1. Email's cc-at-same-timestamp mechanism gives it the lowest
    #    unique-timestamp fraction by a wide margin.
    email = data["email"]["unique_ts_fraction"]
    assert email < 0.75
    assert all(
        email <= row["unique_ts_fraction"]
        for name, row in data.items()
        if name != "email"
    )
    # 2. Bitcoin-otc: every event is a distinct directed edge.
    assert data["bitcoin-otc"]["events"] == data["bitcoin-otc"]["edges"]
    # 3. Bitcoin has the largest median inter-event time (paper: 707 s).
    bitcoin_med = data["bitcoin-otc"]["median_interevent"]
    assert all(
        bitcoin_med >= row["median_interevent"]
        for name, row in data.items()
        if name != "bitcoin-otc"
    )
    # 4. Message networks have short medians (paper: 3–37 s band).
    assert data["sms-copenhagen"]["median_interevent"] < 120
