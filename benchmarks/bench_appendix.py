"""Benches: appendix Figures 7–11 — the full-dataset figure extensions."""

from conftest import run_once

from repro.experiments import run_experiment


def test_figure7(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_experiment("figure7", scale=bench_scale, n_events_list=(3,)),
    )
    print()
    print(result.text)
    # repetition share decreases (or stays flat) toward only-ΔC everywhere
    for name, per_size in result.data.items():
        per_config = per_size["3e"]
        assert per_config["only-ΔC"]["R"] <= per_config["only-ΔW"]["R"] + 0.02, name


def test_figure8(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: run_experiment("figure8", scale=bench_scale, n_events_list=(3,)),
    )
    print()
    print(result.text)
    for name, per_size in result.data.items():
        per_config = per_size["3e"]
        assert sum(per_config["only-ΔW"].values()) > 0.99, name


def test_figure9(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("figure9", scale=bench_scale)
    )
    print()
    print(result.text)
    # regularization holds on every panel with a stable sample
    for panel, per_config in result.data.items():
        w = per_config["only-ΔW"]
        c = per_config["only-ΔC"]
        if min(w["samples"], c["samples"]) < 50:
            continue
        assert abs(c["skew"]) <= abs(w["skew"]) + 0.05, panel


def test_figure10(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("figure10", scale=bench_scale)
    )
    print()
    print(result.text)
    for name, per_config in result.data.items():
        if per_config["only-ΔW"]["summary"].count < 50:
            continue
        assert per_config["only-ΔW"]["summary"].maximum <= 3000, name
        assert (
            per_config["only-ΔW"]["uniformity"]
            >= per_config["only-ΔC"]["uniformity"] - 0.05
        ), name


def test_figure11(benchmark, bench_scale):
    import numpy as np

    result = run_once(
        benchmark, lambda: run_experiment("figure11", scale=bench_scale)
    )
    print()
    print(result.text)
    for name, entry in result.data.items():
        matrix = np.array(entry["matrix"])
        if matrix.sum() < 100:
            continue
        assert entry["asymmetries"]["C_then_O_vs_O_then_C"] > 0, name
