"""Bench: Table 4 — constrained dynamic graphlets at 300 s resolution."""

from conftest import run_once

from repro.experiments import run_experiment


def test_table4(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table4", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    # Paper shapes:
    # 1. Bitcoin-otc: no repeated edges -> CDG is a no-op, variance exactly 0.
    assert data["bitcoin-otc"]["variance"] == 0.0
    # 2. The delayed repetition 010201 loses share in the message networks
    #    and email (paper: -0.99% .. -18.00%).
    for name in ("sms-copenhagen", "college-msg", "email"):
        assert data[name]["changes"]["010201"] <= 0, name
    # 3. The immediate repetition 010102 gains share in message networks.
    for name in ("sms-copenhagen", "college-msg", "sms-a"):
        assert data[name]["changes"]["010102"] >= 0, name
    # 4. Q&A sites are barely affected (paper variance 0.04-0.06, smallest
    #    of the non-bitcoin rows).
    qa_var = max(data["stackoverflow"]["variance"], data["superuser"]["variance"])
    msg_var = min(
        data["sms-copenhagen"]["variance"], data["sms-a"]["variance"]
    )
    assert qa_var < msg_var
