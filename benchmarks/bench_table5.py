"""Bench: Table 5 — R,P,I,O vs C,W motif groups across timing configs."""

from conftest import run_once

from repro.experiments import run_experiment

DATASETS = ("college-msg", "fb-wall", "bitcoin-otc", "sms-copenhagen", "sms-a")


def test_table5(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table5", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    for name in DATASETS:
        groups = data[name]
        w, both, c = (
            groups["only-ΔW"], groups["ΔC/ΔW=0.66"], groups["only-ΔC"]
        )
        # 1. Monotone decreasing counts (subset property).
        for key in ("RPIO", "CW"):
            assert w[key] >= both[key] >= c[key], (name, key)
        # 2. R,P,I,O dominates C,W by a wide margin (paper: ~10x).
        assert w["RPIO"] > 5 * max(w["CW"], 1), name
    # 3. R,P,I,O shrinks at least as fast as C,W on the message networks
    #    (paper's headline differential).
    for name in ("sms-copenhagen", "college-msg", "sms-a"):
        w, c = data[name]["only-ΔW"], data[name]["only-ΔC"]
        rpio_ratio = c["RPIO"] / max(w["RPIO"], 1)
        cw_ratio = c["CW"] / max(w["CW"], 1)
        assert rpio_ratio <= cw_ratio + 0.03, name
