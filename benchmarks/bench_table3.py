"""Bench: Table 3 — consecutive events restriction across all datasets."""

from conftest import run_once

from repro.experiments import run_experiment

FOCUS = ("010210", "011210", "012010", "012110")


def test_table3(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: run_experiment("table3", scale=bench_scale)
    )
    print()
    print(result.text)

    data = result.data
    # Paper shapes:
    # 1. The restriction removes the majority of motifs everywhere but is
    #    weakest on bitcoin-otc (paper: ~30% survive vs <5% elsewhere).
    bitcoin_survival = data["bitcoin-otc"]["survival"]
    for name, row in data.items():
        if name == "bitcoin-otc":
            continue
        assert row["survival"] < 0.5, name
        assert row["survival"] <= bitcoin_survival, name
    # 2. Restricted counts are per-code subsets of the vanilla counts.
    for row in data.values():
        for code, n in row["consecutive"].items():
            assert n <= row["non_consecutive"].get(code, 0)
    # 3. The ask-reply motifs are, in aggregate, amplified in the message
    #    networks (sum of rank changes positive).
    message_gain = sum(
        data[name]["rank_changes"][m]
        for name in ("sms-copenhagen", "college-msg")
        for m in FOCUS
    )
    assert message_gain > 0
