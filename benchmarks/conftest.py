"""Benchmark configuration.

Every paper table/figure has a ``bench_<id>.py`` file whose benchmark runs
the experiment once (``rounds=1`` — these are end-to-end reproductions, not
micro-benchmarks), prints the reproduced artifact, and asserts the shape
claims recorded in DESIGN.md §5.  Kernel benchmarks (enumeration, census,
streaming, sampling) use normal multi-round timing on smaller inputs.

Set ``REPRO_BENCH_SCALE`` to trade fidelity for speed (default 0.5; the
paper-shape assertions are calibrated to hold at ≥ 0.5).
"""

from __future__ import annotations

import os

import pytest

#: Dataset scale for the table/figure reproductions.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, func):
    """Run an end-to-end experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
