"""repro — temporal network motifs: models, limitations, evaluation.

A full reproduction library for Liu, Guarrasi & Sarıyüce, *Temporal
Network Motifs: Models, Limitations, Evaluation* (ICDE 2022 / TKDE).

Quickstart::

    from repro import TemporalGraph, TimingConstraints, run_census

    g = TemporalGraph.from_tuples([(0, 1, 10), (1, 2, 20), (0, 2, 25)])
    census = run_census(g, n_events=3, constraints=TimingConstraints.only_w(60))
    print(census.code_counts)          # Counter({'011202': 1})

Package map:

* :mod:`repro.core` — events, the :class:`TemporalGraph` facade, motif
  notation, event pairs, timing constraints;
* :mod:`repro.storage` — pluggable index/query engines behind the graph
  facade: the :class:`~repro.storage.GraphStorage` contract, the
  plain-list reference backend, a columnar (flat ``array`` + CSR
  offsets) backend, the NumPy/mmap page backend, and the out-of-core
  *partitioned* backend (:mod:`repro.storage.partitioned`: one page set
  per time interval under a ``manifest.json``, partitions opened lazily
  with an LRU-bounded resident set, censuses sharded partition-by-
  partition so datasets larger than memory run under a fixed RSS
  budget); select per graph via ``backend=`` or globally via the
  ``REPRO_STORAGE`` environment variable;
* :mod:`repro.sources` — the one graph-source resolution API:
  :func:`repro.sources.resolve` turns a registered dataset name, a flat
  or partitioned page directory, an inline event list, or a wire spec
  dict into a :class:`~repro.sources.GraphSource` that every consumer
  (library, experiments CLI, census service) opens the same way;
* :mod:`repro.engine` — the unified motif-execution engine: one
  compiled :class:`~repro.engine.ExecutionPlan`
  (:func:`~repro.engine.compile_plan`) per run plus per-backend
  frontier-extension kernels (generic bisection, vectorized NumPy);
  batch, parallel, online and sampling counting all run through it;
* :mod:`repro.models` — the four surveyed motif models;
* :mod:`repro.algorithms` — enumeration (a thin driver over the
  engine), restrictions, counting, the fast two-node counter, streaming
  pattern matching (including
  :func:`~repro.algorithms.streaming.match_live` against a growing
  graph), cycles, sampling (``jobs=``-sharded estimators);
* :mod:`repro.online` — the incremental sliding-window census engines:
  :class:`~repro.online.MultiViewCensus` fans one arrival stream into
  many concurrent views (heterogeneous window lengths, node-set slices,
  restriction predicates — one shared graph tail, prefix store and
  compiled kernel; views added/dropped live, degradable to sampling
  estimates under load), and :class:`~repro.online.OnlineCensus` is its
  single-view facade: exact trailing-window motif counts maintained per
  arriving event, with page-directory checkpoints;
* :mod:`repro.obs` — the observability layer: a process-local metrics
  registry (counters, gauges, mergeable log2-bucket histograms, spans)
  behind a null-recorder default (``repro.obs.enable()``, or the
  ``REPRO_OBS`` environment variable); storage, engine, parallel,
  online and streaming all record into it, and ``--stats`` on the
  experiments CLI renders the per-layer snapshot;
* :mod:`repro.service` — census-as-a-service: a concurrent NDJSON
  query/stream server (``python -m repro.experiments serve``) whose
  worker processes share one memory-mapped page directory, with
  admission control, load shedding to sampling estimates, server-side
  push streams, and the stdlib
  :class:`~repro.service.client.ServiceClient`;
* :mod:`repro.datasets` — synthetic dataset generators, the named
  registry, and (gzip-aware, streaming) event-list I/O;
* :mod:`repro.randomization` — shuffling null models;
* :mod:`repro.analysis` — rankings, proportions, histograms, heat maps;
* :mod:`repro.experiments` — one module per paper table/figure
  (``python -m repro.experiments <id>``).
"""

from repro.algorithms import (
    MotifCensus,
    count_event_pairs,
    count_motifs,
    enumerate_instances,
    run_census,
)
from repro.storage import ColumnarStorage, GraphStorage, ListStorage
from repro.core import (
    ConstraintRegime,
    Event,
    PairType,
    TemporalGraph,
    TimingConstraints,
    all_motif_codes,
    canonical_code,
    classify_pair,
    pair_sequence_of_code,
)
from repro.core.motif import Motif
from repro.datasets import get_dataset
from repro.engine import ExecutionPlan, compile_plan
from repro.models import (
    HulovatyyModel,
    KovanenModel,
    ParanjapeModel,
    SongModel,
)
from repro.online import MultiViewCensus, OnlineCensus
from repro.sources import GraphSource
from repro import sources

__version__ = "1.0.0"

__all__ = [
    "ColumnarStorage",
    "ConstraintRegime",
    "Event",
    "ExecutionPlan",
    "GraphSource",
    "GraphStorage",
    "HulovatyyModel",
    "KovanenModel",
    "ListStorage",
    "Motif",
    "MotifCensus",
    "MultiViewCensus",
    "OnlineCensus",
    "PairType",
    "ParanjapeModel",
    "SongModel",
    "TemporalGraph",
    "TimingConstraints",
    "all_motif_codes",
    "canonical_code",
    "classify_pair",
    "compile_plan",
    "count_event_pairs",
    "count_motifs",
    "enumerate_instances",
    "get_dataset",
    "pair_sequence_of_code",
    "run_census",
    "sources",
    "__version__",
]
