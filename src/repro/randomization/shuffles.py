"""Shuffling null models (the Gauvin et al. taxonomy subset).

Each function returns a new :class:`~repro.core.temporal_graph.TemporalGraph`
built by destroying one kind of correlation while preserving others:

* :func:`permuted_timestamps` — keeps the static structure and the global
  timestamp multiset; destroys per-edge temporal correlations.  (A
  "time-shuffling" model; too loose — almost every motif becomes
  "significant" against it, as the paper observed.)
* :func:`link_shuffle` — keeps every edge's event time list; rewires which
  node pair carries it.  (A "link-shuffling" model; destroys topology-time
  alignment but keeps burstiness.)
* :func:`shuffle_interevent_times` — keeps each edge's event count and
  first-event time; resamples the order of its inter-event gaps.  (Very
  restrictive — motif counts barely move, the paper's other failure mode.)
* :func:`snapshot_shuffle` — shuffles events within fixed-width time bins,
  preserving coarse activity rhythm while destroying fine ordering.
"""

from __future__ import annotations

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def permuted_timestamps(
    graph: TemporalGraph, seed: int | np.random.Generator | None = None
) -> TemporalGraph:
    """Randomly permute timestamps across events (structure preserved)."""
    rng = _rng(seed)
    times = np.array(graph.times)
    rng.shuffle(times)
    events = [Event(ev.u, ev.v, float(t)) for ev, t in zip(graph.events, times)]
    return TemporalGraph(events, name=f"{graph.name}[P(t)]" if graph.name else "")


def link_shuffle(
    graph: TemporalGraph, seed: int | np.random.Generator | None = None
) -> TemporalGraph:
    """Permute which node pair carries each edge's event time list.

    The multiset of per-edge time lists is preserved exactly; the mapping
    from time lists to node pairs is shuffled.  Degree sequences change;
    per-edge burstiness does not.
    """
    rng = _rng(seed)
    edges = list(graph.edge_events)
    order = rng.permutation(len(edges))
    events: list[Event] = []
    for src_pos, dst_pos in enumerate(order):
        u, v = edges[int(dst_pos)]
        for idx in graph.edge_events[edges[src_pos]]:
            events.append(Event(u, v, graph.times[idx]))
    return TemporalGraph(events, name=f"{graph.name}[P(L)]" if graph.name else "")


def shuffle_interevent_times(
    graph: TemporalGraph, seed: int | np.random.Generator | None = None
) -> TemporalGraph:
    """Shuffle each edge's inter-event gaps, keeping its first-event time.

    Per-edge event counts, first activations, and gap multisets are all
    preserved; only the *order* of gaps changes.  This is the restrictive
    end of the taxonomy.
    """
    rng = _rng(seed)
    events: list[Event] = []
    for (u, v), idxs in graph.edge_events.items():
        times = [graph.times[i] for i in idxs]
        gaps = np.diff(times)
        rng.shuffle(gaps)
        t = times[0]
        events.append(Event(u, v, t))
        for gap in gaps:
            t += float(gap)
            events.append(Event(u, v, t))
    return TemporalGraph(events, name=f"{graph.name}[P(Δt)]" if graph.name else "")


def snapshot_shuffle(
    graph: TemporalGraph,
    bin_width: float,
    seed: int | np.random.Generator | None = None,
) -> TemporalGraph:
    """Reassign each event a uniform time inside its own time bin.

    Coarse activity (events per bin) is preserved; ordering within a bin is
    randomized.  ``bin_width`` plays the snapshot-resolution role.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    rng = _rng(seed)
    events = []
    for ev in graph.events:
        base = (ev.t // bin_width) * bin_width
        events.append(Event(ev.u, ev.v, base + float(rng.random()) * bin_width))
    return TemporalGraph(events, name=f"{graph.name}[P(bin)]" if graph.name else "")


def motif_zscore(
    observed: dict[str, int],
    null_counts: list[dict[str, int]],
) -> dict[str, float]:
    """Z-scores of observed motif counts against an ensemble of null counts.

    The classic static-motif significance recipe (Milo et al.), provided so
    users can reproduce the paper's negative finding: against loose nulls
    everything is significant, against tight nulls nothing is.
    """
    if not null_counts:
        raise ValueError("need at least one null sample")
    codes = set(observed)
    for sample in null_counts:
        codes.update(sample)
    out: dict[str, float] = {}
    for code in codes:
        samples = np.array([s.get(code, 0) for s in null_counts], dtype=float)
        mean = samples.mean()
        std = samples.std()
        obs = observed.get(code, 0)
        if std == 0:
            out[code] = 0.0 if obs == mean else float("inf") if obs > mean else float("-inf")
        else:
            out[code] = (obs - mean) / std
    return out
