"""Randomized reference models for temporal networks.

The paper's "Comparison criteria" paragraph (Section 5) reports trying
several link- and time-shuffling null models from Gauvin et al. and finding
none that mimics both structural and temporal features.  This package
implements the standard members of that family so users can repeat that
investigation.
"""

from repro.randomization.shuffles import (
    link_shuffle,
    permuted_timestamps,
    shuffle_interevent_times,
    snapshot_shuffle,
)

__all__ = [
    "link_shuffle",
    "permuted_timestamps",
    "shuffle_interevent_times",
    "snapshot_shuffle",
]
