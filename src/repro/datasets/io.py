"""Plain-text event-list I/O.

The on-disk format follows the SNAP temporal edge-list convention used by
the paper's datasets: one event per line, ``<source> <target> <timestamp>``
separated by whitespace, ``#``-prefixed comment lines allowed.  Timestamps
are written as integers when integral, floats otherwise.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


def write_event_list(graph: TemporalGraph, path: str | Path, *, header: bool = True) -> None:
    """Write a temporal graph as a whitespace-separated event list."""
    path = Path(path)
    with path.open("w") as handle:
        if header:
            label = graph.name or "temporal network"
            handle.write(f"# {label}: {graph.num_nodes} nodes, {len(graph)} events\n")
            handle.write("# source target timestamp\n")
        for ev in graph.events:
            t = int(ev.t) if float(ev.t).is_integer() else ev.t
            handle.write(f"{ev.u} {ev.v} {t}\n")


def read_event_list(path: str | Path, *, name: str = "") -> TemporalGraph:
    """Read a whitespace-separated event list into a temporal graph.

    Raises :class:`ValueError` with the offending line number on malformed
    input.
    """
    path = Path(path)
    events: list[Event] = []
    with path.open() as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'source target timestamp', got {line!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                t = float(parts[2])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: unparsable event {line!r}") from exc
            events.append(Event(u, v, t))
    return TemporalGraph(events, name=name or path.stem)


def roundtrip(graph: TemporalGraph, path: str | Path) -> TemporalGraph:
    """Write then re-read a graph (test/debug helper)."""
    write_event_list(graph, path)
    return read_event_list(path, name=graph.name)


def write_many(graphs: Iterable[TemporalGraph], directory: str | Path) -> list[Path]:
    """Write several graphs into a directory as ``<name>.txt`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for graph in graphs:
        if not graph.name:
            raise ValueError("write_many requires named graphs")
        target = directory / f"{graph.name}.txt"
        write_event_list(graph, target)
        paths.append(target)
    return paths
