"""Plain-text event-list I/O.

The on-disk format follows the SNAP temporal edge-list convention used by
the paper's datasets: one event per line, ``<source> <target> <timestamp>``
separated by whitespace, ``#``-prefixed comment lines allowed.  Timestamps
are written as integers when integral, floats otherwise.

Paths ending in ``.gz`` are transparently gzip-(de)compressed — SNAP
distributes its large temporal networks gzipped, and decompressing a
multi-hundred-MB edge list just to read it defeats the purpose.  Reading
streams line-by-line through :func:`iter_event_list` straight into the
graph's storage engine, so no intermediate event list is ever
materialized and peak memory stays at one copy of the data.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open a possibly gzip-compressed path in text mode."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return path.open(mode)


def _stem(path: Path) -> str:
    """File stem with the compression suffix also stripped (``a.txt.gz`` → ``a``)."""
    stem = path.stem
    return Path(stem).stem if path.suffix == ".gz" else stem


def write_event_list(graph: TemporalGraph, path: str | Path, *, header: bool = True) -> None:
    """Write a temporal graph as a whitespace-separated event list.

    A ``.gz`` suffix on ``path`` selects gzip compression.  Events are
    streamed to the handle one line at a time.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            label = graph.name or "temporal network"
            handle.write(f"# {label}: {graph.num_nodes} nodes, {len(graph)} events\n")
            handle.write("# source target timestamp\n")
        for ev in graph.events:
            t = int(ev.t) if float(ev.t).is_integer() else ev.t
            handle.write(f"{ev.u} {ev.v} {t}\n")


def iter_event_list(path: str | Path) -> Iterator[Event]:
    """Stream events from a (possibly gzipped) event list, one at a time.

    Comment and blank lines are skipped.  Raises :class:`ValueError` with
    the offending line number on malformed input.  This is the zero-copy
    ingestion path: pipe it into :class:`TemporalGraph` (or any storage
    engine) without building an intermediate list.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'source target timestamp', got {line!r}"
                )
            try:
                yield Event(int(parts[0]), int(parts[1]), float(parts[2]))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: unparsable event {line!r}") from exc


def read_event_list(
    path: str | Path, *, name: str = "", backend: str | None = None
) -> TemporalGraph:
    """Read a whitespace-separated event list into a temporal graph.

    Lines stream straight into the graph's storage engine (selected by
    ``backend``/``REPRO_STORAGE``), so large SNAP-style datasets load
    without a second in-memory copy.  Raises :class:`ValueError` with the
    offending line number on malformed input.
    """
    path = Path(path)
    return TemporalGraph(
        iter_event_list(path), name=name or _stem(path), backend=backend
    )


def roundtrip(graph: TemporalGraph, path: str | Path) -> TemporalGraph:
    """Write then re-read a graph (test/debug helper)."""
    write_event_list(graph, path)
    return read_event_list(path, name=graph.name)


def write_many(graphs: Iterable[TemporalGraph], directory: str | Path) -> list[Path]:
    """Write several graphs into a directory as ``<name>.txt`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for graph in graphs:
        if not graph.name:
            raise ValueError("write_many requires named graphs")
        target = directory / f"{graph.name}.txt"
        write_event_list(graph, target)
        paths.append(target)
    return paths
