"""Dataset statistics — the building blocks of Table 2.

For each network the paper reports: nodes, events, edges (distinct directed
node pairs), #T (distinct timestamps), |Eu|/|E| (fraction of events whose
timestamp is unique), and m(Δt) (median inter-event time in seconds).
:func:`compute_stats` computes all six; :func:`stats_table` renders the
table for any collection of graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 2."""

    name: str
    nodes: int
    events: int
    edges: int
    unique_timestamps: int
    unique_ts_fraction: float
    median_interevent: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.nodes,
            self.events,
            self.edges,
            self.unique_timestamps,
            self.unique_ts_fraction,
            self.median_interevent,
        )


def compute_stats(graph: TemporalGraph, *, name: str | None = None) -> DatasetStats:
    """Compute the Table-2 statistics of a temporal graph."""
    return DatasetStats(
        name=name if name is not None else (graph.name or "unnamed"),
        nodes=graph.num_nodes,
        events=len(graph),
        edges=graph.num_edges,
        unique_timestamps=graph.unique_timestamps(),
        unique_ts_fraction=graph.unique_timestamp_fraction(),
        median_interevent=graph.median_interevent_time(),
    )


def _fmt_count(n: int) -> str:
    """Compact K/M formatting, Table-2 style."""
    if n >= 1_000_000:
        return f"{n / 1_000_000:.2f}M"
    if n >= 10_000:
        return f"{n / 1_000:.1f}K"
    if n >= 1_000:
        return f"{n / 1_000:.2f}K"
    return str(n)


def stats_table(stats: Iterable[DatasetStats]) -> str:
    """Render Table 2 as aligned text."""
    header = ("Name", "Nodes", "Events", "Edges", "#T", "|Eu|/|E|", "m(Δt)")
    rows: list[Sequence[str]] = [header]
    for s in stats:
        rows.append(
            (
                s.name,
                _fmt_count(s.nodes),
                _fmt_count(s.events),
                _fmt_count(s.edges),
                _fmt_count(s.unique_timestamps),
                f"{100 * s.unique_ts_fraction:.1f}%",
                f"{s.median_interevent:.0f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(header))))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
