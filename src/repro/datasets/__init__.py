"""Datasets: synthetic generators, the named registry, I/O, and statistics.

The paper evaluates on nine real temporal networks (Table 2).  Those are
not redistributable/offline-fetchable, so this package provides an
event-driven *activity model* generator
(:class:`~repro.datasets.generators.ActivityModel`) whose reaction
mechanisms produce the domain signatures the paper's analysis keys on, and
a registry of nine named configurations calibrated per domain
(:func:`~repro.datasets.registry.get_dataset`).  See DESIGN.md §3 for the
substitution rationale.
"""

from repro.datasets.generators import ActivityConfig, ActivityModel, generate
from repro.datasets.io import iter_event_list, read_event_list, write_event_list
from repro.datasets.registry import DATASETS, dataset_names, get_dataset
from repro.datasets.statistics import DatasetStats, compute_stats, stats_table

__all__ = [
    "ActivityConfig",
    "ActivityModel",
    "DATASETS",
    "DatasetStats",
    "compute_stats",
    "dataset_names",
    "generate",
    "get_dataset",
    "iter_event_list",
    "read_event_list",
    "stats_table",
    "write_event_list",
]
