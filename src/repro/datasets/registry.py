"""The nine named datasets of Table 2, as calibrated synthetic analogues.

Each entry pairs an :class:`~repro.datasets.generators.ActivityConfig`
(the mechanism mix of the domain) with the paper's reference statistics
(the full-size Table 2 row) so experiments can print paper-vs-generated
comparisons.  Sizes are scaled roughly 10–100× down from the originals so
pure-Python enumeration completes; relative inter-event timescales are
preserved, which is what the ΔC/ΔW experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generators import ActivityConfig, generate
from repro.core.temporal_graph import TemporalGraph

DAY = 86_400.0
WEEK = 7 * DAY


@dataclass(frozen=True)
class PaperRow:
    """The original Table 2 row (full-size dataset, for reference)."""

    nodes: float
    events: float
    edges: float
    unique_ts_fraction: float
    median_interevent: float


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: generator config + provenance."""

    name: str
    description: str
    config: ActivityConfig
    paper_row: PaperRow
    default_seed: int


DATASETS: dict[str, DatasetSpec] = {
    "calls-copenhagen": DatasetSpec(
        name="calls-copenhagen",
        description=(
            "Phone calls between university students over four weeks "
            "(Copenhagen Networks Study): callbacks, out-bursts, few "
            "ping-pong flurries — calls already carry two-way exchange."
        ),
        config=ActivityConfig(
            n_nodes=450,
            n_events=3_600,
            timespan=4 * WEEK,
            p_reply=0.20,
            p_repeat=0.12,
            p_cc=0.30,
            cc_max=2,
            p_forward=0.10,
            reaction_mean=240.0,
            p_delayed_echo=0.4,
            long_delay_factor=10.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(536, 3_600, 924, 0.997, 194),
        default_seed=11,
    ),
    "sms-copenhagen": DatasetSpec(
        name="sms-copenhagen",
        description=(
            "Text messages from the Copenhagen Networks Study: dominated "
            "by two-person conversations (repetitions + ping-pongs) with "
            "short reaction delays."
        ),
        config=ActivityConfig(
            n_nodes=550,
            n_events=9_000,
            timespan=1.5 * WEEK,
            p_reply=0.55,
            p_repeat=0.35,
            p_cc=0.10,
            p_forward=0.12,
            reaction_mean=60.0,
            p_delayed_echo=0.5,
            long_delay_factor=40.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(568, 24_300, 1_300, 0.976, 32),
        default_seed=12,
    ),
    "college-msg": DatasetSpec(
        name="college-msg",
        description=(
            "Private messages on a college social platform (SNAP "
            "CollegeMsg): conversational like SMS but over a larger, "
            "sparser population."
        ),
        config=ActivityConfig(
            n_nodes=1_200,
            n_events=12_000,
            timespan=8 * WEEK,
            p_reply=0.50,
            p_repeat=0.30,
            p_cc=0.10,
            p_forward=0.12,
            reaction_mean=150.0,
            p_delayed_echo=0.5,
            long_delay_factor=16.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(1_900, 59_800, 20_300, 0.972, 37),
        default_seed=13,
    ),
    "email": DatasetSpec(
        name="email",
        description=(
            "Emails inside a European research institution (SNAP "
            "email-Eu-core): carbon copies fire to several recipients at "
            "the *same timestamp*, which is why only ~half of the events "
            "have a unique timestamp in Table 2."
        ),
        config=ActivityConfig(
            n_nodes=900,
            n_events=18_000,
            timespan=80 * WEEK,
            p_reply=0.30,
            p_repeat=0.25,
            p_cc=0.35,
            cc_max=2,
            cc_same_timestamp=True,
            p_forward=0.10,
            reaction_mean=600.0,
            p_delayed_echo=0.5,
            long_delay_factor=4.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(986, 332_000, 24_900, 0.505, 15),
        default_seed=14,
    ),
    "sms-a": DatasetSpec(
        name="sms-a",
        description=(
            "A large national SMS log (Wu et al.): the shortest median "
            "inter-event time of all datasets; intense short-delay "
            "conversations."
        ),
        config=ActivityConfig(
            n_nodes=3_000,
            n_events=15_000,
            timespan=16 * WEEK,
            p_reply=0.60,
            p_repeat=0.40,
            p_cc=0.08,
            p_forward=0.10,
            reaction_mean=30.0,
            p_delayed_echo=0.5,
            long_delay_factor=80.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(44_400, 548_000, 69_000, 0.731, 3),
        default_seed=15,
    ),
    "fb-wall": DatasetSpec(
        name="fb-wall",
        description=(
            "Facebook wall posts in the New Orleans region (Viswanath et "
            "al.): mixed mechanisms — reciprocal posting, repeat visits, "
            "some forwarding."
        ),
        config=ActivityConfig(
            n_nodes=4_000,
            n_events=15_000,
            timespan=52 * WEEK,
            p_reply=0.35,
            p_repeat=0.20,
            p_cc=0.10,
            p_forward=0.12,
            reaction_mean=300.0,
            p_delayed_echo=0.4,
            long_delay_factor=8.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(47_000, 877_000, 274_000, 0.980, 42),
        default_seed=16,
    ),
    "bitcoin-otc": DatasetSpec(
        name="bitcoin-otc",
        description=(
            "The Bitcoin-OTC trust network (SNAP): each user rates another "
            "at most once per direction, so *no repeated edges exist* — "
            "repetition motifs are structurally impossible (Table 4's "
            "all-zero row)."
        ),
        config=ActivityConfig(
            n_nodes=1_500,
            n_events=6_000,
            timespan=100 * WEEK,
            p_reply=0.25,
            p_forward=0.18,
            p_cc=0.15,
            reaction_mean=3_600.0,
            p_delayed_echo=0.3,
            long_delay_factor=1.0,
            convey_delay_factor=0.1,
            allow_repeated_edges=False,
        ),
        paper_row=PaperRow(5_880, 35_600, 35_600, 0.992, 707),
        default_seed=17,
    ),
    "stackoverflow": DatasetSpec(
        name="stackoverflow",
        description=(
            "Answers/comments on Stack Overflow (SNAP sx-stackoverflow, "
            "earliest slice): a new question draws answers from many "
            "distinct users in a short period — the in-burst signature."
        ),
        config=ActivityConfig(
            n_nodes=5_000,
            n_events=20_000,
            timespan=40 * WEEK,
            p_reply=0.25,
            p_repeat=0.10,
            p_in_burst=0.50,
            in_burst_max=3,
            p_forward=0.10,
            reaction_mean=120.0,
            p_delayed_echo=0.4,
            long_delay_factor=20.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(260_000, 6_350_000, 4_150_000, 0.882, 6),
        default_seed=18,
    ),
    "superuser": DatasetSpec(
        name="superuser",
        description=(
            "Answers/comments on Super User (SNAP sx-superuser): same "
            "in-burst mechanism as Stack Overflow, sparser traffic."
        ),
        config=ActivityConfig(
            n_nodes=3_000,
            n_events=12_000,
            timespan=52 * WEEK,
            p_reply=0.25,
            p_repeat=0.10,
            p_in_burst=0.45,
            in_burst_max=3,
            p_forward=0.10,
            reaction_mean=300.0,
            p_delayed_echo=0.4,
            long_delay_factor=8.0,
            convey_delay_factor=0.1,
        ),
        paper_row=PaperRow(194_000, 1_440_000, 925_000, 0.992, 83),
        default_seed=19,
    ),
}

#: The paper's presentation order for message-network commentary.
MESSAGE_NETWORKS = ("sms-copenhagen", "college-msg", "sms-a")


def dataset_names() -> tuple[str, ...]:
    """All registered dataset names, in registry order."""
    return tuple(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec; raises :class:`KeyError` with suggestions."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None


def get_dataset(
    name: str, *, scale: float = 1.0, seed: int | None = None
) -> TemporalGraph:
    """Generate a named dataset.

    Parameters
    ----------
    scale:
        Multiplier on node and event counts (1.0 = registry size).
        Benchmarks use fractions for speed; tests use small fractions.
    seed:
        Override the spec's default seed (defaults keep every run of the
        experiment suite on identical data).
    """
    spec = get_spec(name)
    config = spec.config if scale == 1.0 else spec.config.scaled(scale)
    actual_seed = spec.default_seed if seed is None else seed
    return generate(config, seed=actual_seed, name=spec.name)
