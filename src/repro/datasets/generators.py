"""Event-driven synthetic temporal network generator (the activity model).

The generator substitutes for the paper's nine real datasets (see DESIGN.md
§3).  It is a discrete-event simulation with two layers:

* a **background layer**: events arrive as a Poisson process over the
  configured timespan; sources are drawn from a Zipf-like activity
  distribution and targets from a Zipf-like popularity distribution, and
* a **reaction layer**: every emitted event probabilistically triggers
  follow-up events after short (exponential) delays.  Each reaction type
  plants one of the paper's six event-pair mechanisms:

  - *reply* → ping-pong pairs (two-way conversations in message networks),
  - *repeat* → repetition pairs (resent messages, repeated calls),
  - *cc* → out-burst pairs (carbon copies; optionally at the **same
    timestamp** as the original, reproducing Email's 50.5 % unique-
    timestamp rate in Table 2),
  - *forward* → convey pairs (information passing on),
  - *in-burst* → in-burst pairs (many answerers to one asker, the
    Q&A-site signature).

Reactions may chain with geometrically decaying probability, which yields
the bursty inter-event distributions (low median Δt against a long tail)
that make the ΔC/ΔW trade-off of Section 5.2 visible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class ActivityConfig:
    """Parameters of the activity model.

    Probabilities are per emitted event; a reaction at chain depth ``d``
    fires with probability ``p * chain_decay**d``.
    """

    n_nodes: int
    n_events: int
    timespan: float
    p_reply: float = 0.0
    p_repeat: float = 0.0
    p_cc: float = 0.0
    p_forward: float = 0.0
    p_in_burst: float = 0.0
    cc_max: int = 2
    in_burst_max: int = 2
    cc_same_timestamp: bool = False
    reaction_mean: float = 120.0
    #: probability that a reply/repeat echo is *delayed* — drawn with a mean
    #: ``long_delay_factor`` times larger.  Delayed echoes create the
    #: delayed-repetition motifs (010201) whose suppression by constrained
    #: dynamic graphlets Table 4 measures, and the far-apart R/P pairs that
    #: only-ΔW configurations amplify (Table 5).
    p_delayed_echo: float = 0.0
    long_delay_factor: float = 30.0
    #: conveys (forwards) are promptly causal: their delay mean is scaled by
    #: this factor (< 1 keeps C pairs alive under tight ΔC, the Table 5
    #: asymmetry).
    convey_delay_factor: float = 1.0
    #: probability that a forward returns to the chain's *origin* node,
    #: closing a convey triangle (a→b, b→c, c→a) — the triadic-closure
    #: mechanism behind the pure C,W motifs of Table 5 and the temporal
    #: cycles of the fraud example.
    p_return: float = 0.25
    chain_decay: float = 0.5
    max_chain_depth: int = 3
    activity_exponent: float = 0.9
    popularity_exponent: float = 0.9
    allow_repeated_edges: bool = True
    time_resolution: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.n_events < 1:
            raise ValueError("need at least one event")
        if self.timespan <= 0:
            raise ValueError("timespan must be positive")
        for name in ("p_reply", "p_repeat", "p_cc", "p_forward", "p_in_burst"):
            p = getattr(self, name)
            if not 0 <= p <= 1:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.reaction_mean <= 0:
            raise ValueError("reaction_mean must be positive")
        if not 0 <= self.p_delayed_echo <= 1:
            raise ValueError("p_delayed_echo must be a probability")
        if self.long_delay_factor < 1:
            raise ValueError("long_delay_factor must be >= 1")
        if self.convey_delay_factor <= 0:
            raise ValueError("convey_delay_factor must be positive")
        if not 0 <= self.p_return <= 1:
            raise ValueError("p_return must be a probability")
        if not 0 <= self.chain_decay <= 1:
            raise ValueError("chain_decay must be in [0, 1]")
        if self.time_resolution <= 0:
            raise ValueError("time_resolution must be positive")

    def scaled(self, scale: float) -> "ActivityConfig":
        """A copy with node and event counts scaled (≥ minimum sizes).

        The timespan is left unchanged so event density — and therefore
        motif counts per window — grows with scale, as it does when moving
        from a subsample to a full dataset.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self,
            n_nodes=max(2, int(round(self.n_nodes * scale))),
            n_events=max(1, int(round(self.n_events * scale))),
        )


@dataclass(order=True)
class _Scheduled:
    """Heap entry: a pending event with its reaction chain depth and origin."""

    t: float
    seq: int
    u: int = field(compare=False)
    v: int = field(compare=False)
    depth: int = field(compare=False)
    origin: int = field(compare=False)


class ActivityModel:
    """The simulator.  Use :func:`generate` for the one-call path."""

    def __init__(self, config: ActivityConfig, seed: int | None = None) -> None:
        self.config = config
        self.rng = np.random.default_rng(seed)
        self._seq = 0
        ranks = np.arange(1, config.n_nodes + 1, dtype=float)
        activity = ranks ** (-config.activity_exponent)
        popularity = ranks ** (-config.popularity_exponent)
        # Shuffle so activity and popularity ranks are not the same nodes.
        self.rng.shuffle(popularity)
        self._activity_cdf = np.cumsum(activity / activity.sum())
        self._popularity_cdf = np.cumsum(popularity / popularity.sum())

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def _sample_active_node(self) -> int:
        return int(np.searchsorted(self._activity_cdf, self.rng.random()))

    def _sample_popular_node(self, exclude: tuple[int, ...] = ()) -> int:
        for _ in range(16):
            node = int(np.searchsorted(self._popularity_cdf, self.rng.random()))
            if node not in exclude:
                return node
        # Dense exclusion fallback: uniform over the complement.
        pool = [n for n in range(self.config.n_nodes) if n not in exclude]
        return int(self.rng.choice(pool))

    def _snap(self, t: float) -> float:
        res = self.config.time_resolution
        return max(0.0, (t // res) * res)

    def _delay(self) -> float:
        return float(self.rng.exponential(self.config.reaction_mean))

    def _echo_delay(self) -> float:
        """Delay of a reply/repeat: occasionally heavy-tailed."""
        mean = self.config.reaction_mean
        if self.rng.random() < self.config.p_delayed_echo:
            mean *= self.config.long_delay_factor
        return float(self.rng.exponential(mean))

    def _convey_delay(self) -> float:
        """Delay of a forward: promptly causal."""
        return float(
            self.rng.exponential(self.config.reaction_mean * self.config.convey_delay_factor)
        )

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self) -> TemporalGraph:
        """Simulate until ``n_events`` events are emitted; return the graph."""
        cfg = self.config
        rate = cfg.n_events / cfg.timespan
        heap: list[_Scheduled] = []
        next_background = float(self.rng.exponential(1.0 / rate))
        emitted: list[Event] = []
        used_edges: set[tuple[int, int]] = set()

        while len(emitted) < cfg.n_events:
            if heap and heap[0].t <= next_background:
                item = heapq.heappop(heap)
                self._emit(
                    item.u,
                    item.v,
                    item.t,
                    item.depth,
                    item.origin,
                    heap,
                    emitted,
                    used_edges,
                )
            else:
                t = next_background
                next_background += float(self.rng.exponential(1.0 / rate))
                u = self._sample_active_node()
                v = self._sample_popular_node(exclude=(u,))
                self._emit(u, v, t, 0, u, heap, emitted, used_edges)
        return TemporalGraph(emitted[: cfg.n_events])

    def _emit(
        self,
        u: int,
        v: int,
        t: float,
        depth: int,
        origin: int,
        heap: list[_Scheduled],
        emitted: list[Event],
        used_edges: set[tuple[int, int]],
    ) -> None:
        cfg = self.config
        t = self._snap(t)
        edge = (u, v)
        if not cfg.allow_repeated_edges:
            if edge in used_edges:
                return
            used_edges.add(edge)
        emitted.append(Event(u, v, t))
        if depth >= cfg.max_chain_depth:
            return
        scale = cfg.chain_decay ** depth
        rng = self.rng

        if rng.random() < cfg.p_reply * scale:
            self._schedule(heap, v, u, t + self._echo_delay(), depth + 1, origin)
        if rng.random() < cfg.p_repeat * scale:
            self._schedule(heap, u, v, t + self._echo_delay(), depth + 1, origin)
        if rng.random() < cfg.p_cc * scale:
            n_cc = int(rng.integers(1, cfg.cc_max + 1))
            for _ in range(n_cc):
                w = self._sample_popular_node(exclude=(u, v))
                cc_t = t if cfg.cc_same_timestamp else t + self._delay()
                self._schedule(heap, u, w, cc_t, depth + 1, origin)
        if rng.random() < cfg.p_forward * scale:
            # A forward may close the loop back to the chain's origin
            # (triadic closure / information returning to its source).
            if origin not in (u, v) and rng.random() < cfg.p_return:
                w = origin
            else:
                w = self._sample_popular_node(exclude=(u, v))
            self._schedule(heap, v, w, t + self._convey_delay(), depth + 1, origin)
        if rng.random() < cfg.p_in_burst * scale:
            n_in = int(rng.integers(1, cfg.in_burst_max + 1))
            for _ in range(n_in):
                w = self._sample_popular_node(exclude=(u, v))
                self._schedule(heap, w, v, t + self._delay(), depth + 1, origin)

    def _schedule(
        self,
        heap: list[_Scheduled],
        u: int,
        v: int,
        t: float,
        depth: int,
        origin: int,
    ) -> None:
        if u == v:
            return
        self._seq += 1
        heapq.heappush(
            heap, _Scheduled(t=t, seq=self._seq, u=u, v=v, depth=depth, origin=origin)
        )


def generate(config: ActivityConfig, seed: int | None = None, *, name: str = "") -> TemporalGraph:
    """Run the activity model once and return the resulting temporal graph."""
    graph = ActivityModel(config, seed=seed).run()
    return TemporalGraph(graph.events, name=name) if name else graph
