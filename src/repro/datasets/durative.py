"""Durative event I/O and generation (the Hulovatyy duration pathway).

Section 4.2: events can carry durations (call lengths in CDRs), and
Hulovatyy et al.'s model is the only surveyed one that incorporates them —
temporal adjacency runs from the *end* of the earlier event to the start
of the later one.  The rest of the library works on instantaneous events;
this module bridges the two:

* read/write 4-column event lists (``u v t duration``),
* split a durative list into the instantaneous graph plus the
  index → duration map that :class:`~repro.models.hulovatyy.HulovatyyModel`
  accepts,
* attach synthetic call durations to a generated network.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.events import DurativeEvent, Event
from repro.core.temporal_graph import TemporalGraph


def split_durative(
    events: Sequence[DurativeEvent],
) -> tuple[TemporalGraph, dict[int, float]]:
    """Build the instantaneous graph and its index → duration map.

    Durations follow events through the graph's time sort, so the returned
    map is keyed by the *graph's* event indices (usable directly as
    ``HulovatyyModel(..., durations=...)``).
    """
    tagged = sorted(events, key=lambda ev: (ev.t, ev.u, ev.v, ev.duration))
    graph = TemporalGraph(Event(ev.u, ev.v, ev.t) for ev in tagged)
    durations: dict[int, float] = {}
    cursor = 0
    for idx, gev in enumerate(graph.events):
        # graph sorting is stable w.r.t. our pre-sort on (t, u, v)
        ev = tagged[cursor]
        if (ev.u, ev.v, ev.t) != (gev.u, gev.v, gev.t):  # pragma: no cover
            raise AssertionError("durative/instantaneous ordering diverged")
        durations[idx] = ev.duration
        cursor += 1
    return graph, durations


def write_durative_event_list(
    events: Sequence[DurativeEvent], path: str | Path, *, header: bool = True
) -> None:
    """Write ``u v t duration`` lines."""
    path = Path(path)
    with path.open("w") as handle:
        if header:
            handle.write("# source target timestamp duration\n")
        for ev in sorted(events, key=lambda e: (e.t, e.u, e.v)):
            t = int(ev.t) if float(ev.t).is_integer() else ev.t
            d = int(ev.duration) if float(ev.duration).is_integer() else ev.duration
            handle.write(f"{ev.u} {ev.v} {t} {d}\n")


def read_durative_event_list(path: str | Path) -> list[DurativeEvent]:
    """Read ``u v t duration`` lines (comments and blanks skipped)."""
    path = Path(path)
    out: list[DurativeEvent] = []
    with path.open() as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 4:
                raise ValueError(
                    f"{path}:{lineno}: expected 'source target timestamp "
                    f"duration', got {line!r}"
                )
            try:
                out.append(
                    DurativeEvent(
                        int(parts[0]),
                        int(parts[1]),
                        float(parts[2]),
                        float(parts[3]),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: unparsable event {line!r}") from exc
    return out


def attach_call_durations(
    graph: TemporalGraph,
    *,
    mean_duration: float = 90.0,
    seed: int | None = None,
) -> list[DurativeEvent]:
    """Give every event an exponential call duration.

    Durations are clipped so a call never outlasts the same edge's next
    event (a call cannot overlap its own redial) — keeping the durative
    view physically sensible for CDR-style data.
    """
    if mean_duration <= 0:
        raise ValueError("mean_duration must be positive")
    rng = np.random.default_rng(seed)
    out: list[DurativeEvent] = []
    for idx, ev in enumerate(graph.events):
        duration = float(rng.exponential(mean_duration))
        siblings = graph.edge_events[ev.edge]
        pos = siblings.index(idx)
        if pos + 1 < len(siblings):
            gap = graph.times[siblings[pos + 1]] - ev.t
            duration = min(duration, max(gap, 0.0))
        out.append(DurativeEvent(ev.u, ev.v, ev.t, round(duration, 3)))
    return out
