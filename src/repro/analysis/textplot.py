"""ASCII rendering of histograms and heat maps.

The paper's figures are matplotlib charts; this offline library renders
the same numeric series as monospace text so that every "figure"
experiment produces a human-readable artifact alongside its data.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.eventpairs import ALL_PAIR_TYPES

#: Shade ramp for heat maps, light to dark.
_SHADES = " .:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart: one row per label, bars scaled to ``width``."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(empty)"])
    peak = max(values) if max(values) > 0 else 1.0
    label_width = max(len(str(lab)) for lab in labels)
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def histogram(
    edges: np.ndarray,
    counts: np.ndarray,
    *,
    width: int = 40,
    title: str = "",
    fmt: str = "{:.0f}",
) -> str:
    """Render a binned histogram (as produced by the timespan module)."""
    labels = [
        f"[{fmt.format(edges[i])},{fmt.format(edges[i + 1])})"
        for i in range(len(counts))
    ]
    return bar_chart(labels, [float(c) for c in counts], width=width, title=title)


def heatmap(
    matrix: np.ndarray,
    *,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render a matrix as a shaded character grid (Figure 6 style).

    Cell shade is proportional to the value, normalized per matrix;
    zero cells render as spaces.
    """
    matrix = np.asarray(matrix, dtype=float)
    n_rows, n_cols = matrix.shape
    rows = row_labels if row_labels is not None else [str(i) for i in range(n_rows)]
    cols = col_labels if col_labels is not None else [str(j) for j in range(n_cols)]
    peak = matrix.max() if matrix.size and matrix.max() > 0 else 1.0
    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(str(r)) for r in rows)
    header = " " * (label_width + 1) + " ".join(f"{c:>2}" for c in cols)
    lines.append(header)
    for i, row_label in enumerate(rows):
        cells = []
        for j in range(n_cols):
            level = matrix[i, j] / peak
            shade = _SHADES[min(int(level * (len(_SHADES) - 1) + 0.999), len(_SHADES) - 1)]
            cells.append(shade * 2)
        lines.append(f"{str(row_label).rjust(label_width)} " + " ".join(cells))
    return "\n".join(lines)


def pair_heatmap(matrix: np.ndarray, *, title: str = "") -> str:
    """Figure-6 heat map with R/P/I/O/C/W axis labels."""
    labels = [p.value for p in ALL_PAIR_TYPES]
    return heatmap(matrix, row_labels=labels, col_labels=labels, title=title)


def table(
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(header)] + str_rows
    widths = [max(len(r[i]) for r in all_rows) for i in range(len(header))]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def pie_text(shares: Mapping[object, float], *, title: str = "") -> str:
    """Textual stand-in for Figure 3's pie charts: label, percent, bar."""
    lines: list[str] = []
    if title:
        lines.append(title)
    for key, share in shares.items():
        bar = "#" * int(round(40 * share))
        lines.append(f"{str(key):>2} {100 * share:5.1f}% | {bar}")
    return "\n".join(lines)
