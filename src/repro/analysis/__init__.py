"""Analysis toolkit: the summaries behind the paper's tables and figures.

* :mod:`repro.analysis.rankings` — motif rankings and rank-change deltas
  (Tables 3 and 6),
* :mod:`repro.analysis.proportions` — proportion vectors, changes, and
  variance (Tables 4 and 7, Figure 3),
* :mod:`repro.analysis.intermediate` — intermediate-event position
  histograms (Figures 4 and 9),
* :mod:`repro.analysis.timespan` — motif timespan distributions
  (Figures 5 and 10),
* :mod:`repro.analysis.pairseq` — ordered event-pair sequence matrices
  (Figures 6 and 11),
* :mod:`repro.analysis.textplot` — ASCII rendering of histograms and
  heat maps (the offline stand-in for matplotlib).
"""

from repro.analysis.intermediate import position_histogram, skewness
from repro.analysis.pairseq import pair_sequence_matrix
from repro.analysis.proportions import (
    proportion_changes,
    proportion_variance,
    proportions,
)
from repro.analysis.rankings import rank_changes, rank_motifs
from repro.analysis.timespan import timespan_histogram, timespan_summary

__all__ = [
    "pair_sequence_matrix",
    "position_histogram",
    "proportion_changes",
    "proportion_variance",
    "proportions",
    "rank_changes",
    "rank_motifs",
    "skewness",
    "timespan_histogram",
    "timespan_summary",
]
