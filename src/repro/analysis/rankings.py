"""Motif rankings and ranking changes (Tables 3 and 6).

Table 3/6 compare where each motif *ranks* (by count, densest first)
before and after the consecutive-events restriction.  Positive change =
the motif ascends when the restriction is applied, the paper's sign
convention ("positive values denote ascensions").
"""

from __future__ import annotations

from typing import Mapping, Sequence


def rank_motifs(
    counts: Mapping[str, int], *, universe: Sequence[str] | None = None
) -> dict[str, int]:
    """Rank motif codes by count, 1 = most frequent.

    Ties break deterministically by code so that reruns are stable (the
    paper does not specify a tie rule; any fixed one preserves the
    qualitative rank-change signs).  Codes in ``universe`` but absent from
    ``counts`` are ranked after all observed codes, again by code order.
    """
    codes = set(counts)
    if universe is not None:
        codes.update(universe)
    ordered = sorted(codes, key=lambda c: (-counts.get(c, 0), c))
    return {code: pos + 1 for pos, code in enumerate(ordered)}


def rank_changes(
    before: Mapping[str, int],
    after: Mapping[str, int],
    *,
    universe: Sequence[str] | None = None,
) -> dict[str, int]:
    """Per-code rank change when moving from ``before`` to ``after`` counts.

    Positive = the code ascends (gets a better/lower rank number) in
    ``after`` — e.g. +18 for 010210 in CollegeMsg means the motif jumped
    18 places up once the consecutive restriction was applied.
    """
    ranks_before = rank_motifs(before, universe=universe)
    ranks_after = rank_motifs(after, universe=universe)
    codes = set(ranks_before) | set(ranks_after)
    return {
        code: ranks_before.get(code, len(codes)) - ranks_after.get(code, len(codes))
        for code in codes
    }


def top_k(counts: Mapping[str, int], k: int) -> list[tuple[str, int]]:
    """The ``k`` most frequent codes with their counts, ties by code."""
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


def reduction_rate(before: Mapping[str, int], after: Mapping[str, int]) -> float:
    """Fraction of total instances surviving from ``before`` to ``after``.

    Table 3's headline: the consecutive restriction removes over 95 % of
    motifs in most datasets, i.e. the survival rate is below 0.05.
    """
    total_before = sum(before.values())
    if total_before == 0:
        return 0.0
    return sum(after.values()) / total_before
