"""Proportion vectors, changes, and variance (Tables 4 and 7, Figure 3).

Table 4 measures, per motif code, the change in its *share* of all
instances when going from vanilla temporal motifs to constrained dynamic
graphlets, and summarizes a dataset by the variance of those changes
(expressed in percentage points).  Figure 3 compares event-pair shares
between timing configurations.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.core._optional import import_numpy

np = import_numpy()


def proportions(
    counts: Mapping[Hashable, int], *, universe: Sequence[Hashable] | None = None
) -> dict[Hashable, float]:
    """Normalize counts to shares of the total.

    Codes in ``universe`` but missing from ``counts`` get share 0.  An
    all-zero counter yields all-zero shares (not NaNs) so the no-motifs
    corner cases stay comparable.
    """
    keys = list(counts)
    if universe is not None:
        keys = list(universe)
    total = sum(counts.get(k, 0) for k in keys)
    if total == 0:
        return {k: 0.0 for k in keys}
    return {k: counts.get(k, 0) / total for k in keys}


def proportion_changes(
    before: Mapping[Hashable, int],
    after: Mapping[Hashable, int],
    *,
    universe: Sequence[Hashable] | None = None,
    percentage: bool = True,
) -> dict[Hashable, float]:
    """Per-key change of share, ``after − before``.

    With ``percentage=True`` (default) values are percentage points, the
    paper's Table 4/7 unit (e.g. −18.00 % for 010201 in Email).
    """
    keys = universe
    if keys is None:
        keys = sorted(set(before) | set(after), key=str)
    p_before = proportions(before, universe=keys)
    p_after = proportions(after, universe=keys)
    factor = 100.0 if percentage else 1.0
    return {k: factor * (p_after[k] - p_before[k]) for k in keys}


def proportion_variance(changes: Mapping[Hashable, float]) -> float:
    """Population variance of the proportion changes (Table 4's summary).

    Email's variance of 18.98 against 0.04 for StackOverflow is the
    paper's headline: the CDG restriction distorts some domains far more
    than others.
    """
    if not changes:
        return 0.0
    values = np.array(list(changes.values()), dtype=float)
    return float(values.var())


def share_change_sign(
    before: Mapping[Hashable, int],
    after: Mapping[Hashable, int],
    key: Hashable,
    *,
    universe: Sequence[Hashable] | None = None,
) -> int:
    """Sign (−1, 0, +1) of one key's share change — the unit of the paper's
    qualitative claims ("the decrease in 010201 translates to increases in
    ...")."""
    delta = proportion_changes(before, after, universe=universe)[key]
    if delta > 0:
        return 1
    if delta < 0:
        return -1
    return 0
