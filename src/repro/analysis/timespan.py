"""Motif timespan distributions (Figures 5 and 10).

The timespan of an instance is ``t_last − t_first``.  Only-ΔC bounds it
only loosely (by ``(m−1)·ΔC``) and empirically produces a bell around ΔC;
only-ΔW hard-caps it at ΔW and flattens the distribution.  This module
bins timespan samples and summarizes their shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core._optional import import_numpy

np = import_numpy()


def timespan_histogram(
    spans: Iterable[float], *, n_bins: int = 20, upper: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of timespans over ``n_bins`` equal bins of ``[0, upper]``.

    ``upper`` defaults to the sample maximum.  Returns ``(bin_edges,
    counts)`` with ``len(bin_edges) == n_bins + 1``.
    """
    values = np.asarray(list(spans), dtype=float)
    if values.size == 0:
        edges = np.linspace(0.0, upper if upper else 1.0, n_bins + 1)
        return edges, np.zeros(n_bins, dtype=int)
    top = upper if upper is not None else float(values.max())
    if top <= 0:
        top = 1.0
    edges = np.linspace(0.0, top, n_bins + 1)
    counts, _ = np.histogram(np.clip(values, 0, top), bins=edges)
    return edges, counts


@dataclass(frozen=True)
class TimespanSummary:
    """Shape summary of a timespan distribution."""

    count: int
    mean: float
    std: float
    median: float
    maximum: float
    #: coefficient of variation — low = regular/peaked, high = spread out
    cv: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.0f}s median={self.median:.0f}s "
            f"max={self.maximum:.0f}s cv={self.cv:.2f}"
        )


def timespan_summary(spans: Sequence[float]) -> TimespanSummary:
    """Summarize a timespan sample; zeros when empty."""
    values = np.asarray(spans, dtype=float)
    if values.size == 0:
        return TimespanSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean = float(values.mean())
    std = float(values.std())
    return TimespanSummary(
        count=int(values.size),
        mean=mean,
        std=std,
        median=float(np.median(values)),
        maximum=float(values.max()),
        cv=std / mean if mean > 0 else 0.0,
    )


def uniformity(spans: Sequence[float], *, upper: float, n_bins: int = 10) -> float:
    """How close the distribution is to uniform over ``[0, upper]``.

    Returns ``1 − TV(p, uniform)`` where TV is total-variation distance of
    the binned distribution; 1.0 = perfectly uniform.  Figure 5's claim —
    "distributions are more regularized when going from only-ΔC to
    only-ΔW" — is a statement that this score rises.
    """
    _, counts = timespan_histogram(spans, n_bins=n_bins, upper=upper)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    uniform = 1.0 / n_bins
    tv = 0.5 * float(np.abs(p - uniform).sum())
    return 1.0 - tv
