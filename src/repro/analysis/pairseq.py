"""Ordered event-pair sequence matrices (Figures 6 and 11).

A three-event motif is a sequence of two event pairs; Figure 6 arranges
all 36 of them in a 6×6 heat map — rows are the first pair's type, columns
the second's — colour-coding log-scale counts.  This module builds those
matrices and the asymmetry diagnostics the paper reads off them
(conveys are followed by out-bursts but rarely by in-bursts, etc.).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.eventpairs import ALL_PAIR_TYPES, PairType


def pair_sequence_matrix(
    sequence_counts: Mapping[tuple, int]
) -> np.ndarray:
    """6×6 matrix of counts: rows = first pair type, cols = second.

    ``sequence_counts`` maps pair-type tuples (as produced by the census)
    to instance counts; only length-2 tuples with both entries classified
    (no disjoint ``None``) contribute.  Row/column order follows
    :data:`~repro.core.eventpairs.ALL_PAIR_TYPES` (R, P, I, O, C, W).
    """
    index = {ptype: i for i, ptype in enumerate(ALL_PAIR_TYPES)}
    matrix = np.zeros((6, 6), dtype=float)
    for seq, count in sequence_counts.items():
        if len(seq) != 2:
            continue
        first, second = seq
        if first is None or second is None:
            continue
        matrix[index[first], index[second]] += count
    return matrix


def log_scaled(matrix: np.ndarray) -> np.ndarray:
    """Figure 6's colour scale: log counts normalized to [0, 1] per dataset.

    Zero cells map to 0; the per-matrix max maps to 1.
    """
    out = np.zeros_like(matrix, dtype=float)
    positive = matrix > 0
    if not positive.any():
        return out
    logs = np.log10(matrix[positive])
    lo = float(logs.min())
    hi = float(logs.max())
    if hi == lo:
        out[positive] = 1.0
    else:
        out[positive] = (logs - lo) / (hi - lo)
    return out


def asymmetry(matrix: np.ndarray, first: PairType, second: PairType) -> float:
    """Directional preference between two pair types.

    Returns ``count(first→second) − count(second→first)`` normalized by
    their sum (0 when both are zero).  Positive = the ``first→second``
    order dominates; e.g. the paper finds in-burst→convey positive and
    convey→in-burst negative in message networks.
    """
    index = {ptype: i for i, ptype in enumerate(ALL_PAIR_TYPES)}
    forward = float(matrix[index[first], index[second]])
    backward = float(matrix[index[second], index[first]])
    total = forward + backward
    if total == 0:
        return 0.0
    return (forward - backward) / total


def row_totals(matrix: np.ndarray) -> dict[PairType, float]:
    """Total instances whose first pair is each type."""
    return {ptype: float(matrix[i].sum()) for i, ptype in enumerate(ALL_PAIR_TYPES)}


def col_totals(matrix: np.ndarray) -> dict[PairType, float]:
    """Total instances whose second pair is each type."""
    return {ptype: float(matrix[:, i].sum()) for i, ptype in enumerate(ALL_PAIR_TYPES)}


def dominant_sequences(
    sequence_counts: Mapping[tuple, int], k: int = 5
) -> list[tuple[tuple, int]]:
    """The ``k`` most frequent pair sequences (any length)."""
    items = [
        (seq, count)
        for seq, count in sequence_counts.items()
        if all(p is not None for p in seq)
    ]
    items.sort(key=lambda kv: (-kv[1], tuple(str(p) for p in kv[0])))
    return items[:k]


def sequence_label(seq: Sequence[PairType | None]) -> str:
    """Compact label like ``"R→O"`` for report rows."""
    return "→".join("·" if p is None else p.value for p in seq)
