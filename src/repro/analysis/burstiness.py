"""Burstiness and memory of inter-event times.

The paper's "Comparison criteria" paragraph reports that no shuffled null
model mimics both the structural and the temporal features of real
networks.  The two canonical temporal features in that discussion are

* **burstiness** (Goh & Barabási): ``B = (σ − μ) / (σ + μ)`` of the
  inter-event time distribution — 0 for a Poisson process, → 1 for
  extremely bursty trains, −1 for perfectly regular ones;
* **memory** (Goh & Barabási): the Pearson correlation between
  consecutive inter-event times — positive when long gaps follow long
  gaps.

These quantify *why* timestamp permutations destroy motif counts (they
kill burstiness) while per-edge gap shuffles barely move them (they keep
burstiness, kill memory).
"""

from __future__ import annotations

from typing import Sequence

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.events import interevent_times
from repro.core.temporal_graph import TemporalGraph


def burstiness(gaps: Sequence[float]) -> float:
    """Goh–Barabási burstiness of a gap sequence; 0.0 for < 2 gaps."""
    values = np.asarray(gaps, dtype=float)
    if values.size < 2:
        return 0.0
    mean = float(values.mean())
    std = float(values.std())
    if mean + std == 0:
        return 0.0
    return (std - mean) / (std + mean)


def memory_coefficient(gaps: Sequence[float]) -> float:
    """Pearson correlation of consecutive gaps; 0.0 when undefined."""
    values = np.asarray(gaps, dtype=float)
    if values.size < 3:
        return 0.0
    a = values[:-1]
    b = values[1:]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def graph_burstiness(graph: TemporalGraph) -> float:
    """Burstiness of the global event train."""
    return burstiness(interevent_times(list(graph.events)))


def graph_memory(graph: TemporalGraph) -> float:
    """Memory coefficient of the global event train."""
    return memory_coefficient(interevent_times(list(graph.events)))


def edge_burstiness(graph: TemporalGraph, *, min_events: int = 3) -> dict[tuple[int, int], float]:
    """Per-edge burstiness, for edges with at least ``min_events`` events.

    Per-edge trains are the unit the link-shuffling null models preserve;
    comparing this map before/after a shuffle verifies the conservation.
    """
    out: dict[tuple[int, int], float] = {}
    for edge, idxs in graph.edge_events.items():
        if len(idxs) < min_events:
            continue
        times = [graph.times[i] for i in idxs]
        out[edge] = burstiness([b - a for a, b in zip(times, times[1:])])
    return out


def node_burstiness(graph: TemporalGraph, *, min_events: int = 3) -> dict[int, float]:
    """Per-node burstiness of each node's adjacent-event train."""
    out: dict[int, float] = {}
    for node, idxs in graph.node_events.items():
        if len(idxs) < min_events:
            continue
        times = [graph.times[i] for i in idxs]
        out[node] = burstiness([b - a for a, b in zip(times, times[1:])])
    return out


def burstiness_summary(graph: TemporalGraph) -> dict[str, float]:
    """Global burstiness/memory plus per-node medians — one-call report."""
    per_node = list(node_burstiness(graph).values())
    return {
        "global_burstiness": graph_burstiness(graph),
        "global_memory": graph_memory(graph),
        "median_node_burstiness": float(np.median(per_node)) if per_node else 0.0,
        "nodes_measured": float(len(per_node)),
    }
