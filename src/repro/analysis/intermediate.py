"""Intermediate-event position analysis (Figures 4 and 9).

ΔW bounds a motif's first and last events but says nothing about when the
*intermediate* events fall; Figure 4 shows their relative positions —
``(t_i − t_1)/(t_m − t_1)`` in [0, 1] — are heavily skewed toward one end
in only-ΔW configurations and regularize as ΔC tightens.

The census collects ``(event_position, relative_time)`` samples per motif
code; this module bins them and quantifies the skew.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core._optional import import_numpy

np = import_numpy()


def position_histogram(
    samples: Iterable[tuple[int, float]],
    *,
    n_bins: int = 10,
    event_position: int | None = None,
) -> np.ndarray:
    """Histogram of relative positions over ``n_bins`` equal bins of [0, 1].

    Parameters
    ----------
    samples:
        ``(event_position, relative_time)`` pairs as collected by
        :func:`repro.algorithms.counting.run_census` — position 1 is the
        second event of the motif, position 2 the third, etc.
    event_position:
        Keep only samples of one intermediate position (Figure 4 plots the
        second and third events separately); ``None`` pools all.

    Returns
    -------
    Integer counts per bin; relative time 1.0 lands in the last bin.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = [
        rel
        for pos, rel in samples
        if event_position is None or pos == event_position
    ]
    hist = np.zeros(n_bins, dtype=int)
    for rel in values:
        idx = min(int(rel * n_bins), n_bins - 1)
        hist[idx] += 1
    return hist


def skewness(samples: Iterable[tuple[int, float]], *, event_position: int | None = None) -> float:
    """Mean relative position minus 0.5 — the skew statistic of Figure 4.

    Negative = intermediate events pile up near the first event (the
    repetition-burst pattern of motif 010102); positive = near the last
    (the ping-pong tail of 011221); ≈0 = regularized.  Returns 0.0 with no
    samples.
    """
    values = [
        rel
        for pos, rel in samples
        if event_position is None or pos == event_position
    ]
    if not values:
        return 0.0
    return float(np.mean(values) - 0.5)


def absolute_skew(
    samples: Iterable[tuple[int, float]], *, event_position: int | None = None
) -> float:
    """Magnitude of the skew, for "does ΔC reduce the bias" comparisons."""
    return abs(skewness(samples, event_position=event_position))


def edge_mass(
    samples: Sequence[tuple[int, float]],
    *,
    n_bins: int = 10,
    event_position: int | None = None,
) -> float:
    """Fraction of samples in the two outermost bins.

    A complementary skew measure: in only-ΔW configurations the
    intermediate events concentrate near 0 % or 100 % of the motif span.
    Returns 0.0 with no samples.
    """
    hist = position_histogram(
        samples, n_bins=n_bins, event_position=event_position
    )
    total = int(hist.sum())
    if total == 0:
        return 0.0
    return float((hist[0] + hist[-1]) / total)
