"""repro.obs — the observability substrate: metrics, tracing, profiling.

Every layer of the stack (storage, engine, parallel, online, streaming)
records into one process-local :class:`MetricsRegistry` **when
observability is enabled** — and costs (near) nothing when it is not,
which is the default.  The design mirrors the execution engine's
plan/kernel split: one contract, pluggable recorders, zero work on the
disabled path.

The enabled/disabled switch is the module-level :data:`ACTIVE`
reference:

* ``ACTIVE is None`` (default) — the *null recorder*: nothing is
  recorded anywhere.  Instrumented hot paths capture the reference
  **once per plan compile / kernel bind / engine construction**, so the
  per-call cost of disabled instrumentation is a single ``is None``
  check (and for the hottest inner loops, not even that — the capture
  site hoists the check out of the loop).
* ``ACTIVE is a registry`` — every seam records: counters, gauges and
  fixed-log-bucket histograms that merge associatively across processes
  (the parallel engine ships worker snapshots back with shard results
  and folds them into the parent registry, exactly like
  ``merge_counts`` folds shard counters).

Because hot paths bind the recorder at construction time, **enable
observability before building the engines you want to watch**::

    import repro.obs as obs

    reg = obs.enable()
    census = run_census(graph, 3, constraints, jobs=4)
    print(obs.render_table(reg.snapshot()))
    obs.disable()

Operationally: ``python -m repro.experiments <id> --stats`` enables the
registry for the run and prints the per-layer table (``--stats-json``
also writes the raw snapshot); benchmarks embed their snapshot next to
the timings in their BENCH JSON records; the ``REPRO_OBS`` environment
variable (any value but the falsy spellings ``""``/``0``/``false``/
``no``/``off``, case-insensitive) enables observability at import time
for processes without CLI flags.

Spans
-----

:func:`span` is the tracing primitive — a wall-clock timer whose
histogram doubles as the call counter::

    with obs.span("engine.expand_block"):
        ...

When disabled it returns a shared no-op context manager (no allocation,
no clock read).
"""

from __future__ import annotations

import os

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    labeled,
    merge_snapshots,
    summarize_histogram,
)
from repro.obs.render import render_histogram_line, render_table

__all__ = [
    "ACTIVE",
    "Histogram",
    "MetricsRegistry",
    "active",
    "disable",
    "enable",
    "enabled",
    "env_enabled",
    "labeled",
    "merge_snapshots",
    "render_histogram_line",
    "render_table",
    "span",
    "summarize_histogram",
]

#: The active registry, or ``None`` when observability is disabled (the
#: null-recorder default).  Hot paths read this through the module
#: (``obs.ACTIVE``) or capture it at construction time — never via
#: ``from repro.obs import ACTIVE``, which would freeze the value.
ACTIVE: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the active registry; a fresh one by default.

    Idempotent when already enabled and no explicit registry is given —
    the existing registry keeps accumulating.
    """
    global ACTIVE
    if registry is not None:
        ACTIVE = registry
    elif ACTIVE is None:
        ACTIVE = MetricsRegistry()
    return ACTIVE


def disable() -> None:
    """Return to the null recorder (subsequent calls record nothing)."""
    global ACTIVE
    ACTIVE = None


def active() -> MetricsRegistry | None:
    """The current registry, or ``None`` when observability is off."""
    return ACTIVE


def enabled() -> bool:
    return ACTIVE is not None


class _NullSpan:
    """Shared no-op context manager: the disabled-path span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str):
    """Time a block into histogram ``name`` on the active registry.

    A no-op (one shared object, no clock read) while disabled.  For
    per-call hot paths prefer capturing the registry once and calling
    :meth:`MetricsRegistry.span` — or timing inline — so the disabled
    path does not even resolve the name.
    """
    reg = ACTIVE
    if reg is None:
        return _NULL_SPAN
    return reg.span(name)


#: Environment values read as "disabled" (case-insensitive): the common
#: falsy spellings, so ``REPRO_OBS=false`` does not silently enable the
#: recorder the way any-non-empty-is-truthy parsing once did.
FALSY_ENV = ("", "0", "false", "no", "off")


def env_enabled(value: str | None) -> bool:
    """Whether a ``REPRO_OBS`` environment value opts observability in."""
    return (value or "").strip().lower() not in FALSY_ENV


# Opt-in via environment for processes that never see a CLI flag (e.g.
# a worker started by an external scheduler).
if env_enabled(os.environ.get("REPRO_OBS")):  # pragma: no cover
    enable()
