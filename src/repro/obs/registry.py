"""The process-local metrics registry: counters, gauges, histograms, spans.

One :class:`MetricsRegistry` holds every measurement a process records
while observability is enabled.  Three metric kinds, chosen so that
snapshots from different processes (the parallel engine's shard workers)
fold together without coordination:

* **counters** — monotone event tallies; snapshots merge by *sum*;
* **gauges** — last-known level readings (queue depths, store sizes);
  snapshots merge by *max*, the peak across processes;
* **histograms** — value distributions over **fixed log-spaced buckets**
  (powers of two, the ``frexp`` exponent), so two histograms of the same
  metric always share bucket boundaries and merge by *bucket-wise sum* —
  associative and commutative, exactly like the counter reductions of
  :func:`repro.parallel.merge.merge_counts`.

Metrics are identified by dotted names whose first segment is the layer
(``storage.``, ``engine.``, ``parallel.``, ``online.``, ``streaming.``
...); optional labels render into the name as ``name{k=v,...}`` via
:func:`labeled`, so label handling never costs a dict per observation.

Everything here is stdlib-only and import-light: the registry is the
bottom of the dependency stack (storage, engine, parallel and online all
record into it) and must never import them back.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "labeled",
    "merge_snapshots",
    "summarize_histogram",
]

#: Bucket index for non-positive observations (durations and sizes are
#: non-negative; zero gets its own bucket below every positive one).
_ZERO_BUCKET = -1075  # below the subnormal float range


def _bucket(value: float) -> int:
    """The fixed log2 bucket of one observation.

    A positive ``v`` lands in bucket ``e`` iff ``2**(e-1) <= v < 2**e``
    (the ``frexp`` exponent), so bucket ``e``'s upper edge is ``2**e``.
    The boundaries are a property of the encoding, not of any histogram
    instance — which is what makes merges associative.
    """
    if value > 0.0:
        return math.frexp(value)[1]
    return _ZERO_BUCKET


def labeled(name: str, **labels) -> str:
    """Render a metric name with labels: ``labeled("a.b", k="x") == "a.b{k=x}"``.

    Call sites on hot paths should build the labeled name once (at bind
    or setup time), not per observation.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """A value distribution over the fixed log2 buckets.

    Tracks the exact ``count``/``total``/``min``/``max`` alongside the
    bucketed counts, so means are exact and only quantiles are read off
    the bucket edges (within a factor of 2, plenty for latency triage).
    """

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def quantile(self, q: float) -> float:
        """The upper bucket edge at cumulative share ``q`` (0 <= q <= 1).

        Clamped to the exact observed ``min``/``max``, so ``quantile(0)``
        and ``quantile(1)`` are exact and interior quantiles are off by
        at most one octave.
        """
        if self.count == 0:
            return math.nan
        target = q * self.count
        if target <= 0:
            return self.vmin
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                edge = 0.0 if b == _ZERO_BUCKET else 2.0**b
                return min(max(edge, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - q > 1 defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Histogram":
        hist = cls()
        hist.count = int(snap["count"])
        hist.total = float(snap["total"])
        hist.vmin = math.inf if snap.get("min") is None else float(snap["min"])
        hist.vmax = -math.inf if snap.get("max") is None else float(snap["max"])
        hist.buckets = {int(b): int(n) for b, n in snap["buckets"].items()}
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bucket-wise sum; exact min/max/total)."""
        self.count += other.count
        self.total += other.total
        if other.vmin < self.vmin:
            self.vmin = other.vmin
        if other.vmax > self.vmax:
            self.vmax = other.vmax
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n


class MetricsRegistry:
    """All metrics of one process (or one shard worker), by name.

    The registry is deliberately permissive — any name may be
    incremented, set or observed at any time; metrics exist from their
    first touch.  CPython dict operations make single increments atomic
    enough for the library's process-per-worker model (no threads share
    a registry today; a future async service layer would wrap one
    registry per event loop).
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first touch)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current level of ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str) -> "_Span":
        """Context manager timing a block into histogram ``name`` (seconds).

        The histogram's ``count`` doubles as the call counter::

            with registry.span("online.prune.seconds"):
                ...
        """
        return _Span(self, name)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-data (JSON-ready, picklable) copy of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_snapshot() for name, hist in self.histograms.items()
            },
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters sum, gauges keep the max (the peak level across
        processes), histograms merge bucket-wise — the same reduction
        :func:`merge_snapshots` applies, so merging worker snapshots
        into the parent registry or merging the snapshots standalone
        produces identical numbers.
        """
        for name, n in snap.get("counters", {}).items():
            self.inc(name, n)
        for name, value in snap.get("gauges", {}).items():
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = float(value)
        for name, hist_snap in snap.get("histograms", {}).items():
            incoming = Histogram.from_snapshot(hist_snap)
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = incoming
            else:
                hist.merge(incoming)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MetricsRegistry {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms>"
        )


class _Span:
    """Wall-clock timer recording into a histogram on exit."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._started)


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Reduce snapshots into one (sum counters, max gauges, merge buckets).

    The reduction is associative and commutative — ``jobs=4`` worker
    snapshots merge into the same totals in any grouping or order, the
    property :mod:`tests.test_obs` pins — so it composes with the
    parallel engine's shard merges without ordering requirements.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()


def summarize_histogram(snap: Mapping) -> dict:
    """Human-oriented summary (count/mean/p50/p99/max) of a histogram snapshot."""
    hist = Histogram.from_snapshot(snap)
    if not hist.count:
        return {"count": 0}
    return {
        "count": hist.count,
        "total": hist.total,
        "mean": hist.mean,
        "p50": hist.quantile(0.50),
        "p99": hist.quantile(0.99),
        "max": hist.vmax,
    }


def iter_layers(snapshot: Mapping) -> Iterator[str]:
    """Distinct layer prefixes (text before the first ``.``), sorted."""
    layers = set()
    for section in ("counters", "gauges", "histograms"):
        for name in snapshot.get(section, {}):
            layers.add(name.split(".", 1)[0])
    return iter(sorted(layers))
