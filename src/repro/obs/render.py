"""Text rendering of registry snapshots: the ``--stats`` per-layer table.

Purely presentational — everything here consumes the plain-data
snapshots of :mod:`repro.obs.registry`, so the same renderer serves the
CLI's end-of-run table, the stream experiment's rolling sections and the
live dashboard.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.obs.registry import Histogram, iter_layers

__all__ = ["format_value", "render_histogram_line", "render_table"]


def format_value(value: float) -> str:
    """Compact human formatting: sub-second decimals, SI-ish large counts."""
    if value != value:  # NaN
        return "-"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 1e6:
        return f"{value:.3g}"
    if abs(value) < 0.001:
        return f"{value * 1e6:.1f}u"
    if abs(value) < 1:
        return f"{value * 1e3:.2f}m"
    return f"{value:.3f}"


def render_histogram_line(name: str, snap: Mapping) -> str:
    """One table row for a histogram snapshot (count, mean, p50/p99, max)."""
    hist = Histogram.from_snapshot(snap)
    if not hist.count:
        return f"  {name:<52} (empty)"
    return (
        f"  {name:<52}{hist.count:>10} "
        f"mean={format_value(hist.mean):>8} "
        f"p50={format_value(hist.quantile(0.5)):>8} "
        f"p99={format_value(hist.quantile(0.99)):>8} "
        f"max={format_value(hist.vmax):>8}"
    )


def render_table(snapshot: Mapping, *, title: str = "observability stats") -> str:
    """The per-layer stats table the ``--stats`` CLI flag prints.

    Metrics group under their layer prefix (``storage``, ``engine``,
    ``parallel``, ``online``, ...); counters and gauges render as plain
    values, histograms as count/mean/quantile rows.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if not (counters or gauges or histograms):
        return f"{title}: (no metrics recorded)"
    lines = [f"{title} ({len(counters)} counters, {len(gauges)} gauges, "
             f"{len(histograms)} histograms)"]
    for layer in iter_layers(snapshot):
        prefix = layer + "."
        lines.append(f"\n[{layer}]")
        for name in sorted(n for n in counters if n.startswith(prefix)):
            lines.append(f"  {name:<52}{counters[name]:>10}")
        for name in sorted(n for n in gauges if n.startswith(prefix)):
            value = gauges[name]
            shown = int(value) if math.isfinite(value) and value == int(value) else value
            lines.append(f"  {name:<52}{format_value(float(shown)):>10}")
        for name in sorted(n for n in histograms if n.startswith(prefix)):
            lines.append(render_histogram_line(name, histograms[name]))
    return "\n".join(lines)
