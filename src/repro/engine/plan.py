"""Execution plans: resolve the census configuration once, run it anywhere.

Every counting path in the library — batch census, sharded parallel
runs, the online sliding-window engine, root-sampling estimators —
reduces to the same primitive: *extend a partial instance by admissible
adjacent events under the timing constraints*.  An
:class:`ExecutionPlan` is the once-per-run resolution of everything that
primitive needs:

* the **chained-deadline schedule** — ΔC / ΔW folded into two floats so
  a kernel computes ``min(t_last + ΔC, t_root + ΔW)`` inline (the exact
  arithmetic of :meth:`TimingConstraints.next_event_deadline`, resolved
  once per run instead of once per recursive call),
* the **node cap** implied by ``max_nodes`` (or the ``n_events + 1``
  connected-growth default),
* **restriction shard-safety** (:func:`is_shard_safe`), so the parallel
  engine picks its shard strategy from the plan instead of re-deriving
  it per shard, and
* the **backend's kernel capability** — which
  :class:`~repro.engine.kernels.ExtensionKernel` the storage engine
  advertises (:attr:`~repro.storage.base.GraphStorage.extension_kernel`).

Plans are immutable, hashable-key cached (so a runner session compiling
the same ``(n_events, constraints, restriction)`` configuration for
every dataset reuses one plan), and picklable — the parallel engine
ships the compiled plan to shard workers, which :meth:`ExecutionPlan.bind`
it to their local shard storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import repro.obs as _obs
from repro.core.constraints import TimingConstraints

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.temporal_graph import TemporalGraph
    from repro.engine.kernels import ExtensionKernel
    from repro.storage.base import GraphStorage

Instance = tuple[int, ...]
Predicate = Callable[["TemporalGraph", Instance], bool]

#: Safety valve on the plan memo (configurations are few; this only
#: guards against pathological churn, e.g. a fresh lambda per call).
_CACHE_CAP = 256

_PLAN_CACHE: dict[tuple, "ExecutionPlan"] = {}


def is_shard_safe(predicate: Predicate | None) -> bool:
    """Whether time shards are admissible for this restriction predicate.

    A predicate is shard-safe when it only consults events inside the
    instance's time window (which a time shard always contains); declare
    yours with :func:`repro.parallel.mark_shard_safe`.  ``None`` — no
    restriction — is trivially safe.
    """
    return predicate is None or bool(getattr(predicate, "shard_safe", False))


@dataclass(frozen=True)
class ExecutionPlan:
    """One compiled motif-enumeration configuration (see module docstring).

    Attributes
    ----------
    n_events:
        Events per instance.
    constraints:
        The original ΔC / ΔW configuration (kept for introspection and
        for consumers that need the
        :meth:`~repro.core.constraints.TimingConstraints` predicates).
    node_cap:
        Maximum distinct nodes per instance (``max_nodes`` resolved
        against the ``n_events + 1`` connected-growth default).
    predicate:
        The restriction filter applied to complete instances, or ``None``.
    shard_safe:
        Whether ``predicate`` admits the parallel engine's time shards.
    delta:
        The loose timespan bound
        (:meth:`TimingConstraints.loose_timespan_bound`): the shard
        overlap and the online engine's prune reach.
    delta_c / delta_w:
        The bounds as plain floats (``inf`` when unset), pre-resolved so
        kernels compute deadlines with two adds and a min.
    kernel_name:
        Which extension kernel the plan's storage backend advertised at
        compile time (``"generic"`` unless the backend declares a native
        one and that kernel is importable).
    """

    n_events: int
    constraints: TimingConstraints
    node_cap: int
    predicate: Predicate | None
    shard_safe: bool
    delta: float
    delta_c: float
    delta_w: float
    kernel_name: str

    def deadline(self, t_root: float, t_last: float) -> float:
        """Latest admissible timestamp for the next event of a growing motif.

        Bit-identical to
        :meth:`TimingConstraints.next_event_deadline` — the same two
        sums and min, with the ``None`` checks already resolved.
        """
        return min(t_last + self.delta_c, t_root + self.delta_w)

    def bind(self, storage: "GraphStorage") -> "ExtensionKernel":
        """Instantiate this plan's extension kernel over one storage engine.

        The plan itself never holds a storage reference (it must pickle
        to shard workers); binding is what ties the admission arithmetic
        to a concrete event stream.
        """
        from repro.engine.kernels import kernel_for

        return kernel_for(self, storage)

    def describe(self) -> str:
        """One-line human-readable summary (used by logs and tests)."""
        return (
            f"{self.n_events}-event plan, cap {self.node_cap} nodes, "
            f"{self.constraints.describe()}, kernel={self.kernel_name}, "
            f"{'shard-safe' if self.shard_safe else 'root-sharded'}"
        )


def compile_plan(
    n_events: int,
    constraints: TimingConstraints,
    restrictions: Predicate | None = None,
    storage: "GraphStorage | None" = None,
    *,
    max_nodes: int | None = None,
    kernel: str | None = None,
) -> ExecutionPlan:
    """Compile (or fetch from the session cache) one execution plan.

    Parameters
    ----------
    n_events:
        Events per motif instance.
    constraints:
        The ΔC / ΔW timing configuration.
    restrictions:
        Optional restriction predicate applied to complete instances
        (the ``predicate`` of the counting entry points).
    storage:
        The storage engine the plan will run against — consulted only
        for its advertised kernel capability
        (:attr:`~repro.storage.base.GraphStorage.extension_kernel`);
        ``None`` compiles a generic-kernel plan.
    max_nodes:
        Optional cap on distinct nodes per instance.
    kernel:
        Explicit kernel-name override (benchmarks force ``"generic"``
        on array backends to measure the vectorization win).

    Plans are cached per ``(n_events, constraints, restrictions,
    node_cap, kernel)`` for the lifetime of the session, so an
    experiment runner sweeping many datasets under the paper's few
    configurations compiles each configuration once.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    node_cap = n_events + 1 if max_nodes is None else max_nodes
    kernel_name = kernel if kernel is not None else _advertised_kernel(storage)
    key: tuple | None = (n_events, constraints, restrictions, node_cap, kernel_name)
    try:
        cached = _PLAN_CACHE.get(key)
    except TypeError:  # unhashable predicate: compile fresh, skip the memo
        cached, key = None, None
    rec = _obs.ACTIVE
    if cached is not None:
        if rec is not None:
            rec.inc("engine.plan.cache_hit")
        return cached
    if rec is not None:
        rec.inc("engine.plan.cache_miss")
    plan = ExecutionPlan(
        n_events=n_events,
        constraints=constraints,
        node_cap=node_cap,
        predicate=restrictions,
        shard_safe=is_shard_safe(restrictions),
        delta=constraints.loose_timespan_bound(n_events) if n_events > 1 else 0.0,
        delta_c=math.inf if constraints.delta_c is None else constraints.delta_c,
        delta_w=math.inf if constraints.delta_w is None else constraints.delta_w,
        kernel_name=kernel_name,
    )
    if key is not None:
        if len(_PLAN_CACHE) >= _CACHE_CAP:
            _PLAN_CACHE.clear()
        _PLAN_CACHE[key] = plan
    return plan


#: Memo of advertised-capability -> resolved-kernel decisions.  Kernel
#: availability is stable within a session (it depends on which optional
#: imports succeeded), so each advertised name is resolved — and its
#: demotions counted — once, not once per compile_plan call.
_KERNEL_RESOLUTION_CACHE: dict[str, str] = {}


def _advertised_kernel(storage: "GraphStorage | None") -> str:
    """The kernel a backend advertises, demoted down the fallback chain."""
    if storage is None:
        return "generic"
    name = getattr(storage, "extension_kernel", "generic")
    resolved = _KERNEL_RESOLUTION_CACHE.get(name)
    if resolved is None:
        from repro.engine.kernels import resolve_kernel_name

        resolved = _KERNEL_RESOLUTION_CACHE[name] = resolve_kernel_name(name)
    return resolved


def clear_plan_cache() -> None:
    """Drop every memoized plan *and* kernel-capability resolution.

    Tests that monkeypatch :data:`~repro.engine.kernels.KERNELS`
    (registering or unregistering a kernel mid-session) call this so no
    stale plan — nor a stale capability decision — survives with a
    kernel name the current registry can no longer serve.
    """
    _PLAN_CACHE.clear()
    _KERNEL_RESOLUTION_CACHE.clear()
