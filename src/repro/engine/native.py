"""The native (JIT) kernel tier: whole-block frontier expansion.

The third rung of the kernel ladder (``native`` -> ``numpy`` ->
``generic``): the same admission arithmetic as every other
:class:`~repro.engine.kernels.ExtensionKernel` — chained deadline
``min(t_last + ΔC, t_root + ΔW)``, node cap, per-partial dedup — but
compiled by numba over the flat int64/float64 arrays of
:meth:`~repro.storage.numpy_backend.NumpyStorage.extension_arrays`,
with the frontier itself kept in preallocated arrays (a partial->nodes
table plus ``t_root``/``t_last`` columns) instead of per-
:class:`~repro.engine.kernels.Partial` Python objects.

Beyond the ``extend_frontier`` contract, the native kernel adds a
**block path**: :meth:`NativeExtensionKernel.expand_block` grows one
whole root block to completion inside a single JIT call — every level,
including the non-final ``next_frontier`` steps, advances without
constructing intermediate Python triples — and returns the completed
instances as one ``(n, n_events)`` int64 array in exactly the driver's
DFS yield order (parents in pop order, children appended in descending
event order at non-final levels — the LIFO reversal — and ascending at
the final level; see :mod:`repro.engine.driver` for the equivalence
argument).  :func:`repro.engine.driver.run_plan_blocks` streams these
arrays to batched consumers such as the vectorized census fold of
:mod:`repro.algorithms.batched`.

Registration follows the numpy backend's optional-dependency pattern:
``"native"`` lands in :data:`~repro.engine.kernels.KERNELS` only when
numba imports (:func:`available`); without numba this module still
imports cleanly — every ``@_jit`` function runs as plain Python over
NumPy arrays, which is how the differential parity suite exercises the
algorithm on numba-less builds — and plan compilation demotes the
advertised ``"native"`` down the
:data:`~repro.engine.kernels.KERNEL_FALLBACKS` chain, counted in
``engine.kernel.demote{from=...,to=...}``.

Output is bit-identical to the generic kernel across every consumer:
triples grouped by partial in input order, events ascending within a
partial, historical DFS yield order, counter key order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core._optional import import_numpy
from repro.engine.kernels import (
    KERNELS,
    NumpyExtensionKernel,
    count_kernel_demotion,
)

np = import_numpy()

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the numba-less default
    _numba = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import ExecutionPlan
    from repro.storage.base import GraphStorage


def available() -> bool:
    """Whether the native tier can register (NumPy and numba importable)."""
    return bool(np) and _numba is not None


def _jit(fn):
    """``numba.njit`` when numba is present, identity otherwise.

    The fallback keeps every kernel function importable and runnable as
    plain Python — the parity suite's lever on numba-less builds.
    """
    if _numba is None:
        return fn
    return _numba.njit(cache=True)(fn)


# ----------------------------------------------------------------------
# scalar helpers (numba-safe subset: loops, 1D/2D arrays, no fancy ops)
# ----------------------------------------------------------------------
@_jit
def _bisect_right(a, x, lo, hi):
    while lo < hi:
        mid = (lo + hi) // 2
        if x < a[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


@_jit
def _bisect_left(a, x, lo, hi):
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def _find_slot(keys, node):
    """CSR slot of ``node`` in the ascending ``keys`` array, or -1."""
    lo = 0
    hi = keys.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < node:
            lo = mid + 1
        else:
            hi = mid
    if lo < keys.shape[0] and keys[lo] == node:
        return lo
    return -1


@_jit
def _gather_candidates(nodes_row, n_nodes, t_last, deadline, t, keys, banded, m):
    """Sorted (not deduped) candidate event indices for one partial.

    The banded-CSR window probe of the numpy kernel, scalarized: the
    half-open window ``(t_last, deadline]`` maps to one global index
    range, then each node's band is sliced by binary search —
    ``banded[i] - slot*m`` is the event index, ascending within a band.
    """
    if deadline <= t_last:
        return np.empty(0, np.int64)
    nb = banded.shape[0]
    win_lo = _bisect_right(t, t_last, 0, m)
    win_hi = _bisect_right(t, deadline, 0, m)
    if win_lo >= win_hi:
        return np.empty(0, np.int64)
    total = 0
    for ni in range(n_nodes):
        slot = _find_slot(keys, nodes_row[ni])
        if slot < 0:
            continue
        base = slot * m
        a = _bisect_left(banded, base + win_lo, 0, nb)
        b = _bisect_left(banded, base + win_hi, 0, nb)
        total += b - a
    buf = np.empty(total, np.int64)
    k = 0
    for ni in range(n_nodes):
        slot = _find_slot(keys, nodes_row[ni])
        if slot < 0:
            continue
        base = slot * m
        a = _bisect_left(banded, base + win_lo, 0, nb)
        b = _bisect_left(banded, base + win_hi, 0, nb)
        for i in range(a, b):
            buf[k] = banded[i] - base
            k += 1
    buf.sort()
    return buf


@_jit
def _admit(nodes_row, n_nodes, cu, cv, node_cap):
    """One candidate's admission: ``(admitted, u_in, v_in)``.

    Exactly the scalar kernels' rule — adjacency, then the node cap
    tested only against extensions that *introduce* nodes.
    """
    u_in = False
    v_in = False
    for ni in range(n_nodes):
        node = nodes_row[ni]
        if node == cu:
            u_in = True
        if node == cv:
            v_in = True
    if not (u_in or v_in):
        return False, u_in, v_in
    extra = 2
    if u_in:
        extra -= 1
    if v_in:
        extra -= 1
    if extra > 0 and n_nodes + extra > node_cap:
        return False, u_in, v_in
    return True, u_in, v_in


@_jit
def _sweep(
    nodes_pad,
    n_nodes,
    t_root,
    t_last,
    lo,
    hi,
    node_cap,
    dc,
    dw,
    t,
    u,
    v,
    keys,
    banded,
    m,
):
    """The ``extend_frontier`` sweep over array-shaped partials.

    Returns ``(cand_part, cand, u_in, v_in)`` — admitted extensions
    grouped by partial in input order, event indices ascending and
    deduped within a partial (the kernel contract's output order).
    """
    n_p = nodes_pad.shape[0]
    cap = 64
    out_part = np.empty(cap, np.int64)
    out_cand = np.empty(cap, np.int64)
    out_uin = np.empty(cap, np.uint8)
    out_vin = np.empty(cap, np.uint8)
    n_out = 0
    for p in range(n_p):
        tl = t_last[p]
        deadline = min(tl + dc, t_root[p] + dw)
        buf = _gather_candidates(
            nodes_pad[p], n_nodes[p], tl, deadline, t, keys, banded, m
        )
        prev = np.int64(-1)
        for i in range(buf.shape[0]):
            c = buf[i]
            if c == prev:
                continue
            prev = c
            if c < lo or c >= hi:
                continue
            ok, ui, vi = _admit(nodes_pad[p], n_nodes[p], u[c], v[c], node_cap)
            if not ok:
                continue
            if n_out == cap:
                cap = cap * 2
                g_part = np.empty(cap, np.int64)
                g_cand = np.empty(cap, np.int64)
                g_uin = np.empty(cap, np.uint8)
                g_vin = np.empty(cap, np.uint8)
                g_part[:n_out] = out_part
                g_cand[:n_out] = out_cand
                g_uin[:n_out] = out_uin
                g_vin[:n_out] = out_vin
                out_part = g_part
                out_cand = g_cand
                out_uin = g_uin
                out_vin = g_vin
            out_part[n_out] = p
            out_cand[n_out] = c
            out_uin[n_out] = 1 if ui else 0
            out_vin[n_out] = 1 if vi else 0
            n_out += 1
    return out_part[:n_out], out_cand[:n_out], out_uin[:n_out], out_vin[:n_out]


@_jit
def _expand_block_impl(roots, n_events, node_cap, dc, dw, t, u, v, keys, banded, m):
    """Grow one root block to completion entirely inside the JIT.

    Level-synchronous like the driver's ``_expand_block``: at non-final
    levels each parent's admitted children are appended in *descending*
    event order (the DFS LIFO reversal), at the final level in ascending
    order — so the returned ``(n, n_events)`` rows are exactly the
    driver's yield order.  Also returns per-level frontier sizes
    ``(level_partials, level_extensions)`` for the observability
    histograms.
    """
    pad = node_cap if node_cap > 2 else 2
    if pad > n_events + 1:
        pad = n_events + 1
    n_p = roots.shape[0]
    seqs = np.empty((n_p, n_events), np.int64)
    nodes = np.empty((n_p, pad), np.int64)
    n_nodes = np.empty(n_p, np.int64)
    t_root = np.empty(n_p, np.float64)
    t_last = np.empty(n_p, np.float64)
    for i in range(n_p):
        r = roots[i]
        seqs[i, 0] = r
        nodes[i, 0] = u[r]
        nodes[i, 1] = v[r]
        n_nodes[i] = 2
        t_root[i] = t[r]
        t_last[i] = t[r]
    level_partials = np.zeros(n_events - 1, np.int64)
    level_ext = np.zeros(n_events - 1, np.int64)
    result = np.empty((0, n_events), np.int64)
    for depth in range(1, n_events):
        level_partials[depth - 1] = n_p
        final = depth == n_events - 1
        cap = n_p + 16
        out_seqs = np.empty((cap, n_events), np.int64)
        out_nodes = np.empty((cap, pad), np.int64)
        out_nn = np.empty(cap, np.int64)
        out_troot = np.empty(cap, np.float64)
        out_tlast = np.empty(cap, np.float64)
        n_out = 0
        for p in range(n_p):
            tl = t_last[p]
            deadline = min(tl + dc, t_root[p] + dw)
            buf = _gather_candidates(
                nodes[p], n_nodes[p], tl, deadline, t, keys, banded, m
            )
            nb = buf.shape[0]
            if final:
                # Ascending, dedup by skipping repeats of the previous.
                lo_i, hi_i, step = 0, nb, 1
            else:
                # Descending (the LIFO reversal), dedup by skipping any
                # entry equal to its ascending successor.
                lo_i, hi_i, step = nb - 1, -1, -1
            for i in range(lo_i, hi_i, step):
                c = buf[i]
                if step == 1:
                    if i > 0 and buf[i - 1] == c:
                        continue
                else:
                    if i < nb - 1 and buf[i + 1] == c:
                        continue
                ok, ui, vi = _admit(nodes[p], n_nodes[p], u[c], v[c], node_cap)
                if not ok:
                    continue
                if n_out == cap:
                    cap = cap * 2
                    g_seqs = np.empty((cap, n_events), np.int64)
                    g_seqs[:n_out] = out_seqs
                    out_seqs = g_seqs
                    if not final:
                        g_nodes = np.empty((cap, pad), np.int64)
                        g_nodes[:n_out] = out_nodes
                        out_nodes = g_nodes
                        g_nn = np.empty(cap, np.int64)
                        g_nn[:n_out] = out_nn
                        out_nn = g_nn
                        g_troot = np.empty(cap, np.float64)
                        g_troot[:n_out] = out_troot
                        out_troot = g_troot
                        g_tlast = np.empty(cap, np.float64)
                        g_tlast[:n_out] = out_tlast
                        out_tlast = g_tlast
                for j in range(depth):
                    out_seqs[n_out, j] = seqs[p, j]
                out_seqs[n_out, depth] = c
                if not final:
                    nn = n_nodes[p]
                    for j in range(nn):
                        out_nodes[n_out, j] = nodes[p, j]
                    # Adjacent candidates introduce at most one node, so
                    # nn never exceeds the pad; the bound check only
                    # makes out-of-bounds writes structurally impossible.
                    if not ui and nn < pad:
                        out_nodes[n_out, nn] = u[c]
                        nn += 1
                    if not vi and nn < pad:
                        out_nodes[n_out, nn] = v[c]
                        nn += 1
                    out_nn[n_out] = nn
                    out_troot[n_out] = t_root[p]
                    out_tlast[n_out] = t[c]
                n_out += 1
        level_ext[depth - 1] = n_out
        if final:
            result = out_seqs[:n_out]
        else:
            if n_out == 0:
                break
            seqs = out_seqs
            nodes = out_nodes
            n_nodes = out_nn
            t_root = out_troot
            t_last = out_tlast
            n_p = n_out
    return result, level_partials, level_ext


class NativeExtensionKernel(NumpyExtensionKernel):
    """JIT kernel over the banded CSR, with the whole-block fast path.

    Inherits the numpy kernel's triple materialization and fused
    ``next_frontier`` (both consume :meth:`_vector_candidates`, which
    this class reroutes through the JIT sweep) and the base class's
    event-major single-arrival path, so the online push shape is shared
    untouched.  While tail appends are pending the storage cannot serve
    the banded arrays and every entry point falls back to the generic
    path, counted as a runtime demotion.
    """

    kernel_name = "native"

    def __init__(self, plan: "ExecutionPlan", storage: "GraphStorage") -> None:
        super().__init__(plan, storage)
        self._block_arrays: dict | None = None

    # ------------------------------------------------------------------
    # extend_frontier contract (arbitrary partial records)
    # ------------------------------------------------------------------
    def _vector_candidates(self, partials: Sequence, lo: int, hi: int):
        arrays = getattr(self._storage, "extension_arrays", lambda: None)()
        if arrays is None:
            count_kernel_demotion("native", "generic")
            return None
        n_p = len(partials)
        if n_p == 0:
            return ()
        keys = arrays["keys"]
        if not len(keys):
            return ()
        pad = max(len(p.nodes) for p in partials)
        nodes_pad = np.zeros((n_p, pad), dtype=np.int64)
        n_nodes = np.empty(n_p, dtype=np.int64)
        t_root = np.empty(n_p, dtype=np.float64)
        t_last = np.empty(n_p, dtype=np.float64)
        for i, p in enumerate(partials):
            row = p.nodes
            k = len(row)
            nodes_pad[i, :k] = row
            n_nodes[i] = k
            t_root[i] = p.t_root
            t_last[i] = p.t_last
        plan = self._plan
        cand_part, cand, u_in, v_in = _sweep(
            nodes_pad,
            n_nodes,
            t_root,
            t_last,
            lo,
            hi,
            plan.node_cap,
            plan.delta_c,
            plan.delta_w,
            arrays["t"],
            arrays["u"],
            arrays["v"],
            keys,
            arrays["banded"],
            arrays["m"],
        )
        if not len(cand):
            return ()
        return cand, cand_part, arrays["u"][cand], arrays["v"][cand], u_in, v_in

    # ------------------------------------------------------------------
    # block path (the driver's array-native fast lane)
    # ------------------------------------------------------------------
    def block_ready(self) -> bool:
        """Whether :meth:`expand_block` can serve this storage right now.

        Caches the validated extension arrays on the kernel for the
        run's block calls; ``False`` (tail appends pending) routes the
        driver to the Partial-object path, whose per-call fallback is
        the generic kernel.
        """
        self._block_arrays = getattr(self._storage, "extension_arrays", lambda: None)()
        return self._block_arrays is not None

    def expand_block(self, roots):
        """One root block to completion: ``(rows, level_partials, level_ext)``.

        ``rows`` is the ``(n, n_events)`` int64 array of completed
        instances in the driver's DFS yield order; the level arrays feed
        the frontier histograms.  Requires a prior ``block_ready()``.
        """
        arrays = self._block_arrays
        if not isinstance(roots, np.ndarray):
            roots = np.fromiter(roots, np.int64, len(roots))
        plan = self._plan
        return _expand_block_impl(
            roots,
            plan.n_events,
            plan.node_cap,
            plan.delta_c,
            plan.delta_w,
            arrays["t"],
            arrays["u"],
            arrays["v"],
            arrays["keys"],
            arrays["banded"],
            arrays["m"],
        )


def warm_up() -> None:
    """Force JIT compilation on a two-event toy problem.

    Benchmarks call this so compile time lands in their ``warmup``
    field instead of the first timed round; a no-op without numba.
    """
    t = np.array([1.0, 2.0])
    u = np.array([0, 1], dtype=np.int64)
    v = np.array([1, 2], dtype=np.int64)
    keys = np.array([0, 1, 2], dtype=np.int64)
    # banded = idx + slot*m over per-node event memberships, m = 2.
    banded = np.array([0, 2, 3, 5], dtype=np.int64)
    roots = np.array([0], dtype=np.int64)
    _expand_block_impl(roots, 2, 3, np.inf, np.inf, t, u, v, keys, banded, 2)
    nodes_pad = np.array([[0, 1]], dtype=np.int64)
    one = np.ones(1, dtype=np.int64)
    _sweep(
        nodes_pad,
        one * 2,
        t[:1],
        t[:1],
        0,
        2,
        3,
        np.inf,
        np.inf,
        t,
        u,
        v,
        keys,
        banded,
        2,
    )


if available():
    KERNELS["native"] = NativeExtensionKernel
