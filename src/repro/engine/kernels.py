"""Extension kernels: the one implementation of frontier admission.

A kernel answers the engine's only primitive question: *which events can
extend which partial instances?*  The contract is
:meth:`ExtensionKernel.extend_frontier`::

    extend_frontier(partials, lo, hi, need_nodes=True)
        -> [(partial_position, event_index, new_node_tuple | None), ...]

``partials`` is any sequence of records exposing ``nodes`` (tuple of the
partial's distinct nodes in first-appearance order), ``t_root`` and
``t_last`` — the engine's :class:`Partial`, or the online engine's
prefix records.  ``[lo, hi)`` bounds the candidate *event indices* (the
full storage for a batch run; the single arriving event for the online
engine).  A triple is emitted exactly when the event

* is adjacent to the partial (shares a node),
* is strictly later than the partial's last event and at or before the
  chained deadline ``min(t_last + ΔC, t_root + ΔW)`` (the arithmetic of
  :meth:`TimingConstraints.next_event_deadline`, resolved by the plan),
* keeps the distinct-node count within the plan's ``node_cap``.

Output order is part of the contract: triples are grouped by partial in
input order, event indices ascending within a partial, each admissible
``(partial, event)`` pair exactly once.  The driver relies on this to
reproduce the serial DFS yield order bit-for-bit.

Two kernels implement the contract:

* :class:`GenericExtensionKernel` — one
  :meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
  bisection per partial; correct on every backend.
* :class:`NumpyExtensionKernel` — extends whole *batches* of partials
  with a constant number of vectorized ``searchsorted`` probes over the
  banded CSR machinery of
  :class:`~repro.storage.numpy_backend.NumpyStorage`
  (:meth:`~repro.storage.numpy_backend.NumpyStorage.extension_arrays`),
  falling back to the generic path while tail appends are pending.

Backends advertise their native kernel via the
:attr:`~repro.storage.base.GraphStorage.extension_kernel` class
attribute; :func:`kernel_for` resolves it, demoting to generic when the
advertised kernel is unavailable.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Sequence

import repro.obs as _obs
from repro.core._optional import import_numpy

np = import_numpy()

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import ExecutionPlan
    from repro.storage.base import GraphStorage

#: ``(partial position, event index, updated node tuple or None)``.
Extension = tuple[int, int, "tuple[int, ...] | None"]


class Partial:
    """One partial instance of the enumeration frontier.

    Self-contained — event-index sequence, distinct nodes in
    first-appearance order, root and last timestamps — so kernels never
    resolve anything against the graph while testing admission.
    """

    __slots__ = ("seq", "nodes", "t_root", "t_last")

    def __init__(
        self,
        seq: tuple[int, ...],
        nodes: tuple[int, ...],
        t_root: float,
        t_last: float,
    ) -> None:
        self.seq = seq
        self.nodes = nodes
        self.t_root = t_root
        self.t_last = t_last

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Partial {self.seq} nodes={self.nodes}>"


class ExtensionKernel:
    """Base kernel: the scalar admission arithmetic, both traversals.

    Subclasses may override :meth:`_extend_partialwise` with a
    vectorized equivalent; the event-major path (single arriving event,
    the online engine's per-push shape) is shared by every kernel so the
    admission comparisons exist exactly once per traversal direction.
    """

    kernel_name = "generic"

    def __init__(self, plan: "ExecutionPlan", storage: "GraphStorage") -> None:
        self._plan = plan
        self._storage = storage

    @property
    def plan(self) -> "ExecutionPlan":
        return self._plan

    @property
    def storage(self) -> "GraphStorage":
        return self._storage

    def extend_frontier(
        self,
        partials: Sequence,
        lo: int,
        hi: int,
        *,
        need_nodes: bool = True,
    ) -> list[Extension]:
        """All admissible ``(partial, event)`` extensions (see module doc).

        ``need_nodes=False`` skips building the updated node tuples (the
        driver's final level — completed instances never extend again).
        """
        if hi - lo == 1:
            return self._extend_by_event(partials, lo, need_nodes)
        return self._extend_partialwise(partials, lo, hi, need_nodes)

    def next_frontier(
        self,
        partials: Sequence[Partial],
        lo: int,
        hi: int,
        times: Sequence[float],
    ) -> list[Partial]:
        """The driver's non-final level: extended partials in DFS pop order.

        Semantically ``extend_frontier`` folded into new :class:`Partial`
        records — parents keep their order, each parent's children flip
        to descending event order (the LIFO reversal of the historical
        DFS; see :mod:`repro.engine.driver`).  Kernels may override this
        to fuse admission and construction into one pass; the result
        must stay element-for-element identical to this reference.
        """
        nxt: list[Partial] = []
        group: list[Partial] = []
        current = -1
        for pos, idx, new_nodes in self.extend_frontier(partials, lo, hi):
            if pos != current:
                if group:
                    group.reverse()
                    nxt.extend(group)
                    group = []
                current = pos
            parent = partials[pos]
            group.append(
                Partial(parent.seq + (idx,), new_nodes, parent.t_root, times[idx])
            )
        if group:
            group.reverse()
            nxt.extend(group)
        return nxt

    # ------------------------------------------------------------------
    # event-major: one arriving event against many partials (online push)
    # ------------------------------------------------------------------
    def _extend_by_event(
        self, partials: Sequence, idx: int, need_nodes: bool
    ) -> list[Extension]:
        ev = self._storage.event_at(idx)
        u, v, t = ev.u, ev.v, ev.t
        plan = self._plan
        dc = plan.delta_c
        dw = plan.delta_w
        node_cap = plan.node_cap
        out: list[Extension] = []
        for pos, p in enumerate(partials):
            if t <= p.t_last:
                continue
            if t > p.t_last + dc or t > p.t_root + dw:
                continue
            nodes = p.nodes
            u_in = u in nodes
            v_in = v in nodes
            if not (u_in or v_in):
                continue
            extra = (not u_in) + (not v_in)
            if extra and len(nodes) + extra > node_cap:
                continue
            if not need_nodes:
                new_nodes = None
            elif not extra:
                new_nodes = nodes
            elif u_in:
                new_nodes = nodes + (v,)
            elif v_in:
                new_nodes = nodes + (u,)
            else:
                new_nodes = nodes + (u, v)
            out.append((pos, idx, new_nodes))
        return out

    # ------------------------------------------------------------------
    # partial-major: each partial asks the storage for its candidates
    # ------------------------------------------------------------------
    def _extend_partialwise(
        self, partials: Sequence, lo: int, hi: int, need_nodes: bool
    ) -> list[Extension]:
        storage = self._storage
        events = storage.events
        adjacent = storage.adjacent_events_between
        plan = self._plan
        dc = plan.delta_c
        dw = plan.delta_w
        node_cap = plan.node_cap
        bounded = lo > 0 or hi < len(events)
        out: list[Extension] = []
        for pos, p in enumerate(partials):
            t_last = p.t_last
            deadline = min(t_last + dc, p.t_root + dw)
            if deadline <= t_last:
                continue
            for idx in adjacent(p.nodes, t_last, deadline):
                if bounded and not lo <= idx < hi:
                    continue
                ev = events[idx]
                u = ev.u
                v = ev.v
                nodes = p.nodes
                u_in = u in nodes
                v_in = v in nodes
                extra = (not u_in) + (not v_in)
                if extra and len(nodes) + extra > node_cap:
                    continue
                if not need_nodes:
                    new_nodes = None
                elif not extra:
                    new_nodes = nodes
                elif u_in:
                    new_nodes = nodes + (v,)
                elif v_in:
                    new_nodes = nodes + (u,)
                else:
                    new_nodes = nodes + (u, v)
                out.append((pos, idx, new_nodes))
        return out


class GenericExtensionKernel(ExtensionKernel):
    """Per-node-bisect kernel: exact on every storage backend."""

    kernel_name = "generic"


class NumpyExtensionKernel(ExtensionKernel):
    """Vectorized kernel over :class:`NumpyStorage`'s banded CSR arrays.

    Extends the whole frontier at once: per-(partial, node) half-open
    window queries become four batched ``searchsorted`` sweeps, the
    ragged candidate ranges gather through one fancy-index, and
    dedup/adjacency/node-cap admission run as array ops.  Only the
    final triple materialization is per-extension Python.
    """

    kernel_name = "numpy"

    def _extend_partialwise(
        self, partials: Sequence, lo: int, hi: int, need_nodes: bool
    ) -> list[Extension]:
        vec = self._vector_candidates(partials, lo, hi)
        if vec is None:
            return super()._extend_partialwise(partials, lo, hi, need_nodes)
        if not vec:
            return []
        cand, cand_part, cu, cv, u_in, v_in = vec
        positions = cand_part.tolist()
        indices = cand.tolist()
        if not need_nodes:
            return list(zip(positions, indices, repeat(None)))
        out: list[Extension] = []
        for pos, idx, ui, vi, uu, vv in zip(
            positions, indices, u_in.tolist(), v_in.tolist(), cu.tolist(), cv.tolist()
        ):
            nodes = partials[pos].nodes
            if ui:
                new_nodes = nodes if vi else nodes + (vv,)
            elif vi:
                new_nodes = nodes + (uu,)
            else:
                new_nodes = nodes + (uu, vv)
            out.append((pos, idx, new_nodes))
        return out

    def next_frontier(
        self,
        partials: Sequence[Partial],
        lo: int,
        hi: int,
        times: Sequence[float],
    ) -> list[Partial]:
        """Fused vectorized admission + partial construction (one pass)."""
        vec = self._vector_candidates(partials, lo, hi)
        if vec is None:
            return super().next_frontier(partials, lo, hi, times)
        if not vec:
            return []
        cand, cand_part, cu, cv, u_in, v_in = vec
        nxt: list[Partial] = []
        group: list[Partial] = []
        current = -1
        for pos, idx, ui, vi, uu, vv in zip(
            cand_part.tolist(),
            cand.tolist(),
            u_in.tolist(),
            v_in.tolist(),
            cu.tolist(),
            cv.tolist(),
        ):
            if pos != current:
                if group:
                    group.reverse()
                    nxt.extend(group)
                    group = []
                current = pos
                parent = partials[pos]
                seq = parent.seq
                nodes = parent.nodes
                t_root = parent.t_root
            if ui:
                new_nodes = nodes if vi else nodes + (vv,)
            elif vi:
                new_nodes = nodes + (uu,)
            else:
                new_nodes = nodes + (uu, vv)
            group.append(Partial(seq + (idx,), new_nodes, t_root, times[idx]))
        if group:
            group.reverse()
            nxt.extend(group)
        return nxt

    def _vector_candidates(self, partials: Sequence, lo: int, hi: int):
        """The vectorized admission sweep shared by both entry points.

        Returns ``None`` when the storage cannot serve the banded arrays
        (pending tail appends, pathological node ids) — callers fall back
        to the generic path — or ``()`` when no extension is admissible.
        Otherwise ``(cand, cand_part, cu, cv, u_in, v_in)``: the admitted
        event indices, their partial positions (grouped in input order,
        events ascending within a partial), the candidate endpoints and
        their membership masks against the partial's node tuple.
        """
        arrays = getattr(self._storage, "extension_arrays", lambda: None)()
        n_p = len(partials)
        if arrays is None or n_p == 0:
            return None if arrays is None else ()
        t_col = arrays["t"]
        keys = arrays["keys"]
        m = arrays["m"]
        if not len(keys):
            return ()
        plan = self._plan
        node_cap = plan.node_cap

        # Per-partial deadlines — the plan's chained-deadline arithmetic,
        # broadcast: min(t_last + ΔC, t_root + ΔW).
        t_last = np.fromiter((p.t_last for p in partials), np.float64, n_p)
        t_root = np.fromiter((p.t_root for p in partials), np.float64, n_p)
        deadline = np.minimum(t_last + plan.delta_c, t_root + plan.delta_w)

        # One window query per (partial, node); empty/past-deadline
        # windows fall out as empty index ranges.
        sizes = np.fromiter((len(p.nodes) for p in partials), np.int64, n_p)
        total_q = int(sizes.sum())
        if total_q == 0:
            return []
        flat_nodes = np.fromiter(
            (node for p in partials for node in p.nodes), np.int64, total_q
        )
        sentinel = np.iinfo(np.int64).min
        if bool((flat_nodes == sentinel).any()):  # pragma: no cover - pathological id
            return None
        q_part = np.repeat(np.arange(n_p, dtype=np.int64), sizes)

        # Half-open (t_last, deadline] -> global index range, then into
        # each node's band of the flat CSR index (strictly increasing per
        # band, globally sorted after the + slot*m shift).
        win_lo = t_col.searchsorted(t_last, side="right")
        win_hi = t_col.searchsorted(deadline, side="right")
        slots = np.minimum(keys.searchsorted(flat_nodes), len(keys) - 1)
        known = keys[slots] == flat_nodes
        base = slots * np.int64(m)
        banded = arrays["banded"]
        a = banded.searchsorted(base + win_lo[q_part], side="left")
        b = banded.searchsorted(base + win_hi[q_part], side="left")
        cnt = b - a
        np.maximum(cnt, 0, out=cnt)
        cnt[~known] = 0
        total_c = int(cnt.sum())
        if total_c == 0:
            return ()

        # Ragged gather of every candidate range in one shot.
        starts = np.cumsum(cnt) - cnt
        offsets = np.arange(total_c, dtype=np.int64) - np.repeat(starts, cnt)
        cand = arrays["idx"][np.repeat(a, cnt) + offsets]
        cand_part = np.repeat(q_part, cnt)

        # Sort per partial (the contract's grouped-ascending order) and
        # drop duplicates: an event adjacent to two motif nodes arrives
        # once per node query.  ``cand_part`` is already non-decreasing
        # (queries are grouped by partial), so the two-key sort packs
        # into one int64 sort — much cheaper than a lexsort — unless the
        # packed key cannot fit, in which case lexsort is the fallback.
        bits = int(m).bit_length()
        if bits + int(n_p).bit_length() < 63:
            packed = (cand_part << bits) | cand
            packed.sort()
            if total_c > 1:
                keep = np.empty(total_c, dtype=bool)
                keep[0] = True
                np.not_equal(packed[1:], packed[:-1], out=keep[1:])
                if not keep.all():
                    packed = packed[keep]
            cand = packed & ((np.int64(1) << bits) - 1)
            cand_part = packed >> bits
        else:  # pragma: no cover - >2^63 packed keys
            order = np.lexsort((cand, cand_part))
            cand = cand[order]
            cand_part = cand_part[order]
            if total_c > 1:
                dup = np.empty(total_c, dtype=bool)
                dup[0] = False
                dup[1:] = (cand[1:] == cand[:-1]) & (cand_part[1:] == cand_part[:-1])
                if dup.any():
                    keep = ~dup
                    cand = cand[keep]
                    cand_part = cand_part[keep]
        if lo > 0 or hi < m:
            in_range = (cand >= lo) & (cand < hi)
            if not in_range.all():
                cand = cand[in_range]
                cand_part = cand_part[in_range]
        if not len(cand):
            return ()

        # Node-cap admission: membership of each candidate's endpoints in
        # its partial's padded node row.  The pad is as wide as the
        # *largest* partial, not the cap — a root always carries two
        # nodes even under a degenerate ``max_nodes=1`` — and, exactly
        # like the scalar kernels, only extensions that *introduce*
        # nodes are tested against the cap.
        cu = arrays["u"][cand]
        cv = arrays["v"][cand]
        padded = np.full((n_p, int(sizes.max())), sentinel, dtype=np.int64)
        cols = np.arange(total_q, dtype=np.int64) - np.repeat(
            np.cumsum(sizes) - sizes, sizes
        )
        padded[q_part, cols] = flat_nodes
        rows = padded[cand_part]
        u_in = (rows == cu[:, None]).any(axis=1)
        v_in = (rows == cv[:, None]).any(axis=1)
        extra = 2 - u_in.astype(np.int64) - v_in.astype(np.int64)
        ok = (extra == 0) | (sizes[cand_part] + extra <= node_cap)
        if not ok.all():
            cand = cand[ok]
            cand_part = cand_part[ok]
            cu = cu[ok]
            cv = cv[ok]
            u_in = u_in[ok]
            v_in = v_in[ok]
            if not len(cand):
                return ()
        return cand, cand_part, cu, cv, u_in, v_in


#: Registry of kernel capability names (the values backends may put in
#: :attr:`~repro.storage.base.GraphStorage.extension_kernel`).
KERNELS: dict[str, type[ExtensionKernel]] = {"generic": GenericExtensionKernel}
if np:
    KERNELS["numpy"] = NumpyExtensionKernel

#: The demotion ladder: when an advertised kernel is not registered in
#: this build, resolution walks down one rung at a time ("native" wants
#: numba, "numpy" wants NumPy; "generic" is always present).
KERNEL_FALLBACKS: dict[str, str] = {"native": "numpy", "numpy": "generic"}

_NATIVE_PROBED = False


def _probe_native() -> None:
    """Import the native tier once so it can self-register.

    ``repro.engine.native`` registers ``"native"`` in :data:`KERNELS` at
    import when numba is present; the import is deferred to first demand
    (a backend advertising ``"native"``) so numba's import cost is never
    paid by builds that don't use it.
    """
    global _NATIVE_PROBED
    if _NATIVE_PROBED:
        return
    _NATIVE_PROBED = True
    try:
        import repro.engine.native  # noqa: F401 - registers on import
    except Exception:  # pragma: no cover - broken optional install
        pass


def count_kernel_demotion(src: str, dst: str) -> None:
    """Record one kernel demotion in the obs counters (when enabled).

    Covers both compile-time demotion (numba or NumPy absent at plan
    resolution) and runtime fallback (tail appends pending, so the
    banded arrays are unavailable for this call).
    """
    rec = _obs.ACTIVE
    if rec is not None:
        rec.inc(_obs.labeled("engine.kernel.demote", **{"from": src, "to": dst}))


def resolve_kernel_name(name: str) -> str:
    """Resolve an advertised capability to a kernel registered here.

    Walks :data:`KERNEL_FALLBACKS` one rung at a time, counting each
    hop in ``engine.kernel.demote{from=...,to=...}`` so a silent
    fallback is visible in ``stats`` instead of only in timings.
    """
    if name == "native":
        _probe_native()
    while name not in KERNELS:
        fallback = KERNEL_FALLBACKS.get(name, "generic")
        count_kernel_demotion(name, fallback)
        name = fallback
    return name


def has_kernel(name: str) -> bool:
    """Whether a kernel capability name is implemented in this build."""
    if name == "native":
        _probe_native()
    return name in KERNELS


def kernel_for(plan: "ExecutionPlan", storage: "GraphStorage") -> ExtensionKernel:
    """Bind the plan's kernel to one storage engine.

    Plans are picklable and travel to workers, so the kernel *name* is
    re-resolved here: a plan compiled where numba was present demotes
    cleanly (and countably) on a worker where it is not.
    """
    name = plan.kernel_name
    if name not in KERNELS:
        name = resolve_kernel_name(name)
    cls = KERNELS.get(name, GenericExtensionKernel)
    rec = _obs.ACTIVE
    if rec is not None:
        rec.inc(_obs.labeled("engine.kernel.bind", kernel=cls.kernel_name))
    return cls(plan, storage)
