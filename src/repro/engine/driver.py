"""The frontier driver: plans + kernels -> instances, in serial DFS order.

:func:`run_plan` walks roots in blocks and grows each block's frontier
level-synchronously, one :meth:`ExtensionKernel.extend_frontier` call
per level — so a vectorized kernel amortizes whole-frontier batches
while the generic kernel degenerates to the familiar per-partial loop.

Yield order is **bit-identical to the historical recursive DFS**, which
the library's counter key order, capped sample lists and seeded
consumers all depend on.  The equivalence: the old DFS popped a LIFO
stack where each pop pushed its admissible children in ascending event
order, and *only final-level states yield*.  Nothing is emitted at
intermediate depths, so the interleaving of subtrees is unobservable —
all that matters is the order final-level states are popped, and that
order rebuilds level-by-level: the pop order of depth ``d+1`` is, for
each depth-``d`` state in pop order, its children in **descending**
event order (LIFO reversal).  The driver maintains the frontier in
exactly this pop order and emits completions per final-level partial in
ascending event order — the DFS sequence, without the DFS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

import repro.obs as _obs
from repro.engine.kernels import Partial
from repro.obs import labeled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.temporal_graph import TemporalGraph
    from repro.engine.plan import ExecutionPlan

Instance = tuple[int, ...]

#: Maximum roots expanded per frontier batch: large enough to feed
#: vectorized kernels whole-frontier sweeps while keeping the per-block
#: frontier memory-bounded.
ROOT_BLOCK = 2048

#: First block size.  Blocks grow geometrically from here to
#: :data:`ROOT_BLOCK`, so an early-terminating consumer (``next(...)``,
#: a small ``max_instances``) pays for a few dozen roots, not thousands,
#: while a full scan still amortizes kernel calls over large frontiers.
FIRST_BLOCK = 64


def _root_blocks(root_iter: Iterable[int]) -> Iterator[list[int]]:
    """Chunk roots into the driver's geometric block schedule."""
    block_cap = FIRST_BLOCK
    block: list[int] = []
    for root in root_iter:
        block.append(root)
        if len(block) >= block_cap:
            yield block
            block = []
            if block_cap < ROOT_BLOCK:
                block_cap *= 2
    if block:
        yield block


def _observe_levels(stats, level_partials, level_ext) -> None:
    """Mirror the per-level frontier histograms for one native block.

    Matches the Partial-object path's cadence: the root level is always
    observed; a deeper level only if its frontier was non-empty (the
    level loop returns before observing an empty frontier).
    """
    rec, partials_metric, ext_metric = stats
    for d in range(len(level_partials)):
        if d > 0 and level_partials[d] == 0:
            break
        rec.observe(partials_metric, int(level_partials[d]))
        rec.observe(ext_metric, int(level_ext[d]))


def run_plan(
    plan: "ExecutionPlan",
    graph: "TemporalGraph",
    *,
    roots: Iterable[int] | None = None,
    max_instances: int | None = None,
) -> Iterator[Instance]:
    """Enumerate every instance the plan admits, in serial DFS order.

    ``roots`` restricts the search to instances anchored at those event
    indices, in the order given (the sampling estimators' contract);
    ``max_instances`` stops the stream after that many yields.
    """
    predicate = plan.predicate
    storage = graph.storage
    m = len(storage)
    root_iter: Iterable[int] = range(m) if roots is None else roots
    yielded = 0

    if plan.n_events == 1:
        for root in root_iter:
            inst = (root,)
            if predicate is None or predicate(graph, inst):
                yield inst
                yielded += 1
                if max_instances is not None and yielded >= max_instances:
                    return
        return

    kernel = plan.bind(storage)
    times = storage.times
    event_at = storage.event_at
    # Observability binds once per run: the labeled metric names are built
    # here, never per block or per level, and ``stats is None`` is the
    # entire disabled-path cost inside ``_expand_block``.
    rec = _obs.ACTIVE
    stats = None
    if rec is not None:
        stats = (
            rec,
            labeled("engine.frontier.partials", kernel=plan.kernel_name),
            labeled("engine.frontier.extensions", kernel=plan.kernel_name),
        )
        rec.inc(labeled("engine.run_plan.calls", kernel=plan.kernel_name))

    # Native whole-block lane: the kernel grows each root block to
    # completion inside one JIT call and hands back the completed
    # instances as an array in the exact DFS yield order — no Partial
    # objects, no intermediate triples.  Unavailable (tail appends
    # pending) routes to the Partial path below, unchanged.
    expand = getattr(kernel, "expand_block", None)
    if expand is not None and kernel.block_ready():
        for block_roots in _root_blocks(root_iter):
            rows, level_partials, level_ext = expand(block_roots)
            if stats is not None:
                _observe_levels(stats, level_partials, level_ext)
            for row in rows.tolist():
                inst = tuple(row)
                if predicate is not None and not predicate(graph, inst):
                    continue
                yield inst
                yielded += 1
                if max_instances is not None and yielded >= max_instances:
                    return
        return

    block_cap = FIRST_BLOCK
    block: list[Partial] = []
    for root in root_iter:
        ev = event_at(root)
        block.append(Partial((root,), (ev.u, ev.v), ev.t, ev.t))
        if len(block) >= block_cap:
            if max_instances is None:
                yield from _expand_block(plan, graph, kernel, block, times, m, stats)
            else:
                for inst in _expand_block(plan, graph, kernel, block, times, m, stats):
                    yield inst
                    yielded += 1
                    if yielded >= max_instances:
                        return
            block = []
            if block_cap < ROOT_BLOCK:
                block_cap *= 2
    if block:
        if max_instances is None:
            yield from _expand_block(plan, graph, kernel, block, times, m, stats)
        else:
            for inst in _expand_block(plan, graph, kernel, block, times, m, stats):
                yield inst
                yielded += 1
                if yielded >= max_instances:
                    return


def _expand_block(plan, graph, kernel, frontier, times, m, stats=None) -> Iterator[Instance]:
    """Grow one root block to completion, one kernel call per level.

    ``stats`` is the driver's pre-bound observability triple
    ``(registry, partials_metric, extensions_metric)`` — or ``None``
    (the default, and the disabled path's only per-level cost).
    """
    n = plan.n_events
    predicate = plan.predicate
    for depth in range(1, n):
        if stats is not None:
            stats[0].observe(stats[1], len(frontier))
        if depth == n - 1:
            extensions = kernel.extend_frontier(frontier, 0, m, need_nodes=False)
            if stats is not None:
                stats[0].observe(stats[2], len(extensions))
            if predicate is None:
                for pos, idx, _nodes in extensions:
                    yield frontier[pos].seq + (idx,)
            else:
                for pos, idx, _nodes in extensions:
                    inst = frontier[pos].seq + (idx,)
                    if predicate(graph, inst):
                        yield inst
            return
        # Next frontier in DFS pop order: parents keep their order, each
        # parent's children flip to descending (the LIFO reversal) —
        # fused with admission inside the kernel.
        frontier = kernel.next_frontier(frontier, 0, m, times)
        if stats is not None:
            stats[0].observe(stats[2], len(frontier))
        if not frontier:
            return


def run_plan_blocks(
    plan: "ExecutionPlan",
    graph: "TemporalGraph",
    *,
    roots: Iterable[int] | None = None,
):
    """Array-shaped enumeration: instance blocks instead of tuples.

    Returns a generator of ``(n_i, n_events)`` int64 arrays — one per
    root block, rows concatenating to exactly :func:`run_plan`'s yield
    sequence — for consumers that fold instances with array ops (the
    batched census of :mod:`repro.algorithms.batched`).  Returns
    ``None`` when the block lane cannot serve this run — single-event
    plans, a restriction predicate (rows here are unfiltered), a kernel
    without a block path, or a storage whose banded arrays are pending —
    and the caller takes the tuple path.
    """
    if plan.n_events < 2 or plan.predicate is not None:
        return None
    storage = graph.storage
    kernel = plan.bind(storage)
    expand = getattr(kernel, "expand_block", None)
    if expand is None or not kernel.block_ready():
        return None
    rec = _obs.ACTIVE
    stats = None
    if rec is not None:
        stats = (
            rec,
            labeled("engine.frontier.partials", kernel=plan.kernel_name),
            labeled("engine.frontier.extensions", kernel=plan.kernel_name),
        )
        rec.inc(labeled("engine.run_plan.calls", kernel=plan.kernel_name))
    root_iter: Iterable[int] = range(len(storage)) if roots is None else roots

    def _blocks():
        for block_roots in _root_blocks(root_iter):
            rows, level_partials, level_ext = expand(block_roots)
            if stats is not None:
                _observe_levels(stats, level_partials, level_ext)
            yield rows

    return _blocks()
