"""The unified motif-execution engine: plan/kernel split.

One compiled :class:`ExecutionPlan` (:func:`compile_plan`) resolves the
chained-deadline schedule, restriction shard-safety and the backend's
kernel capability once per run; per-backend
:class:`~repro.engine.kernels.ExtensionKernel` implementations answer
the single primitive every counting path shares —
``extend_frontier(partials, lo, hi)`` — and :func:`run_plan` drives it
in the serial DFS yield order.

Consumers:

* :func:`repro.algorithms.enumeration.enumerate_instances` is a thin
  driver over the plan (public API unchanged);
* :mod:`repro.parallel.engine` ships the compiled plan to shard workers
  instead of re-deriving constraints per shard;
* :class:`repro.online.OnlineCensus` runs its per-arrival prefix
  admission and snapshot-restore regrow through the same kernel;
* :mod:`repro.algorithms.sampling` enumerates from sampled roots
  through the plan (and the parallel engine via ``jobs=``).

This is the only home of the extension-admission arithmetic; see
ROADMAP.md "Execution engine contract (PR 5)" for the invariants.
"""

from repro.engine.driver import ROOT_BLOCK, run_plan, run_plan_blocks
from repro.engine.kernels import (
    KERNEL_FALLBACKS,
    KERNELS,
    ExtensionKernel,
    GenericExtensionKernel,
    NumpyExtensionKernel,
    Partial,
    has_kernel,
    kernel_for,
    resolve_kernel_name,
)
from repro.engine.plan import (
    ExecutionPlan,
    clear_plan_cache,
    compile_plan,
    is_shard_safe,
)

__all__ = [
    "KERNEL_FALLBACKS",
    "KERNELS",
    "ROOT_BLOCK",
    "ExecutionPlan",
    "ExtensionKernel",
    "GenericExtensionKernel",
    "NumpyExtensionKernel",
    "Partial",
    "clear_plan_cache",
    "compile_plan",
    "has_kernel",
    "is_shard_safe",
    "kernel_for",
    "resolve_kernel_name",
    "run_plan",
    "run_plan_blocks",
]
