"""Table 2 — statistics of the temporal network datasets.

For every registered dataset: nodes, events, edges, distinct timestamps,
fraction of events with a unique timestamp, and median inter-event time —
side by side with the paper's full-size reference values so the calibration
of the synthetic analogues is visible (absolute sizes are scaled down by
design; the *relative* signatures — Email's low unique-timestamp fraction,
Bitcoin's events == edges, the message networks' short medians — are the
reproduction targets).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.textplot import table
from repro.datasets.registry import DATASETS, dataset_names
from repro.datasets.statistics import compute_stats
from repro.experiments.base import ExperimentResult, fmt_count, load_graphs

EXPERIMENT_ID = "table2"
TITLE = "Table 2: dataset statistics (synthetic analogues vs paper)"


def run(
    datasets: Iterable[str] | None = None, *, scale: float = 1.0, **_ignored
) -> ExperimentResult:
    """Compute the Table-2 row of every requested dataset."""
    graphs = load_graphs(datasets, scale=scale)
    rows = []
    data: dict[str, dict] = {}
    for graph in graphs:
        stats = compute_stats(graph)
        paper = DATASETS[graph.name].paper_row
        rows.append(
            (
                stats.name,
                fmt_count(stats.nodes),
                fmt_count(stats.events),
                fmt_count(stats.edges),
                fmt_count(stats.unique_timestamps),
                f"{100 * stats.unique_ts_fraction:.1f}%",
                f"{stats.median_interevent:.0f}",
                f"{100 * paper.unique_ts_fraction:.1f}%",
                f"{paper.median_interevent:.0f}",
            )
        )
        data[stats.name] = {
            "nodes": stats.nodes,
            "events": stats.events,
            "edges": stats.edges,
            "unique_timestamps": stats.unique_timestamps,
            "unique_ts_fraction": stats.unique_ts_fraction,
            "median_interevent": stats.median_interevent,
            "paper_unique_ts_fraction": paper.unique_ts_fraction,
            "paper_median_interevent": paper.median_interevent,
        }
    text = table(
        (
            "Name",
            "Nodes",
            "Events",
            "Edges",
            "#T",
            "|Eu|/|E|",
            "m(Δt)",
            "paper |Eu|/|E|",
            "paper m(Δt)",
        ),
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )


def default_datasets() -> tuple[str, ...]:
    return dataset_names()
