"""The null-model dilemma (Section 5, "Comparison criteria").

The paper reports a negative result that shapes its whole methodology:
among the randomized reference models of Gauvin et al., "some are too
restrictive where the motif counts barely change, and some others are too
loose where all the motifs are reported as significant" — hence the paper
falls back to raw counts as the significance indicator.

This experiment reproduces that dilemma quantitatively on one dataset:

* **loose null** — timestamp permutation: destroys burstiness, so real
  motif counts sit many standard deviations above the ensemble and almost
  every motif is flagged "significant";
* **restrictive null** — per-edge inter-event shuffle: preserves per-edge
  trains, so counts barely move and almost nothing is flagged.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, NamedTuple

from repro.core._optional import import_numpy

np = import_numpy()

from repro.algorithms.counting import count_motifs
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.notation import motif_codes_with_nodes
from repro.core.temporal_graph import TemporalGraph
from repro.experiments.base import ExperimentResult, load_graphs
from repro.parallel import parallel_map
from repro.randomization.shuffles import (
    motif_zscore,
    permuted_timestamps,
    shuffle_interevent_times,
)

EXPERIMENT_ID = "nullmodels"
TITLE = "Null models: too loose vs too restrictive (Sec. 5, comparison criteria)"

DEFAULT_DATASETS = ("sms-copenhagen",)
Z_THRESHOLD = 2.0

#: ensemble label -> shuffle constructor (module-level for picklability).
NULL_MODELS = {
    "loose (P(t))": permuted_timestamps,
    "restrictive (P(Δt))": shuffle_interevent_times,
}


class _Replica(NamedTuple):
    """One shuffle-ensemble replica, self-contained for a pool worker."""

    events: tuple[Event, ...]
    backend: str
    label: str
    seed: int
    delta_c: float


def _count_replica(replica: _Replica) -> Counter:
    """Worker: rebuild the graph from events, shuffle, count (serially)."""
    graph = TemporalGraph(replica.events, backend=replica.backend)
    shuffled = NULL_MODELS[replica.label](graph, seed=replica.seed)
    return count_motifs(
        shuffled,
        3,
        TimingConstraints.only_c(replica.delta_c),
        max_nodes=3,
        node_counts={3},
        jobs=1,
    )


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = 1500.0,
    n_null: int = 5,
    jobs: int | None = None,
    **_ignored,
) -> ExperimentResult:
    """Score every 3n3e motif against both null ensembles.

    ``jobs`` fans the ``2 * n_null`` shuffle replicas out over worker
    processes — each worker receives the graph's events (a ``to_events``
    round-trip), rebuilds its own copy, shuffles with its own seed, and
    counts serially.  Replica seeds are unchanged, so results are
    identical to the serial run.
    """
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    constraints = TimingConstraints.only_c(delta_c)
    universe = motif_codes_with_nodes(3, 3)

    rows = []
    data: dict[str, dict] = {}
    for graph in graphs:
        observed = count_motifs(
            graph, 3, constraints, max_nodes=3, node_counts={3}, jobs=jobs
        )
        events = graph.to_events()
        replicas = [
            _Replica(events, graph.backend, label, seed, delta_c)
            for label in NULL_MODELS
            for seed in range(n_null)
        ]
        counts = parallel_map(_count_replica, replicas, jobs=jobs)
        nulls = {
            label: counts[i * n_null : (i + 1) * n_null]
            for i, label in enumerate(NULL_MODELS)
        }
        entry: dict[str, dict] = {"observed_total": sum(observed.values())}
        for label, samples in nulls.items():
            zscores = motif_zscore(observed, samples)
            flagged = sum(
                1
                for code in universe
                if observed.get(code, 0) > 0 and abs(zscores.get(code, 0.0)) > Z_THRESHOLD
            )
            present = sum(1 for code in universe if observed.get(code, 0) > 0)
            null_total = float(np.mean([sum(s.values()) for s in samples]))
            count_shift = (
                abs(sum(observed.values()) - null_total)
                / max(sum(observed.values()), 1)
            )
            entry[label] = {
                "flagged": flagged,
                "present": present,
                "flagged_fraction": flagged / max(present, 1),
                "count_shift": count_shift,
                "null_total": null_total,
            }
            rows.append(
                (
                    graph.name,
                    label,
                    f"{sum(observed.values())}",
                    f"{null_total:.0f}",
                    f"{100 * count_shift:.0f}%",
                    f"{flagged}/{present}",
                )
            )
        data[graph.name] = entry

    text = table(
        ("Network", "null model", "observed", "null mean", "count shift", "|z|>2"),
        rows,
        title=TITLE,
    )
    notes = [
        "loose null: counts collapse without burstiness -> most motifs flagged",
        "restrictive null: per-edge trains preserved -> counts barely shift, few flags",
        "this is why the paper uses raw counts as the significance indicator",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + "\n" + "\n".join("note: " + n for n in notes),
        data=data,
        notes=notes,
    )
