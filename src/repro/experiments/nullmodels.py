"""The null-model dilemma (Section 5, "Comparison criteria").

The paper reports a negative result that shapes its whole methodology:
among the randomized reference models of Gauvin et al., "some are too
restrictive where the motif counts barely change, and some others are too
loose where all the motifs are reported as significant" — hence the paper
falls back to raw counts as the significance indicator.

This experiment reproduces that dilemma quantitatively on one dataset:

* **loose null** — timestamp permutation: destroys burstiness, so real
  motif counts sit many standard deviations above the ensemble and almost
  every motif is flagged "significant";
* **restrictive null** — per-edge inter-event shuffle: preserves per-edge
  trains, so counts barely move and almost nothing is flagged.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.algorithms.counting import count_motifs
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.notation import motif_codes_with_nodes
from repro.experiments.base import ExperimentResult, load_graphs
from repro.randomization.shuffles import (
    motif_zscore,
    permuted_timestamps,
    shuffle_interevent_times,
)

EXPERIMENT_ID = "nullmodels"
TITLE = "Null models: too loose vs too restrictive (Sec. 5, comparison criteria)"

DEFAULT_DATASETS = ("sms-copenhagen",)
Z_THRESHOLD = 2.0


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = 1500.0,
    n_null: int = 5,
    **_ignored,
) -> ExperimentResult:
    """Score every 3n3e motif against both null ensembles."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    constraints = TimingConstraints.only_c(delta_c)
    universe = motif_codes_with_nodes(3, 3)

    rows = []
    data: dict[str, dict] = {}
    for graph in graphs:
        observed = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
        nulls = {
            "loose (P(t))": [
                count_motifs(
                    permuted_timestamps(graph, seed=s), 3, constraints,
                    max_nodes=3, node_counts={3},
                )
                for s in range(n_null)
            ],
            "restrictive (P(Δt))": [
                count_motifs(
                    shuffle_interevent_times(graph, seed=s), 3, constraints,
                    max_nodes=3, node_counts={3},
                )
                for s in range(n_null)
            ],
        }
        entry: dict[str, dict] = {"observed_total": sum(observed.values())}
        for label, samples in nulls.items():
            zscores = motif_zscore(observed, samples)
            flagged = sum(
                1
                for code in universe
                if observed.get(code, 0) > 0 and abs(zscores.get(code, 0.0)) > Z_THRESHOLD
            )
            present = sum(1 for code in universe if observed.get(code, 0) > 0)
            null_total = float(np.mean([sum(s.values()) for s in samples]))
            count_shift = (
                abs(sum(observed.values()) - null_total)
                / max(sum(observed.values()), 1)
            )
            entry[label] = {
                "flagged": flagged,
                "present": present,
                "flagged_fraction": flagged / max(present, 1),
                "count_shift": count_shift,
                "null_total": null_total,
            }
            rows.append(
                (
                    graph.name,
                    label,
                    f"{sum(observed.values())}",
                    f"{null_total:.0f}",
                    f"{100 * count_shift:.0f}%",
                    f"{flagged}/{present}",
                )
            )
        data[graph.name] = entry

    text = table(
        ("Network", "null model", "observed", "null mean", "count shift", "|z|>2"),
        rows,
        title=TITLE,
    )
    notes = [
        "loose null: counts collapse without burstiness -> most motifs flagged",
        "restrictive null: per-edge trains preserved -> counts barely shift, few flags",
        "this is why the paper uses raw counts as the significance indicator",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + "\n" + "\n".join("note: " + n for n in notes),
        data=data,
        notes=notes,
    )
