"""Figure 1 — validity of candidate motifs under the four models.

The paper's Figure 1 shows a small temporal network and four candidate
motifs whose validity differs across the four models (ΔC = 5 s,
ΔW = 10 s):

* motif 1 — valid for Song & Paranjape only (breaks ΔC),
* motif 2 — valid for Song only (breaks ΔC *and* is not induced),
* motif 3 — valid for all but Kovanen (breaks the consecutive-events
  restriction),
* motif 4 — valid under all four models.

The figure's exact event list is not published, so this module constructs
an *analogue* network realizing the same validity matrix; the matrix, not
the coordinates, is the reproducible artifact.
"""

from __future__ import annotations

from repro.core.temporal_graph import TemporalGraph
from repro.experiments.base import ExperimentResult
from repro.models import HulovatyyModel, KovanenModel, ParanjapeModel, SongModel

EXPERIMENT_ID = "figure1"
TITLE = "Figure 1: model-by-model validity of four candidate motifs"

DELTA_C = 5.0
DELTA_W = 10.0

#: The paper's expected validity matrix: motif -> (Kovanen, Song, Hulovatyy,
#: Paranjape).
EXPECTED = {
    "motif-1": (False, True, False, True),
    "motif-2": (False, True, False, False),
    "motif-3": (False, True, True, True),
    "motif-4": (True, True, True, True),
}


def example_network() -> TemporalGraph:
    """The analogue of Figure 1's example network.

    Events e0..e5 host motifs 2–4; events f0..f2 (nodes 5–7) host motif 1
    on an otherwise quiet node set so that it is induced.
    """
    return TemporalGraph.from_tuples(
        [
            (1, 2, 3),   # e0
            (2, 3, 7),   # e1
            (2, 4, 8),   # e2 — the "dashed" interloper of the figure
            (1, 2, 9),   # e3
            (3, 4, 10),  # e4
            (4, 2, 12),  # e5
            (5, 6, 20),  # f0
            (5, 6, 26),  # f1
            (6, 7, 28),  # f2
        ],
        name="figure1-example",
    )


def candidate_motifs() -> dict[str, tuple[int, ...]]:
    """The four candidate instances, as event-index tuples."""
    return {
        # gap 26-20=6 breaks ΔC; span 8 fits ΔW; induced on quiet nodes.
        "motif-1": (6, 7, 8),
        # gap 9-3=6 breaks ΔC; e2's edge (2,4) inside the window among
        # nodes {1,2,4} breaks inducedness; span 9 fits ΔW.
        "motif-2": (0, 3, 5),
        # all gaps ≤ 5 and induced, but node 4 touches e4 at t=10 between
        # its motif events (t=8 and t=12) — consecutive restriction broken.
        "motif-3": (2, 3, 5),
        # gaps 1 and 2, span 3, induced, uninterrupted: valid everywhere.
        "motif-4": (1, 2, 4),
    }


def run(**_ignored) -> ExperimentResult:
    """Judge the four candidates under the four models and render the matrix."""
    graph = example_network()
    models = (
        KovanenModel(DELTA_C),
        SongModel(DELTA_W),
        HulovatyyModel(DELTA_C),
        ParanjapeModel(DELTA_W),
    )
    verdicts: dict[str, tuple[bool, ...]] = {}
    for label, instance in candidate_motifs().items():
        verdicts[label] = tuple(
            model.is_valid_instance(graph, instance) for model in models
        )

    lines = [TITLE, f"ΔC={DELTA_C:g}s, ΔW={DELTA_W:g}s", ""]
    header = ["motif"] + [type(m).__name__.replace("Model", "") for m in models]
    lines.append("  ".join(h.ljust(10) for h in header))
    agreement = True
    for label, row in verdicts.items():
        cells = ["valid" if ok else "-" for ok in row]
        lines.append("  ".join([label.ljust(10)] + [c.ljust(10) for c in cells]))
        if row != EXPECTED[label]:
            agreement = False
    lines.append("")
    lines.append(
        "matches the paper's Figure 1 matrix"
        if agreement
        else "MISMATCH with the paper's Figure 1 matrix"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(lines),
        data={"verdicts": verdicts, "expected": EXPECTED, "agreement": agreement},
    )
