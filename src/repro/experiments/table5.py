"""Table 5 — event-pair group counts across timing configurations.

With ΔW fixed at 3000 s, three-event motifs are counted under the three
Section-5.2 configurations — only-ΔW (ΔC/ΔW = 1.0), ΔW-and-ΔC (0.66), and
only-ΔC (0.5) — and classified by pair composition: **R,P,I,O motifs**
(every pair bursty/local) vs **C,W motifs** (every pair a transfer type).

Expected shapes: counts shrink monotonically toward only-ΔC (subset
property); the R,P,I,O group shrinks *faster* than C,W (transfer chains
are causal and tight in time, so ΔC spares them); R,P,I,O outnumber C,W
by an order of magnitude.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.experiments.base import (
    DELTA_W_TIMING,
    RATIOS_3E,
    ExperimentResult,
    fmt_count,
    load_graphs,
    ratio_label,
)

EXPERIMENT_ID = "table5"
TITLE = "Table 5: event-pair groups under only-ΔW / ΔW-and-ΔC / only-ΔC (ΔW=3000s)"

#: The paper's Table 5 datasets.
DEFAULT_DATASETS = (
    "college-msg",
    "fb-wall",
    "bitcoin-otc",
    "sms-copenhagen",
    "sms-a",
)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_w: float = DELTA_W_TIMING,
    ratios: tuple[float, ...] = RATIOS_3E,
    **_ignored,
) -> ExperimentResult:
    """Count pair-composition groups per dataset and configuration."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    configs = [
        (ratio_label(r, 3), TimingConstraints.from_ratio(delta_w, r))
        for r in sorted(ratios, reverse=True)
    ]

    rows = []
    data: dict[str, dict] = {}
    for graph in graphs:
        group_by_config: dict[str, dict[str, int]] = {}
        for label, constraints in configs:
            census = run_census(graph, 3, constraints, max_nodes=3)
            group_by_config[label] = census.pair_group_counts()
        base_label = configs[0][0]
        base = group_by_config[base_label]
        for group in ("RPIO", "CW"):
            cells = [graph.name if group == "RPIO" else "", group]
            for label, _ in configs:
                count = group_by_config[label][group]
                cells.append(fmt_count(count))
                if label != base_label:
                    denom = max(base[group], 1)
                    cells.append(f"{100 * count / denom:.1f}%")
            rows.append(tuple(cells))
        data[graph.name] = group_by_config

    header: list[str] = ["Network", "Motif group"]
    for label, _ in configs:
        header.append(label)
        if label != configs[0][0]:
            header.append("ratio")
    notes = [
        "ratio columns are relative to the only-ΔW configuration",
        "paper shape: R,P,I,O reduced more than C,W; counts monotone decreasing",
    ]
    text = table(tuple(header), rows, title=TITLE)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + "\n" + "\n".join("note: " + n for n in notes),
        data=data,
        notes=notes,
    )
