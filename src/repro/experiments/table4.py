"""Table 4 — vanilla temporal motifs vs constrained dynamic graphlets.

Every dataset is degraded to 300 s resolution (the CDG restriction was
designed around snapshot data; at 1 s resolution nearly every motif escapes
it — see Section 5.1.2), then 3n3e motifs are counted with ΔC = 1500 s
without and with the CDG restriction.  Reported per dataset: the variance
of the per-motif proportion changes and the changes of the paper's four
focus motifs (010102, 010202, 012020 — immediate repetitions, expected to
*gain* share; 010201 — the delayed repetition, expected to *lose*).

Bitcoin-otc has no repeated edges, so CDG changes nothing: its row is
exactly zero.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import count_motifs
from repro.algorithms.restrictions import satisfies_cdg
from repro.analysis.proportions import proportion_changes, proportion_variance
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.notation import motif_codes_with_nodes
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    RESOLUTION_CDG,
    ExperimentResult,
    fmt_signed,
    load_graphs,
)

EXPERIMENT_ID = "table4"
TITLE = "Table 4: constrained dynamic graphlets at 300s resolution (ΔC=1500s)"

#: The focus motifs of Table 4.
FOCUS_MOTIFS = ("010102", "010202", "012020", "010201")


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = DELTA_C_INDUCEDNESS,
    resolution: float = RESOLUTION_CDG,
    **_ignored,
) -> ExperimentResult:
    """Compare vanilla and CDG-restricted 3n3e counts per dataset."""
    graphs = load_graphs(datasets, scale=scale)
    universe = motif_codes_with_nodes(3, 3)
    constraints = TimingConstraints.only_c(delta_c)

    rows = []
    data: dict[str, dict] = {}
    for original in graphs:
        graph = original.degrade_resolution(resolution)
        vanilla = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
        cdg = count_motifs(
            graph,
            3,
            constraints,
            max_nodes=3,
            node_counts={3},
            predicate=satisfies_cdg,
        )
        changes = proportion_changes(vanilla, cdg, universe=universe)
        variance = proportion_variance(changes)
        rows.append(
            (graph.name, f"{variance:.2f}")
            + tuple(fmt_signed(changes[m]) + "%" for m in FOCUS_MOTIFS)
        )
        data[graph.name] = {
            "vanilla": dict(vanilla),
            "cdg": dict(cdg),
            "changes": changes,
            "variance": variance,
        }

    text = table(
        ("Network", "Variance") + FOCUS_MOTIFS,
        rows,
        title=TITLE,
    )
    notes = [
        "cells are proportion changes in percentage points, vanilla → CDG",
        "paper shape: 010201 (delayed repetition) decreases, immediate repetitions increase;",
        "bitcoin-otc is exactly zero (no repeated edges)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + "\n" + "\n".join("note: " + n for n in notes),
        data=data,
        notes=notes,
    )
