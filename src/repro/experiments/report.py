"""Assemble a full reproduction report across experiments.

``python -m repro.experiments all`` prints each artifact; this module
builds a single markdown document instead — headings per experiment, the
rendered artifact in a code fence, and the experiment's shape notes — so a
complete run can be archived as one file::

    from repro.experiments.report import write_report
    write_report("report.md", scale=0.5)
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_experiment

#: Default report order: main text artifacts, then the appendix.
DEFAULT_ORDER: tuple[str, ...] = (
    "table1",
    "figure1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table6",
    "table7",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "nullmodels",
    "stream",
)


def build_report(
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: float = 1.0,
    datasets: Iterable[str] | None = None,
) -> str:
    """Run experiments and render one markdown document."""
    ids = list(experiment_ids) if experiment_ids is not None else list(DEFAULT_ORDER)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    lines: list[str] = [
        "# Reproduction report — Temporal Network Motifs",
        "",
        f"scale = {scale:g}"
        + (f", datasets = {sorted(datasets)}" if datasets is not None else ""),
        "",
    ]
    kwargs: dict = {"scale": scale}
    if datasets is not None:
        kwargs["datasets"] = list(datasets)
    for eid in ids:
        started = time.time()
        result = run_experiment(eid, **kwargs)
        elapsed = time.time() - started
        lines.extend(_render_section(result, elapsed))
    return "\n".join(lines)


def _render_section(result: ExperimentResult, elapsed: float) -> list[str]:
    lines = [f"## {result.title}", ""]
    lines.append("```text")
    lines.append(result.text)
    lines.append("```")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"* {note}")
    lines.append("")
    lines.append(f"_regenerated in {elapsed:.1f}s via "
                 f"`python -m repro.experiments {result.experiment_id}`_")
    lines.append("")
    return lines


def write_report(
    path: str | Path,
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: float = 1.0,
    datasets: Iterable[str] | None = None,
) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.write_text(
        build_report(experiment_ids, scale=scale, datasets=datasets)
    )
    return path
