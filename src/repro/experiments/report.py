"""Assemble a full reproduction report across experiments.

``python -m repro.experiments all`` prints each artifact; this module
builds a single markdown document instead — headings per experiment, the
rendered artifact in a code fence, and the experiment's shape notes — so a
complete run can be archived as one file::

    from repro.experiments.report import write_report
    write_report("report.md", scale=0.5)

The builder accepts exactly the CLI's shared options
(:data:`repro.experiments.options.OPTION_SPECS` — ``window``, ``jobs``,
``stats``, ``stats_json``); unknown keywords are rejected against that
one spec, so the CLI ``--help`` and this API can never disagree about
what the stream subcommand's stats options are called.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.options import option_names, run_kwargs
from repro.experiments.runner import EXPERIMENTS, run_experiment

#: Default report order: main text artifacts, then the appendix.
DEFAULT_ORDER: tuple[str, ...] = (
    "table1",
    "figure1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table6",
    "table7",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "nullmodels",
    "stream",
)


def build_report(
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: float = 1.0,
    datasets: Iterable[str] | None = None,
    **options,
) -> str:
    """Run experiments and render one markdown document.

    ``options`` takes the CLI's shared keywords (see
    :mod:`repro.experiments.options`): ``window`` and ``jobs`` forward to
    every experiment run; ``stats=True`` enables the observability layer
    around the whole report and appends its per-layer table as a final
    section; ``stats_json=PATH`` additionally writes the raw registry
    snapshot there.
    """
    known = set(option_names())
    unknown_opts = sorted(set(options) - known)
    if unknown_opts:
        raise TypeError(
            f"unknown report options {unknown_opts}; the shared experiment "
            f"options are {sorted(known)} (repro.experiments.options)"
        )
    ids = list(experiment_ids) if experiment_ids is not None else list(DEFAULT_ORDER)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    lines: list[str] = [
        "# Reproduction report — Temporal Network Motifs",
        "",
        f"scale = {scale:g}"
        + (f", datasets = {sorted(datasets)}" if datasets is not None else ""),
        "",
    ]
    kwargs: dict = {"scale": scale}
    if datasets is not None:
        kwargs["datasets"] = list(datasets)
    kwargs.update(run_kwargs(options))  # window / jobs, when set
    stats_json = options.get("stats_json")
    registry = None
    if options.get("stats") or stats_json:
        import repro.obs as obs

        registry = obs.MetricsRegistry()
        obs.enable(registry)
    try:
        for eid in ids:
            started = time.time()
            result = run_experiment(eid, **kwargs)
            elapsed = time.time() - started
            lines.extend(_render_section(result, elapsed))
    finally:
        if registry is not None:
            import repro.obs as obs

            obs.disable()
    if registry is not None:
        import repro.obs as obs

        lines.append("## Observability")
        lines.append("")
        lines.append("```text")
        lines.append(obs.render_table(registry.snapshot()))
        lines.append("```")
        lines.append("")
        if stats_json:
            Path(stats_json).write_text(registry.to_json())
            lines.append(f"_raw registry snapshot written to `{stats_json}`_")
            lines.append("")
    return "\n".join(lines)


def _render_section(result: ExperimentResult, elapsed: float) -> list[str]:
    lines = [f"## {result.title}", ""]
    lines.append("```text")
    lines.append(result.text)
    lines.append("```")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"* {note}")
    lines.append("")
    lines.append(f"_regenerated in {elapsed:.1f}s via "
                 f"`python -m repro.experiments {result.experiment_id}`_")
    lines.append("")
    return lines


def write_report(
    path: str | Path,
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: float = 1.0,
    datasets: Iterable[str] | None = None,
    **options,
) -> Path:
    """Build and write the report; returns the path.

    Accepts the same shared options as :func:`build_report`.
    """
    path = Path(path)
    path.write_text(
        build_report(experiment_ids, scale=scale, datasets=datasets, **options)
    )
    return path
