"""Appendix experiments: Figures 7–11.

The journal version's appendix extends the main-text figures to the full
dataset collection:

* Figures 7–8 — event-pair ratio pies (Figure 3) for all nine datasets,
  three- and four-event motifs, split in two parts as in the paper;
* Figure 9 — intermediate event behaviors (Figure 4) on more panels;
* Figure 10 — motif timespan distributions (Figure 5) on more datasets;
* Figure 11 — pair-sequence heat maps (Figure 6) for the remaining
  datasets.

Each is a thin parameterization of the corresponding main-text experiment
module, registered under its own id so ``python -m repro.experiments
figure9`` works.
"""

from __future__ import annotations

from repro.experiments import figure3, figure4, figure5, figure6
from repro.experiments.base import ExperimentResult

FIGURE7_DATASETS = ("calls-copenhagen", "college-msg", "email", "fb-wall")
FIGURE8_DATASETS = (
    "bitcoin-otc",
    "sms-a",
    "sms-copenhagen",
    "stackoverflow",
    "superuser",
)
FIGURE9_PANELS = (
    ("calls-copenhagen", "010102"),
    ("email", "010102"),
    ("fb-wall", "01022123"),
    ("bitcoin-otc", "01022123"),
    ("superuser", "01022123"),
)
FIGURE10_DATASETS = (
    "fb-wall",
    "sms-copenhagen",
    "superuser",
    "calls-copenhagen",
)
FIGURE11_DATASETS = (
    "college-msg",
    "fb-wall",
    "stackoverflow",
    "superuser",
    "bitcoin-otc",
)


def _retitle(result: ExperimentResult, experiment_id: str, title: str) -> ExperimentResult:
    result.experiment_id = experiment_id
    result.title = title
    result.text = f"{title}\n{result.text}"
    return result


def run_figure7(datasets=None, *, scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Appendix Figure 7: pair ratios, datasets part 1 (3e and 4e)."""
    result = figure3.run(
        datasets if datasets is not None else FIGURE7_DATASETS,
        scale=scale,
        **kwargs,
    )
    return _retitle(result, "figure7", "Figure 7 (appendix): event-pair ratios, part 1")


def run_figure8(datasets=None, *, scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Appendix Figure 8: pair ratios, datasets part 2 (3e and 4e)."""
    result = figure3.run(
        datasets if datasets is not None else FIGURE8_DATASETS,
        scale=scale,
        **kwargs,
    )
    return _retitle(result, "figure8", "Figure 8 (appendix): event-pair ratios, part 2")


def run_figure9(datasets=None, *, scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Appendix Figure 9: intermediate event behaviors, more panels."""
    if datasets is not None:
        result = figure4.run(datasets, scale=scale, **kwargs)
    else:
        result = figure4.run(scale=scale, panels=FIGURE9_PANELS, **kwargs)
    return _retitle(
        result, "figure9", "Figure 9 (appendix): intermediate event behaviors"
    )


def run_figure10(datasets=None, *, scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Appendix Figure 10: timespan distributions, more datasets."""
    result = figure5.run(
        datasets if datasets is not None else FIGURE10_DATASETS,
        scale=scale,
        **kwargs,
    )
    return _retitle(
        result, "figure10", "Figure 10 (appendix): motif timespan distributions"
    )


def run_figure11(datasets=None, *, scale: float = 1.0, **kwargs) -> ExperimentResult:
    """Appendix Figure 11: pair-sequence heat maps, remaining datasets."""
    result = figure6.run(
        datasets if datasets is not None else FIGURE11_DATASETS,
        scale=scale,
        **kwargs,
    )
    return _retitle(
        result, "figure11", "Figure 11 (appendix): ordered event-pair sequences"
    )
