"""Figure 5 (and appendix Figure 10) — motif timespan distributions.

For a focus motif (010102 in the main text), the distribution of instance
timespans (last minus first event) under only-ΔC, ΔW-and-ΔC, and only-ΔW.

Expected shape: only-ΔC yields a bell-shaped distribution that ΔC bounds
only loosely; moving toward only-ΔW regularizes it — the uniformity score
over [0, ΔW] increases monotonically.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis.textplot import histogram
from repro.analysis.timespan import timespan_histogram, timespan_summary, uniformity
from repro.core.constraints import TimingConstraints
from repro.experiments.base import (
    DELTA_W_TIMING,
    RATIOS_3E,
    ExperimentResult,
    load_graphs,
    ratio_label,
)

EXPERIMENT_ID = "figure5"
TITLE = "Figure 5: motif timespan distributions (motif 010102)"

DEFAULT_DATASETS = ("college-msg", "fb-wall", "sms-copenhagen")
DEFAULT_CODE = "010102"


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_w: float = DELTA_W_TIMING,
    code: str = DEFAULT_CODE,
    n_bins: int = 12,
    **_ignored,
) -> ExperimentResult:
    """Collect timespan histograms of ``code`` per dataset and configuration."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    n_events = len(code) // 2
    sections: list[str] = [TITLE, ""]
    data: dict[str, dict] = {}
    for graph in graphs:
        data[graph.name] = {}
        for ratio in sorted(RATIOS_3E):
            census = run_census(
                graph,
                n_events,
                TimingConstraints.from_ratio(delta_w, ratio),
                max_nodes=min(n_events, 4),
                collect_timespans=True,
                timespan_codes=[code],
            )
            spans = census.timespans.get(code, [])
            label = ratio_label(ratio, n_events)
            edges, counts = timespan_histogram(spans, n_bins=n_bins, upper=delta_w)
            summary = timespan_summary(spans)
            uni = uniformity(spans, upper=delta_w, n_bins=n_bins)
            data[graph.name][label] = {
                "histogram": counts.tolist(),
                "edges": edges.tolist(),
                "summary": summary,
                "uniformity": uni,
            }
            sections.append(
                histogram(
                    edges,
                    counts,
                    title=(
                        f"{graph.name} motif {code}, {label} "
                        f"({summary}, uniformity {uni:.2f})"
                    ),
                )
            )
            sections.append("")
    notes = ["paper shape: distributions regularize going only-ΔC → only-ΔW"]
    sections.extend("note: " + n for n in notes)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )
