"""Experiment registry and dispatch."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    appendix,
    figure1,
    nullmodels,
    stream,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.base import ExperimentResult

#: experiment id -> (run callable, title)
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    module.EXPERIMENT_ID: (module.run, module.TITLE)
    for module in (
        table1,
        figure1,
        table2,
        table3,
        table4,
        table5,
        figure3,
        figure4,
        figure5,
        figure6,
        table6,
        table7,
    )
}
EXPERIMENTS.update(
    {
        "nullmodels": (nullmodels.run, nullmodels.TITLE),
        "stream": (stream.run, stream.TITLE),
        "figure7": (appendix.run_figure7, "Figure 7 (appendix): event-pair ratios, part 1"),
        "figure8": (appendix.run_figure8, "Figure 8 (appendix): event-pair ratios, part 2"),
        "figure9": (appendix.run_figure9, "Figure 9 (appendix): intermediate event behaviors"),
        "figure10": (appendix.run_figure10, "Figure 10 (appendix): motif timespan distributions"),
        "figure11": (appendix.run_figure11, "Figure 11 (appendix): ordered event-pair sequences"),
    }
)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id (``table3``, ``figure5``, ...).

    Keyword arguments are forwarded to the experiment's ``run`` (every
    experiment accepts ``datasets`` and ``scale``; several accept
    experiment-specific knobs — see each module).  ``jobs`` additionally
    becomes the session default worker count for the duration of the
    experiment, so every census inside it — including ones in experiments
    that predate the parallel engine — shards across that many processes.

    Execution plans are reused across the session: every census a run
    performs resolves its configuration through
    :func:`repro.engine.compile_plan`, whose memo hands the same
    compiled plan to every dataset sharing one of the paper's few
    ``(n_events, constraints, restriction)`` configurations — the
    deadline schedule, shard safety and kernel capability are derived
    once per configuration, not once per table cell.
    """
    try:
        run, _title = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from None
    jobs = kwargs.get("jobs")
    if jobs is None:
        return run(**kwargs)
    from repro.parallel import default_jobs

    with default_jobs(jobs):
        return run(**kwargs)


def run_all(**kwargs) -> list[ExperimentResult]:
    """Run every registered experiment in presentation order."""
    return [run_experiment(eid, **kwargs) for eid in EXPERIMENTS]
