"""Table 1 — aspects of the four temporal motif models.

A conceptual table: which aspects of temporality (inducedness, durations,
partial ordering, directedness, labels, ΔC vs ΔW) each model handles.  The
experiment renders the matrix from the model classes' own metadata and
cross-checks it against the canonical rows in :mod:`repro.models.aspects`,
so the table can never drift from the implementations.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.models import ALL_MODELS
from repro.models.aspects import ASPECT_ROWS, aspect_matrix, aspect_table

EXPERIMENT_ID = "table1"
TITLE = "Table 1: aspects of temporal motif models"


def run(**_ignored) -> ExperimentResult:
    """Render Table 1 and verify model classes agree with the canonical rows."""
    mismatches: list[str] = []
    for model_cls in ALL_MODELS:
        expected = ASPECT_ROWS[model_cls.name]
        if model_cls.aspects != expected:
            mismatches.append(model_cls.name)
    lines = [TITLE, "", aspect_table(), ""]
    if mismatches:
        lines.append(f"MISMATCH between model metadata and Table 1: {mismatches}")
    else:
        lines.append("model classes agree with the paper's Table 1")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(lines),
        data={"matrix": aspect_matrix(), "mismatches": mismatches},
    )
