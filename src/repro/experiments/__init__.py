"""Experiment harness: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments table3 --scale 0.5
    python -m repro.experiments all --scale 0.25

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("table5", scale=0.5)
    print(result.text)
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
