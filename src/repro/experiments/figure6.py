"""Figure 6 (and appendix Figure 11) — ordered sequences of event pairs.

For each dataset, the 6×6 matrix of three-event motif counts indexed by
(first pair type, second pair type), counted with both constraints
(ΔC = 2000 s, ΔW = 3000 s) and rendered as a log-scaled heat map.

Expected shapes: repetition-involving sequences dominate;
weakly-connected rows/columns are nearly empty; message networks live in
the R/P block (two-node conversations); asymmetries — convey followed by
out-burst common, convey followed by in-burst rare; in-burst followed by
convey common, the reverse rare.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis.pairseq import asymmetry, log_scaled, pair_sequence_matrix
from repro.analysis.textplot import pair_heatmap
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import PairType
from repro.experiments.base import (
    DELTA_C_FIG6,
    DELTA_W_FIG6,
    ExperimentResult,
    load_graphs,
)

EXPERIMENT_ID = "figure6"
TITLE = "Figure 6: ordered sequences of event pairs (ΔC=2000s, ΔW=3000s)"

DEFAULT_DATASETS = ("sms-a", "sms-copenhagen", "calls-copenhagen", "email")


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = DELTA_C_FIG6,
    delta_w: float = DELTA_W_FIG6,
    **_ignored,
) -> ExperimentResult:
    """Build the pair-sequence matrix of every dataset."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    constraints = TimingConstraints(delta_c=delta_c, delta_w=delta_w)
    sections: list[str] = [TITLE, ""]
    data: dict[str, dict] = {}
    for graph in graphs:
        census = run_census(graph, 3, constraints, max_nodes=3)
        matrix = pair_sequence_matrix(census.pair_sequence_counts)
        scaled = log_scaled(matrix)
        sections.append(
            pair_heatmap(
                scaled,
                title=f"{graph.name} (rows: first pair, cols: second pair; log scale)",
            )
        )
        asym = {
            "C_then_O_vs_O_then_C": asymmetry(matrix, PairType.CONVEY, PairType.OUT_BURST),
            "I_then_C_vs_C_then_I": asymmetry(matrix, PairType.IN_BURST, PairType.CONVEY),
        }
        sections.append(
            f"asymmetries: C→O preference {asym['C_then_O_vs_O_then_C']:+.2f}, "
            f"I→C preference {asym['I_then_C_vs_C_then_I']:+.2f}"
        )
        sections.append("")
        data[graph.name] = {"matrix": matrix.tolist(), "asymmetries": asym}
    notes = [
        "paper shapes: repetition sequences dominate; weakly-connected pairs rare;",
        "conveys followed by out-bursts, in-bursts followed by conveys (not vice versa)",
    ]
    sections.extend("note: " + n for n in notes)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )
