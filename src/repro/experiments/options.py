"""One shared registration path for the experiments CLI options.

Both consumers of the experiment runner — the argparse entry point
(``python -m repro.experiments``) and the report builder
(:mod:`repro.experiments.report`) — resolve their accepted options from
:data:`OPTION_SPECS`, so the two can never drift apart.  (They once did:
the stream subcommand's stats options were documented in ``--help`` but
silently rejected by ``build_report``.)

* :func:`add_experiment_options` installs every option on an argparse
  parser (the CLI's half of the contract).
* :func:`option_names` / :func:`describe_options` expose the same spec
  to keyword-argument consumers (the report builder validates its
  ``**options`` against this and documents them from it).
* :func:`run_kwargs` extracts the subset forwarded to experiment ``run``
  callables; the rest (``stats``, ``stats_json``) belong to the harness.
"""

from __future__ import annotations

import argparse
from typing import Any, Iterator, Mapping

__all__ = [
    "OPTION_SPECS",
    "RUN_KWARG_NAMES",
    "add_experiment_options",
    "describe_options",
    "option_names",
    "run_kwargs",
]

#: ``(flag, argparse add_argument kwargs)`` for every experiment option,
#: in display order.  The destination name (``--stats-json`` ->
#: ``stats_json``) is the keyword consumers accept.
OPTION_SPECS: tuple[tuple[str, dict[str, Any]], ...] = (
    (
        "--scale",
        dict(
            type=float,
            default=1.0,
            help="dataset size multiplier (default 1.0 = registry sizes)",
        ),
    ),
    (
        "--datasets",
        dict(
            nargs="*",
            default=None,
            help="dataset names to run on (default: per-experiment choice)",
        ),
    ),
    (
        "--window",
        dict(
            type=float,
            default=None,
            metavar="W",
            help=(
                "trailing-window length in seconds for the online census "
                "replay (the 'stream' experiment; other experiments ignore it)"
            ),
        ),
    ),
    (
        "--windows",
        dict(
            default=None,
            metavar="W1,W2,...",
            help=(
                "comma-separated window lengths for a multi-view stream "
                "replay: one shared MultiViewCensus engine maintains every "
                "window at once (the 'stream' experiment; overrides "
                "--window when given)"
            ),
        ),
    ),
    (
        "--jobs",
        dict(
            type=int,
            default=None,
            metavar="N",
            help=(
                "worker processes for motif censuses and shuffle ensembles "
                "(applies to every experiment; 1 = serial, 0 = one per CPU; "
                "default: the REPRO_JOBS environment variable, else serial)"
            ),
        ),
    ),
    (
        "--host",
        dict(
            default=None,
            help=(
                "bind address for the census service (the 'serve' command; "
                "other experiments ignore it; default 127.0.0.1)"
            ),
        ),
    ),
    (
        "--port",
        dict(
            type=int,
            default=None,
            help=(
                "TCP port for the census service (the 'serve' command; "
                "default 8737, 0 = ephemeral)"
            ),
        ),
    ),
    (
        "--workers",
        dict(
            type=int,
            default=None,
            metavar="N",
            help=(
                "worker processes of the census service's compute pool (the "
                "'serve' command; default 2; distinct from --jobs, which "
                "shards one census inside a worker)"
            ),
        ),
    ),
    (
        "--pages",
        dict(
            default=None,
            metavar="DIR",
            help=(
                "serve an existing page directory instead of generating a "
                "dataset (the 'serve' command; see TemporalGraph.save)"
            ),
        ),
    ),
    (
        "--partition-events",
        dict(
            type=int,
            default=None,
            metavar="N",
            help=(
                "emit the out-of-core partitioned page layout with ~N events "
                "per partition (the 'pages' command; default flat layout; "
                "see TemporalGraph.save(partition_events=...))"
            ),
        ),
    ),
    (
        "--max-pending",
        dict(
            type=int,
            default=None,
            metavar="N",
            help=(
                "admission bound on outstanding census-service requests "
                "before the overflow policy applies (the 'serve' command; "
                "default 32)"
            ),
        ),
    ),
    (
        "--overflow",
        dict(
            choices=("reject", "degrade"),
            default=None,
            help=(
                "census-service overflow policy: reject with retry-after, or "
                "degrade to sampling estimates with error bars (the 'serve' "
                "command; default reject)"
            ),
        ),
    ),
    (
        "--stats",
        dict(
            action="store_true",
            help=(
                "enable the observability layer (repro.obs) for the run and "
                "print the per-layer metrics table afterwards — for the "
                "stream experiment this includes push-latency histograms, "
                "prefix-store / expiry-heap gauges and shed counts"
            ),
        ),
    ),
    (
        "--stats-json",
        dict(
            default=None,
            metavar="PATH",
            help=(
                "also write the raw registry snapshot as JSON to PATH "
                "(implies --stats)"
            ),
        ),
    ),
)

#: Options forwarded to experiment ``run`` callables.  ``stats`` and
#: ``stats_json`` are harness-level (they configure the registry around
#: the run, not the experiment itself).
RUN_KWARG_NAMES: tuple[str, ...] = ("scale", "datasets", "window", "windows", "jobs")


def _dest(flag: str) -> str:
    return flag.lstrip("-").replace("-", "_")


def add_experiment_options(parser: argparse.ArgumentParser) -> None:
    """Install every shared experiment option on ``parser``."""
    for flag, spec in OPTION_SPECS:
        parser.add_argument(flag, **spec)


def option_names() -> tuple[str, ...]:
    """The keyword names of every shared option (argparse dests)."""
    return tuple(_dest(flag) for flag, _spec in OPTION_SPECS)


def describe_options() -> Iterator[tuple[str, str]]:
    """``(keyword, help text)`` pairs, in display order."""
    for flag, spec in OPTION_SPECS:
        yield _dest(flag), spec.get("help", "")


def run_kwargs(namespace: Any) -> dict[str, Any]:
    """The experiment-``run`` kwargs present on an argparse namespace
    (or any object/mapping with the option names as attributes/keys),
    with unset (``None``) options omitted so experiment defaults apply.
    ``scale`` always forwards (its default is a real value, not a
    sentinel)."""
    getter = namespace.get if isinstance(namespace, Mapping) else None
    out: dict[str, Any] = {}
    for name in RUN_KWARG_NAMES:
        value = getter(name) if getter else getattr(namespace, name, None)
        if value is not None:
            out[name] = value
    return out
