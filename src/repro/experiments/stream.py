"""Streaming replay: the online sliding-window census on a live stream.

Not a paper artifact — an operational experiment for the online engine
(:mod:`repro.online`): replay a registered dataset event-by-event through
:class:`~repro.online.OnlineCensus`, report sustained throughput and the
rolling motif mix, and cross-check the final window against a batch
:func:`~repro.algorithms.counting.run_census` of the equivalent
``slice_time`` window (the engine's core invariant)::

    python -m repro.experiments stream --window 12000

With ``--windows W1,W2,...`` the replay goes through one shared
:class:`~repro.online.MultiViewCensus` engine instead — every window
maintained at once over a single graph tail, prefix store and compiled
kernel — and the batch cross-check runs per view::

    python -m repro.experiments stream --windows 3000,12000,48000
"""

from __future__ import annotations

import time
from typing import Iterable

import repro.obs as _obs
from repro.algorithms.counting import run_census
from repro.analysis import textplot
from repro.core.constraints import TimingConstraints
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    DELTA_W_TIMING,
    ExperimentResult,
    fmt_count,
    load_graphs,
)

EXPERIMENT_ID = "stream"
TITLE = "Stream replay: online sliding-window census vs batch recount"

#: Default trailing-window length W, in seconds (4x the ΔW bound, so the
#: window holds several motif lifetimes of context).
DEFAULT_WINDOW = 4 * DELTA_W_TIMING

#: Default replay datasets: the conversation-heavy message network.
DEFAULT_DATASETS = ("sms-copenhagen",)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    window: float = DEFAULT_WINDOW,
    windows: str | Iterable[float] | None = None,
    delta_c: float = DELTA_C_INDUCEDNESS,
    delta_w: float = DELTA_W_TIMING,
    n_events: int = 3,
    max_nodes: int | None = 3,
    prune_every: int | None = 4096,
    **_ignored,
) -> ExperimentResult:
    """Replay each dataset through the online engine; verify batch parity."""
    from repro.online import OnlineCensus

    constraints = TimingConstraints(delta_c=delta_c, delta_w=delta_w)
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    multi = _parse_windows(windows)
    if multi is not None:
        return _run_multiview(
            graphs,
            multi,
            constraints,
            n_events=n_events,
            max_nodes=max_nodes,
            prune_every=prune_every,
        )
    sections: list[str] = [
        f"Online census replay: {n_events}-event motifs, "
        f"{constraints.describe()}, trailing window W={window:g}s"
    ]
    data: dict[str, dict] = {}
    for graph in graphs:
        engine = OnlineCensus(
            n_events,
            constraints,
            window,
            max_nodes=max_nodes,
            backend=graph.backend,
            prune_every=prune_every,
        )
        rec = _obs.ACTIVE
        total_events = len(graph)
        checkpoints = (
            {max(1, total_events * q // 4) for q in (1, 2, 3, 4)}
            if rec is not None
            else frozenset()
        )
        rolling: list[str] = []
        started = time.perf_counter()
        peak_live = 0
        for i, event in enumerate(graph.events, start=1):
            engine.push(event)
            if engine.live_instances > peak_live:
                peak_live = engine.live_instances
            if i in checkpoints:
                rolling.append(_rolling_line(rec, i, total_events))
        seconds = time.perf_counter() - started
        rate = len(graph) / seconds if seconds > 0 else float("inf")

        batch = run_census(
            graph.slice(engine.now - window, engine.now),
            n_events,
            constraints,
            max_nodes=max_nodes,
        )
        online = engine.census()
        parity = (
            online.code_counts == batch.code_counts
            and online.total == batch.total
            and online.pair_counts == batch.pair_counts
        )

        top = online.code_counts.most_common(6)
        chart = textplot.bar_chart(
            [code for code, _ in top],
            [n for _, n in top],
            title=f"final-window motif mix ({online.total} instances)",
        )
        sections.append(
            "\n".join(
                [
                    f"\n{graph.name}: {fmt_count(len(graph))} events replayed in "
                    f"{seconds:.2f}s ({fmt_count(rate)} events/s)",
                    f"  instances discovered {fmt_count(engine.discovered)}, "
                    f"expired {fmt_count(engine.expired)}, "
                    f"peak live {fmt_count(peak_live)}, "
                    f"retained tail {fmt_count(len(engine.graph))} events",
                    f"  final-window parity vs batch recount: "
                    f"{'ok' if parity else 'MISMATCH'}",
                ]
                + rolling
                + [chart]
            )
        )
        data[graph.name] = {
            "events": len(graph),
            "seconds": seconds,
            "events_per_sec": rate,
            "discovered": engine.discovered,
            "expired": engine.expired,
            "peak_live": peak_live,
            "final_total": online.total,
            "final_counts": dict(online.code_counts),
            "parity": parity,
        }
        if rec is not None:
            hist = rec.histograms.get("online.push.seconds")
            if hist is not None:
                data[graph.name]["push_latency"] = _obs.summarize_histogram(
                    hist.to_snapshot()
                )

    notes = [
        "The online engine maintains the trailing-window census "
        "incrementally; 'parity ok' means its final counters equal a "
        "batch run_census over the matching slice_time window "
        "(the invariant tests/test_online.py asserts push-by-push).",
    ]
    if _obs.enabled():
        notes.append(
            "Observability was enabled (--stats): sections include rolling "
            "push-latency quantiles and store/heap gauges at replay "
            "quarters; the full per-layer table prints after the run."
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )


def _parse_windows(windows: str | Iterable[float] | None) -> list[float] | None:
    """Normalize the ``--windows W1,W2,...`` option to a float list."""
    if windows is None:
        return None
    if isinstance(windows, str):
        parts = [part.strip() for part in windows.split(",") if part.strip()]
    else:
        parts = list(windows)
    if not parts:
        raise ValueError("--windows needs at least one window length")
    try:
        values = [float(part) for part in parts]
    except (TypeError, ValueError):
        raise ValueError(f"--windows must be numbers, got {windows!r}") from None
    return values


def _run_multiview(
    graphs,
    windows: list[float],
    constraints: TimingConstraints,
    *,
    n_events: int,
    max_nodes: int | None,
    prune_every: int | None,
) -> ExperimentResult:
    """Replay each dataset through one shared multi-view engine."""
    from repro.online import MultiViewCensus

    sections: list[str] = [
        f"Multi-view online replay: {n_events}-event motifs, "
        f"{constraints.describe()}, {len(windows)} concurrent windows "
        f"({', '.join(f'{w:g}s' for w in windows)}) over one shared engine"
    ]
    data: dict[str, dict] = {}
    for graph in graphs:
        engine = MultiViewCensus(
            n_events,
            constraints,
            max(windows),
            max_nodes=max_nodes,
            backend=graph.backend,
            prune_every=prune_every,
        )
        names = []
        for i, w in enumerate(windows):
            name = f"W{w:g}" if windows.count(w) == 1 else f"W{w:g}#{i}"
            engine.add_view(name, w)
            names.append(name)
        started = time.perf_counter()
        for event in graph.events:
            engine.push(event)
        seconds = time.perf_counter() - started
        rate = len(graph) / seconds if seconds > 0 else float("inf")

        lines = [
            f"\n{graph.name}: {fmt_count(len(graph))} events through "
            f"{len(names)} views in {seconds:.2f}s ({fmt_count(rate)} events/s), "
            f"retained tail {fmt_count(len(engine.graph))} events"
        ]
        views_data: dict[str, dict] = {}
        all_parity = True
        for name in names:
            view_census = engine.census(name)
            window = engine.describe()["views"][name]["window"]
            batch = run_census(
                graph.slice(engine.now - window, engine.now),
                n_events,
                constraints,
                max_nodes=max_nodes,
            )
            parity = (
                view_census.code_counts == batch.code_counts
                and view_census.total == batch.total
            )
            all_parity = all_parity and parity
            lines.append(
                f"  view {name}: {fmt_count(view_census.total)} live instances, "
                f"parity vs batch recount: {'ok' if parity else 'MISMATCH'}"
            )
            views_data[name] = {
                "window": window,
                "final_total": view_census.total,
                "final_counts": dict(view_census.code_counts),
                "parity": parity,
            }
        sections.append("\n".join(lines))
        data[graph.name] = {
            "events": len(graph),
            "seconds": seconds,
            "events_per_sec": rate,
            "windows": list(windows),
            "views": views_data,
            "parity": all_parity,
        }
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=[
            "All windows share one graph tail, prefix store and compiled "
            "kernel (MultiViewCensus); each view's final counters are "
            "cross-checked against an independent batch run_census of the "
            "matching slice_time window.",
        ],
    )


def _rolling_line(rec, done: int, total: int) -> str:
    """One cumulative stats line at a replay checkpoint (obs enabled).

    Reads the live registry the engine is recording into: the cumulative
    push-latency quantiles so far plus the current store/heap gauges.
    """
    from repro.obs.render import format_value

    pct = 100 * done // total
    hist = rec.histograms.get("online.push.seconds")
    if hist is None or not hist.count:
        return f"  [stats {pct:>3}%] (no pushes recorded)"
    gauges = rec.gauges
    return (
        f"  [stats {pct:>3}%] push p50={format_value(hist.quantile(0.5))}s "
        f"p99={format_value(hist.quantile(0.99))}s | "
        f"prefix-store entries={int(gauges.get('online.prefix_store.entries', 0))} "
        f"expiry-heap depth={int(gauges.get('online.expiry_heap.depth', 0))}"
    )
