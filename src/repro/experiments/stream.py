"""Streaming replay: the online sliding-window census on a live stream.

Not a paper artifact — an operational experiment for the online engine
(:mod:`repro.online`): replay a registered dataset event-by-event through
:class:`~repro.online.OnlineCensus`, report sustained throughput and the
rolling motif mix, and cross-check the final window against a batch
:func:`~repro.algorithms.counting.run_census` of the equivalent
``slice_time`` window (the engine's core invariant)::

    python -m repro.experiments stream --window 12000
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis import textplot
from repro.core.constraints import TimingConstraints
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    DELTA_W_TIMING,
    ExperimentResult,
    fmt_count,
    load_graphs,
)

EXPERIMENT_ID = "stream"
TITLE = "Stream replay: online sliding-window census vs batch recount"

#: Default trailing-window length W, in seconds (4x the ΔW bound, so the
#: window holds several motif lifetimes of context).
DEFAULT_WINDOW = 4 * DELTA_W_TIMING

#: Default replay datasets: the conversation-heavy message network.
DEFAULT_DATASETS = ("sms-copenhagen",)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    window: float = DEFAULT_WINDOW,
    delta_c: float = DELTA_C_INDUCEDNESS,
    delta_w: float = DELTA_W_TIMING,
    n_events: int = 3,
    max_nodes: int | None = 3,
    prune_every: int | None = 4096,
    **_ignored,
) -> ExperimentResult:
    """Replay each dataset through the online engine; verify batch parity."""
    from repro.online import OnlineCensus

    constraints = TimingConstraints(delta_c=delta_c, delta_w=delta_w)
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    sections: list[str] = [
        f"Online census replay: {n_events}-event motifs, "
        f"{constraints.describe()}, trailing window W={window:g}s"
    ]
    data: dict[str, dict] = {}
    for graph in graphs:
        engine = OnlineCensus(
            n_events,
            constraints,
            window,
            max_nodes=max_nodes,
            backend=graph.backend,
            prune_every=prune_every,
        )
        started = time.perf_counter()
        peak_live = 0
        for event in graph.events:
            engine.push(event)
            if engine.live_instances > peak_live:
                peak_live = engine.live_instances
        seconds = time.perf_counter() - started
        rate = len(graph) / seconds if seconds > 0 else float("inf")

        batch = run_census(
            graph.slice(engine.now - window, engine.now),
            n_events,
            constraints,
            max_nodes=max_nodes,
        )
        online = engine.census()
        parity = (
            online.code_counts == batch.code_counts
            and online.total == batch.total
            and online.pair_counts == batch.pair_counts
        )

        top = online.code_counts.most_common(6)
        chart = textplot.bar_chart(
            [code for code, _ in top],
            [n for _, n in top],
            title=f"final-window motif mix ({online.total} instances)",
        )
        sections.append(
            "\n".join(
                [
                    f"\n{graph.name}: {fmt_count(len(graph))} events replayed in "
                    f"{seconds:.2f}s ({fmt_count(rate)} events/s)",
                    f"  instances discovered {fmt_count(engine.discovered)}, "
                    f"expired {fmt_count(engine.expired)}, "
                    f"peak live {fmt_count(peak_live)}, "
                    f"retained tail {fmt_count(len(engine.graph))} events",
                    f"  final-window parity vs batch recount: "
                    f"{'ok' if parity else 'MISMATCH'}",
                    chart,
                ]
            )
        )
        data[graph.name] = {
            "events": len(graph),
            "seconds": seconds,
            "events_per_sec": rate,
            "discovered": engine.discovered,
            "expired": engine.expired,
            "peak_live": peak_live,
            "final_total": online.total,
            "final_counts": dict(online.code_counts),
            "parity": parity,
        }

    notes = [
        "The online engine maintains the trailing-window census "
        "incrementally; 'parity ok' means its final counters equal a "
        "batch run_census over the matching slice_time window "
        "(the invariant tests/test_online.py asserts push-by-push).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )
