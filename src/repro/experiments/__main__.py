"""Command-line entry point: ``python -m repro.experiments <id> [options]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
        epilog=(
            "examples: "
            "`python -m repro.experiments table3 --jobs 4` shards every census "
            "of Table 3 across 4 worker processes; "
            "`python -m repro.experiments all --jobs 0` uses one worker per CPU "
            "for every table and figure. Parallel output is bit-identical to "
            "serial output."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. table3, figure5), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size multiplier (default 1.0 = registry sizes)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        help="dataset names to run on (default: per-experiment choice)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="W",
        help=(
            "trailing-window length in seconds for the online census "
            "replay (the 'stream' experiment; other experiments ignore it)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for motif censuses and shuffle ensembles "
            "(applies to every experiment; 1 = serial, 0 = one per CPU; "
            "default: the REPRO_JOBS environment variable, else serial)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        for eid, (_run, title) in EXPERIMENTS.items():
            print(f"{eid:10} {title}")
        return 0
    kwargs = {"scale": args.scale}
    if args.datasets is not None:
        kwargs["datasets"] = args.datasets
    if args.jobs is not None:
        kwargs["jobs"] = args.jobs
    if args.window is not None:
        kwargs["window"] = args.window
    started = time.time()
    if args.experiment == "all":
        for result in run_all(**kwargs):
            print(result.text)
            print()
    else:
        try:
            result = run_experiment(args.experiment, **kwargs)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print(result.text)
    print(f"[done in {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
