"""Command-line entry point: ``python -m repro.experiments <id> [options]``."""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.options import add_experiment_options, run_kwargs
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
        epilog=(
            "examples: "
            "`python -m repro.experiments table3 --jobs 4` shards every census "
            "of Table 3 across 4 worker processes; "
            "`python -m repro.experiments all --jobs 0` uses one worker per CPU "
            "for every table and figure (parallel output is bit-identical to "
            "serial output); "
            "`python -m repro.experiments stream --window 12000 --stats` "
            "replays the online census with observability enabled and prints "
            "push-latency histograms, prefix-store/expiry-heap gauges and "
            "per-layer counters."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. table3, figure5), 'all', 'list', "
            "'serve' (run the census service; see --host/--port/--workers), "
            "or 'pages' (write a graph source to a page directory; see "
            "--pages/--partition-events)"
        ),
    )
    add_experiment_options(parser)
    return parser


def pages_cli(args) -> int:
    """Write a resolvable graph source to a flat or partitioned page dir.

    ``--datasets NAME`` (or any page-directory path) picks the source via
    :func:`repro.sources.resolve`, ``--pages DIR`` is the output, and
    ``--partition-events N`` switches from the flat PR 3 layout to the
    out-of-core partitioned one.
    """
    from repro import sources

    if not args.pages:
        print("pages: --pages DIR (the output directory) is required",
              file=sys.stderr)
        return 2
    spec = args.datasets[0] if args.datasets else "sms-copenhagen"
    source = sources.resolve(spec, scale=args.scale)
    graph = source.open()
    graph.save(args.pages, partition_events=args.partition_events)
    layout = (
        f"partitioned (~{args.partition_events} events/partition)"
        if args.partition_events
        else "flat"
    )
    print(
        f"wrote {len(graph)} events of {graph.name!r} "
        f"({source.describe()}) to {args.pages} [{layout}]"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        for eid, (_run, title) in EXPERIMENTS.items():
            print(f"{eid:10} {title}")
        print(f"{'serve':10} census service: concurrent query/stream server")
        print(f"{'pages':10} write a graph source to a (flat or partitioned) "
              "page directory")
        return 0
    if args.experiment == "serve":
        # Long-running foreground service, not an ExperimentResult —
        # dispatched before the runner (run_all must never block on it).
        from repro.service.server import serve_cli

        return serve_cli(args)
    if args.experiment == "pages":
        return pages_cli(args)
    kwargs = run_kwargs(args)
    registry = None
    if args.stats or args.stats_json:
        # Enable before anything builds engines: hot paths bind the
        # recorder at construction time (the repro.obs contract).
        import repro.obs as obs

        registry = obs.MetricsRegistry()
        obs.enable(registry)
    started = time.time()
    try:
        if args.experiment == "all":
            for result in run_all(**kwargs):
                print(result.text)
                print()
        else:
            try:
                result = run_experiment(args.experiment, **kwargs)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            print(result.text)
    finally:
        if registry is not None:
            import repro.obs as obs

            obs.disable()
    if registry is not None:
        import repro.obs as obs

        print()
        print(obs.render_table(registry.snapshot()))
        if args.stats_json:
            Path(args.stats_json).write_text(registry.to_json())
            print(f"[stats snapshot written to {args.stats_json}]")
    print(f"[done in {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
