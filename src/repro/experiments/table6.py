"""Table 6 (appendix) — full ranking changes of all 32 3n3e motifs.

The complete version of Table 3: the rank change of every 3n3e motif on
every dataset after the consecutive-events restriction is applied
(ΔC = 1500 s).  Positive = ascension, the paper's sign convention.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import count_motifs
from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.analysis.rankings import rank_changes
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.notation import motif_codes_with_nodes
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    ExperimentResult,
    load_graphs,
)

EXPERIMENT_ID = "table6"
TITLE = "Table 6: ranking changes of all 3n3e motifs under the consecutive restriction"

#: Subset used by default so the full-width table stays fast/readable;
#: pass ``datasets=...`` for the complete appendix table.
DEFAULT_DATASETS = (
    "calls-copenhagen",
    "sms-copenhagen",
    "college-msg",
    "email",
    "bitcoin-otc",
)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = DELTA_C_INDUCEDNESS,
    **_ignored,
) -> ExperimentResult:
    """Rank-change matrix: rows = 32 motif codes, columns = datasets."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    universe = motif_codes_with_nodes(3, 3)
    constraints = TimingConstraints.only_c(delta_c)

    per_dataset: dict[str, dict[str, int]] = {}
    for graph in graphs:
        non_cons = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
        cons = count_motifs(
            graph,
            3,
            constraints,
            max_nodes=3,
            node_counts={3},
            predicate=satisfies_consecutive_events,
        )
        per_dataset[graph.name] = rank_changes(non_cons, cons, universe=universe)

    names = list(per_dataset)
    rows = [
        (code,) + tuple(f"{per_dataset[name][code]:+d}" for name in names)
        for code in universe
    ]
    text = table(("Motif",) + tuple(names), rows, title=TITLE)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"rank_changes": per_dataset},
    )
