"""Figure 4 (and appendix Figure 9) — intermediate event behaviors.

For a focus motif, the distribution of the intermediate events' relative
positions inside the motif window (0 % = first event, 100 % = last) under
the Section-5.2 configurations.

Expected shape: in only-ΔW the intermediate event is skewed toward one end
(toward the first event for 010102, whose first pair is a repetition;
toward the last for 011221, whose last pair is a ping-pong); tightening
ΔC/ΔW regularizes the distribution — |skew| decreases monotonically.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis.intermediate import position_histogram, skewness
from repro.analysis.textplot import bar_chart
from repro.core.constraints import TimingConstraints
from repro.experiments.base import (
    DELTA_W_TIMING,
    RATIOS_3E,
    RATIOS_4E,
    ExperimentResult,
    load_graphs,
    ratio_label,
)

EXPERIMENT_ID = "figure4"
TITLE = "Figure 4: intermediate event occurrence positions"

#: (dataset, motif code) panels of the main-text figure.
DEFAULT_PANELS = (
    ("sms-copenhagen", "010102"),
    ("fb-wall", "011221"),
    ("college-msg", "01212303"),
)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_w: float = DELTA_W_TIMING,
    panels: tuple[tuple[str, str], ...] = DEFAULT_PANELS,
    n_bins: int = 10,
    **_ignored,
) -> ExperimentResult:
    """Histogram intermediate positions for each panel and configuration."""
    if datasets is not None:
        panels = tuple((name, "010102") for name in datasets)
    names = [name for name, _ in panels]
    graphs = {g.name: g for g in load_graphs(names, scale=scale, default=names)}

    sections: list[str] = [TITLE, ""]
    data: dict[str, dict] = {}
    for name, code in panels:
        graph = graphs[name]
        n_events = len(code) // 2
        ratios = RATIOS_3E if n_events == 3 else RATIOS_4E
        panel_key = f"{name}:{code}"
        data[panel_key] = {}
        for ratio in sorted(ratios, reverse=True):
            census = run_census(
                graph,
                n_events,
                TimingConstraints.from_ratio(delta_w, ratio),
                max_nodes=min(n_events, 4),
                collect_positions=True,
                position_codes=[code],
            )
            samples = census.intermediate_positions.get(code, [])
            label = ratio_label(ratio, n_events)
            hist = position_histogram(samples, n_bins=n_bins)
            skew = skewness(samples)
            data[panel_key][label] = {
                "histogram": hist.tolist(),
                "skew": skew,
                "samples": len(samples),
            }
            bins = [
                f"{int(100 * i / n_bins)}-{int(100 * (i + 1) / n_bins)}%"
                for i in range(n_bins)
            ]
            sections.append(
                bar_chart(
                    bins,
                    [float(c) for c in hist],
                    title=f"{name} motif {code}, {label} (skew {skew:+.3f}, n={len(samples)})",
                )
            )
            sections.append("")
    notes = ["paper shape: |skew| decreases as ΔC/ΔW tightens"]
    sections.extend("note: " + n for n in notes)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )
