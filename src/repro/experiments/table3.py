"""Table 3 — the impact of the consecutive events restriction.

For each dataset, count all 3n3e motifs with ΔC = 1500 s *without* and
*with* Kovanen's consecutive-events restriction, and report the rank
changes of the four ask-reply motifs the paper singles out (010210,
011210, 012010, 012110 — each ends with a reply to the first event with a
different conversation interposed).

Expected shapes (Section 5.1.1): the restriction removes the large
majority of motifs (over 95 % in the paper's message networks, least in
Bitcoin-otc), and the ask-reply motifs ascend in rank.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import count_motifs
from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.analysis.rankings import rank_changes, reduction_rate
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.notation import motif_codes_with_nodes
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    ExperimentResult,
    fmt_count,
    load_graphs,
)

EXPERIMENT_ID = "table3"
TITLE = "Table 3: impact of the consecutive events restriction (ΔC=1500s)"

#: The ask-reply motifs Table 3 highlights.
FOCUS_MOTIFS = ("010210", "011210", "012010", "012110")


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = DELTA_C_INDUCEDNESS,
    **_ignored,
) -> ExperimentResult:
    """Count 3n3e motifs without/with the restriction on every dataset."""
    graphs = load_graphs(datasets, scale=scale)
    universe = motif_codes_with_nodes(3, 3)
    constraints = TimingConstraints.only_c(delta_c)

    rows = []
    data: dict[str, dict] = {}
    for graph in graphs:
        non_cons = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
        cons = count_motifs(
            graph,
            3,
            constraints,
            max_nodes=3,
            node_counts={3},
            predicate=satisfies_consecutive_events,
        )
        changes = rank_changes(non_cons, cons, universe=universe)
        survival = reduction_rate(non_cons, cons)
        rows.append(
            (
                graph.name,
                fmt_count(sum(non_cons.values())),
                fmt_count(sum(cons.values())),
                f"{100 * survival:.1f}%",
            )
            + tuple(f"{changes[m]:+d}" for m in FOCUS_MOTIFS)
        )
        data[graph.name] = {
            "non_consecutive": dict(non_cons),
            "consecutive": dict(cons),
            "survival": survival,
            "rank_changes": changes,
        }

    text = table(
        ("Network", "Non-cons.", "Cons.", "survive") + FOCUS_MOTIFS,
        rows,
        title=TITLE,
    )
    notes = [
        "positive rank changes = the motif ascends once the restriction is applied",
        "paper shape: >95% of motifs removed in message networks; ask-reply motifs amplified",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + "\n" + "\n".join("note: " + n for n in notes),
        data=data,
        notes=notes,
    )
