"""Shared infrastructure for the experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult`` taking at
least ``datasets`` (names, defaulting per experiment) and ``scale`` (dataset
size multiplier).  The result carries both a rendered text report (``text``)
and the raw numbers (``data``) so tests and EXPERIMENTS.md generation can
assert on values rather than scrape strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.temporal_graph import TemporalGraph
from repro.datasets.registry import dataset_names

#: Timing parameters used throughout Section 5, in seconds.
DELTA_C_INDUCEDNESS = 1500.0  # Tables 3, 4, 6, 7
DELTA_W_TIMING = 3000.0       # Section 5.2 sweeps (Tables 5, Figures 3-5)
DELTA_C_FIG6 = 2000.0         # Figure 6
DELTA_W_FIG6 = 3000.0         # Figure 6
RESOLUTION_CDG = 300.0        # Table 4 snapshot resolution

#: ΔC/ΔW ratios of Section 5.2: three-event and four-event sweeps.
RATIOS_3E = (0.5, 0.66, 1.0)
RATIOS_4E = (0.33, 0.5, 0.66, 1.0)


@dataclass
class ExperimentResult:
    """Output of one experiment: a report plus machine-readable data."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def load_graphs(
    datasets: Iterable[str] | None,
    *,
    scale: float = 1.0,
    default: Sequence[str] | None = None,
) -> list[TemporalGraph]:
    """Materialize the requested graph sources.

    Each entry resolves through :func:`repro.sources.resolve`, so beyond
    registered dataset names a ``--datasets`` argument may name a flat or
    partitioned page directory and the experiment runs over it directly
    (out-of-core for the partitioned layout).
    """
    from repro.sources import resolve

    names = list(datasets) if datasets is not None else list(
        default if default is not None else dataset_names()
    )
    return [resolve(name, scale=scale).open() for name in names]


def ratio_label(ratio: float, n_events: int) -> str:
    """The paper's configuration labels: only-ΔC / ΔW-and-ΔC / only-ΔW."""
    if ratio >= 1.0:
        return "only-ΔW"
    if ratio <= 1 / (n_events - 1):
        return "only-ΔC"
    return f"ΔC/ΔW={ratio:g}"


def fmt_count(n: float) -> str:
    """Compact count formatting for report tables."""
    if n >= 1_000_000:
        return f"{n / 1_000_000:.2f}M"
    if n >= 10_000:
        return f"{n / 1_000:.1f}K"
    if n >= 1_000:
        return f"{n / 1_000:.2f}K"
    return f"{n:g}"


def fmt_signed(x: float, *, digits: int = 2) -> str:
    """Signed fixed-point formatting (Table 4/6/7 cells)."""
    return f"{x:+.{digits}f}"
