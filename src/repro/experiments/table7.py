"""Table 7 (appendix) — full proportion changes of all 32 3n3e motifs.

The complete version of Table 4: the proportion change (percentage points)
of every 3n3e motif when going from vanilla temporal motifs to constrained
dynamic graphlets, at 300 s resolution with ΔC = 1500 s.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import count_motifs
from repro.algorithms.restrictions import satisfies_cdg
from repro.analysis.proportions import proportion_changes
from repro.analysis.textplot import table
from repro.core.constraints import TimingConstraints
from repro.core.notation import motif_codes_with_nodes
from repro.experiments.base import (
    DELTA_C_INDUCEDNESS,
    RESOLUTION_CDG,
    ExperimentResult,
    fmt_signed,
    load_graphs,
)

EXPERIMENT_ID = "table7"
TITLE = "Table 7: proportion changes of all 3n3e motifs, vanilla → CDG (300s resolution)"

DEFAULT_DATASETS = (
    "calls-copenhagen",
    "sms-copenhagen",
    "college-msg",
    "email",
    "fb-wall",
)


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_c: float = DELTA_C_INDUCEDNESS,
    resolution: float = RESOLUTION_CDG,
    **_ignored,
) -> ExperimentResult:
    """Proportion-change matrix: rows = 32 motif codes, columns = datasets."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    universe = motif_codes_with_nodes(3, 3)
    constraints = TimingConstraints.only_c(delta_c)

    per_dataset: dict[str, dict[str, float]] = {}
    for original in graphs:
        graph = original.degrade_resolution(resolution)
        vanilla = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
        cdg = count_motifs(
            graph,
            3,
            constraints,
            max_nodes=3,
            node_counts={3},
            predicate=satisfies_cdg,
        )
        per_dataset[graph.name] = proportion_changes(vanilla, cdg, universe=universe)

    names = list(per_dataset)
    rows = [
        (code,) + tuple(fmt_signed(per_dataset[name][code]) + "%" for name in names)
        for code in universe
    ]
    text = table(("Motif",) + tuple(names), rows, title=TITLE)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"proportion_changes": per_dataset},
    )
