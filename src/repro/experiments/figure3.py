"""Figure 3 (and appendix Figures 7–8) — event-pair ratios per configuration.

For each dataset, the share of each event-pair type (R, P, I, O, C, W)
among all pairs inside three-event motifs — and optionally four-event
motifs — under only-ΔW vs only-ΔC.

Expected shapes: the repetition share *decreases* from only-ΔW to only-ΔC
in almost all datasets, while which type gains varies by domain (in-bursts
for the Q&A sites, ping-pongs/conveys for calls).
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.counting import run_census
from repro.analysis.proportions import proportions
from repro.analysis.textplot import pie_text
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import ALL_PAIR_TYPES
from repro.experiments.base import (
    DELTA_W_TIMING,
    ExperimentResult,
    load_graphs,
)

EXPERIMENT_ID = "figure3"
TITLE = "Figure 3: ratios of event pairs, only-ΔW vs only-ΔC"

#: Representative datasets of the main-text figure; the appendix runs all.
DEFAULT_DATASETS = ("stackoverflow", "calls-copenhagen")

#: only-ΔC ratios per motif size (below 1/(m−1) so ΔW is redundant).
ONLY_C_RATIO = {3: 0.5, 4: 0.33}


def run(
    datasets: Iterable[str] | None = None,
    *,
    scale: float = 1.0,
    delta_w: float = DELTA_W_TIMING,
    n_events_list: tuple[int, ...] = (3, 4),
    **_ignored,
) -> ExperimentResult:
    """Compute pair-type shares under the two extreme configurations."""
    graphs = load_graphs(datasets, scale=scale, default=DEFAULT_DATASETS)
    sections: list[str] = [TITLE, ""]
    data: dict[str, dict] = {}
    for graph in graphs:
        data[graph.name] = {}
        for n_events in n_events_list:
            per_config: dict[str, dict] = {}
            for label, ratio in (
                ("only-ΔW", 1.0),
                ("only-ΔC", ONLY_C_RATIO[n_events]),
            ):
                census = run_census(
                    graph,
                    n_events,
                    TimingConstraints.from_ratio(delta_w, ratio),
                    max_nodes=min(n_events, 4),
                )
                shares = proportions(
                    {p: census.pair_counts.get(p, 0) for p in ALL_PAIR_TYPES},
                    universe=ALL_PAIR_TYPES,
                )
                per_config[label] = {p.value: share for p, share in shares.items()}
                sections.append(
                    pie_text(
                        {p.value: shares[p] for p in ALL_PAIR_TYPES},
                        title=f"{graph.name} {n_events}e motifs, {label}",
                    )
                )
                sections.append("")
            data[graph.name][f"{n_events}e"] = per_config
    notes = ["paper shape: repetition share decreases from only-ΔW to only-ΔC"]
    sections.extend("note: " + n for n in notes)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text="\n".join(sections),
        data=data,
        notes=notes,
    )
