"""Event prediction from event-pair sequences.

The paper's Discussion names this as intended future work: "We also intend
to utilize the sequence of event pairs for the event prediction."  This
package implements the natural baseline: a Markov model over the
six-letter event-pair alphabet, learned from a temporal network's pair
transitions, that predicts (a) the relation of the next event to the
current one and (b) concrete next-event candidates.
"""

from repro.prediction.pairs import (
    NextEventPrediction,
    PairTransitionModel,
    evaluate_pair_prediction,
    pair_transitions,
)

__all__ = [
    "NextEventPrediction",
    "PairTransitionModel",
    "evaluate_pair_prediction",
    "pair_transitions",
]
