"""A Markov model over event-pair types, for next-event prediction.

Training data: for every event in a temporal network, its relation (one
of the six pair types) to the *next* event sharing a node with it within a
horizon.  The model learns ``P(next pair type | current pair type)`` — the
same transition structure Figure 6 renders as heat maps — plus the
marginal distribution for cold starts.

Prediction: given the latest event, rank the six pair types; each type
maps deterministically to a concrete candidate event shape (e.g. PING_PONG
on event ``(u, v)`` predicts ``(v, u)``), so the model also emits
next-event candidates where the shape pins both endpoints (R, P) or one
endpoint plus a role (I, O, C, W).
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass
from typing import Iterator

from repro.core._optional import import_numpy

np = import_numpy()

from repro.core.eventpairs import ALL_PAIR_TYPES, PairType, classify_pair
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


def pair_transitions(
    graph: TemporalGraph, horizon: float
) -> Iterator[tuple[PairType, PairType]]:
    """Consecutive (pair type, next pair type) observations.

    For each event ``e`` the *successor* is the earliest strictly later
    event within ``horizon`` that shares a node with ``e``; chains of
    successors yield the transition stream.  Events without a successor
    terminate their chain.
    """
    successor: list[int | None] = [None] * len(graph.events)
    for idx, ev in enumerate(graph.events):
        successor[idx] = _next_adjacent(graph, idx, ev, horizon)
    for idx in range(len(graph.events)):
        mid = successor[idx]
        if mid is None:
            continue
        last = successor[mid]
        if last is None:
            continue
        first_type = classify_pair(graph.events[idx].edge, graph.events[mid].edge)
        second_type = classify_pair(graph.events[mid].edge, graph.events[last].edge)
        if first_type is not None and second_type is not None:
            yield first_type, second_type


def _next_adjacent(
    graph: TemporalGraph, idx: int, ev: Event, horizon: float
) -> int | None:
    """Earliest strictly-later event within ``horizon`` sharing a node."""
    t = graph.times[idx]
    best: int | None = None
    best_key: tuple[float, int] | None = None
    for node in (ev.u, ev.v):
        times = graph.node_times[node]
        lo = bisect.bisect_right(times, t)
        hi = bisect.bisect_right(times, t + horizon)
        for pos in range(lo, hi):
            cand = graph.node_events[node][pos]
            key = (graph.times[cand], cand)
            if best_key is None or key < best_key:
                best = cand
                best_key = key
            break  # lists are time-sorted; the first hit per node suffices
    return best


@dataclass(frozen=True)
class NextEventPrediction:
    """One ranked prediction: the pair type and the implied event shape.

    ``source`` / ``target`` are concrete nodes when the type pins them and
    ``None`` where any (new) node fits.
    """

    pair_type: PairType
    probability: float
    source: int | None
    target: int | None


class PairTransitionModel:
    """Laplace-smoothed first-order Markov model over pair types."""

    def __init__(self, *, smoothing: float = 1.0) -> None:
        if smoothing < 0:
            raise ValueError("smoothing must be nonnegative")
        self.smoothing = smoothing
        self._transitions: Counter = Counter()
        self._marginal: Counter = Counter()
        self._trained = False

    # ------------------------------------------------------------------
    def fit(self, graph: TemporalGraph, *, horizon: float) -> "PairTransitionModel":
        """Learn transition counts from one network."""
        for first, second in pair_transitions(graph, horizon):
            self._transitions[(first, second)] += 1
            self._marginal[first] += 1
            self._marginal[second] += 1
        self._trained = True
        return self

    @property
    def n_observations(self) -> int:
        return sum(self._transitions.values())

    def transition_matrix(self) -> np.ndarray:
        """Row-stochastic 6×6 matrix, rows/cols in R,P,I,O,C,W order."""
        matrix = np.full((6, 6), self.smoothing, dtype=float)
        index = {p: i for i, p in enumerate(ALL_PAIR_TYPES)}
        for (first, second), n in self._transitions.items():
            matrix[index[first], index[second]] += n
        rows = matrix.sum(axis=1, keepdims=True)
        return matrix / rows

    def next_type_distribution(self, current: PairType | None) -> dict[PairType, float]:
        """``P(next pair type | current)``; marginal when ``current is None``."""
        if current is None:
            total = sum(self._marginal.values()) + 6 * self.smoothing
            return {
                p: (self._marginal.get(p, 0) + self.smoothing) / total
                for p in ALL_PAIR_TYPES
            }
        index = {p: i for i, p in enumerate(ALL_PAIR_TYPES)}
        row = self.transition_matrix()[index[current]]
        return {p: float(row[index[p]]) for p in ALL_PAIR_TYPES}

    def predict_type(self, current: PairType | None) -> PairType:
        """The most likely next pair type (ties break in R..W order)."""
        dist = self.next_type_distribution(current)
        return max(ALL_PAIR_TYPES, key=lambda p: dist[p])

    # ------------------------------------------------------------------
    def predict_events(
        self, last_event: Event, current: PairType | None = None, *, top: int = 3
    ) -> list[NextEventPrediction]:
        """Ranked concrete next-event shapes after ``last_event``.

        R and P pin both endpoints; O pins the source, I the target, C the
        source (= last target), W the target (= last source).
        """
        dist = self.next_type_distribution(current)
        shapes = {
            PairType.REPETITION: (last_event.u, last_event.v),
            PairType.PING_PONG: (last_event.v, last_event.u),
            PairType.OUT_BURST: (last_event.u, None),
            PairType.IN_BURST: (None, last_event.v),
            PairType.CONVEY: (last_event.v, None),
            PairType.WEAKLY_CONNECTED: (None, last_event.u),
        }
        ranked = sorted(ALL_PAIR_TYPES, key=lambda p: -dist[p])[:top]
        return [
            NextEventPrediction(
                pair_type=p,
                probability=dist[p],
                source=shapes[p][0],
                target=shapes[p][1],
            )
            for p in ranked
        ]


def evaluate_pair_prediction(
    graph: TemporalGraph,
    *,
    horizon: float,
    train_fraction: float = 0.7,
    smoothing: float = 1.0,
) -> dict[str, float]:
    """Temporal train/test evaluation of the transition model.

    The network is split at the ``train_fraction`` quantile of event
    *indices* (a temporal split — no leakage); the model trains on the
    prefix and is scored on the suffix's transitions.

    Returns accuracy of the learned model, of the marginal baseline
    (always predict the globally most common type), and of a uniform
    random guesser (1/6), plus the test transition count.
    """
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    split = int(len(graph.events) * train_fraction)
    train = TemporalGraph(graph.events[:split])
    test = TemporalGraph(graph.events[split:])

    model = PairTransitionModel(smoothing=smoothing).fit(train, horizon=horizon)
    marginal_guess = model.predict_type(None)

    total = 0
    correct = 0
    baseline_correct = 0
    for current, actual in pair_transitions(test, horizon):
        total += 1
        if model.predict_type(current) is actual:
            correct += 1
        if marginal_guess is actual:
            baseline_correct += 1
    if total == 0:
        return {"accuracy": 0.0, "baseline": 0.0, "random": 1 / 6, "n_test": 0}
    return {
        "accuracy": correct / total,
        "baseline": baseline_correct / total,
        "random": 1 / 6,
        "n_test": total,
    }
