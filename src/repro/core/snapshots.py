"""Snapshot-sequence representation of a temporal network.

Several pre-Kovanen approaches the survey covers (trend motifs, activity
motifs, Sarkar et al.'s microblog snapshots) — and the *constrained
dynamic graphlet* rationale itself — operate on a snapshot sequence: the
timeline is cut into fixed-width bins and each bin becomes a static graph.
Section 5.1.2 degrades datasets to 300 s resolution precisely to emulate
this representation before evaluating CDGs.

This module makes the representation first-class: cutting
(:func:`snapshot_sequence`), per-snapshot static summaries, and the
edge-persistence statistic that motivates filtering "stale" repeated
edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class Snapshot:
    """One time bin of a temporal network, as a static multigraph."""

    index: int
    t_start: float
    t_end: float
    #: distinct directed edges active in the bin
    edges: frozenset[tuple[int, int]]
    #: number of events in the bin (≥ len(edges))
    n_events: int

    @property
    def nodes(self) -> set[int]:
        out: set[int] = set()
        for u, v in self.edges:
            out.add(u)
            out.add(v)
        return out


def snapshot_sequence(graph: TemporalGraph, width: float) -> list[Snapshot]:
    """Cut the timeline into consecutive bins of ``width`` seconds.

    Bins are aligned to the first event's time; empty bins are kept so the
    sequence is contiguous (persistence statistics need them).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if not graph.events:
        return []
    t0 = graph.times[0]
    n_bins = int(math.floor((graph.times[-1] - t0) / width)) + 1
    edges_per_bin: list[set[tuple[int, int]]] = [set() for _ in range(n_bins)]
    events_per_bin = [0] * n_bins
    for ev in graph.events:
        bin_idx = int((ev.t - t0) // width)
        edges_per_bin[bin_idx].add(ev.edge)
        events_per_bin[bin_idx] += 1
    return [
        Snapshot(
            index=i,
            t_start=t0 + i * width,
            t_end=t0 + (i + 1) * width,
            edges=frozenset(edges_per_bin[i]),
            n_events=events_per_bin[i],
        )
        for i in range(n_bins)
    ]


def iter_active_snapshots(
    graph: TemporalGraph, width: float
) -> Iterator[Snapshot]:
    """Only the non-empty snapshots, in order."""
    for snap in snapshot_sequence(graph, width):
        if snap.n_events:
            yield snap


def edge_persistence(graph: TemporalGraph, width: float) -> float:
    """Average fraction of a snapshot's edges already present in the previous one.

    High persistence means consecutive snapshots repeat the same edges —
    exactly the "stale information" that constrained dynamic graphlets
    filter (Section 4.1).  Returns 0.0 with fewer than two active
    snapshots.
    """
    snaps = [s for s in snapshot_sequence(graph, width) if s.n_events]
    if len(snaps) < 2:
        return 0.0
    fractions = []
    for prev, curr in zip(snaps, snaps[1:]):
        if not curr.edges:
            continue
        repeated = len(curr.edges & prev.edges)
        fractions.append(repeated / len(curr.edges))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def snapshot_activity_profile(graph: TemporalGraph, width: float) -> list[int]:
    """Events per bin — the coarse activity rhythm snapshot shuffles keep."""
    return [snap.n_events for snap in snapshot_sequence(graph, width)]


def resolution_collision_rate(graph: TemporalGraph, resolution: float) -> float:
    """Fraction of events that lose their unique timestamp at a resolution.

    Quantifies the Table-4 preamble ("degrading the resolution affects
    message networks most"): the higher this rate, the more total-order
    motifs vanish because same-bin events cannot share a motif.
    """
    if not graph.events:
        return 0.0
    degraded = graph.degrade_resolution(resolution)
    return 1.0 - degraded.unique_timestamp_fraction()
