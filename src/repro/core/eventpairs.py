"""The event-pair lens (Section 5, "A new lens: Event pairs").

Given two chronologically ordered events that share at least one node,
``(u1, v1, t1)`` and ``(u2, v2, t2)``, the paper defines six pair types:

* **R** — repetition: same edge, ``u1 = u2`` and ``v1 = v2``;
* **P** — ping-pong: second reverses the first, ``u1 = v2`` and ``v1 = u2``;
* **I** — in-burst: same target, different sources;
* **O** — out-burst: same source, different targets;
* **C** — convey: source of the second is the target of the first;
* **W** — weakly-connected: target of the second is the source of the first.

A motif with ``m`` events maps to a sequence of ``m − 1`` event pairs.  The
map is a bijection onto motif codes when the motif has at most three nodes
(6² = 36 three-event, 6³ = 216 four-event motifs); for four-node motifs it
is only a broad description and some consecutive events may share no node
(classified here as ``None`` / disjoint).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

from repro.core.notation import canonical_code, parse_code


class PairType(str, Enum):
    """The six-letter alphabet of event pairs."""

    REPETITION = "R"
    PING_PONG = "P"
    IN_BURST = "I"
    OUT_BURST = "O"
    CONVEY = "C"
    WEAKLY_CONNECTED = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def description(self) -> str:
        """Short textual definition, as in Figure 2 (right)."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    PairType.REPETITION: "two events occur on the same edge",
    PairType.PING_PONG: "second event is the reverse of the first",
    PairType.IN_BURST: "two events share the same target",
    PairType.OUT_BURST: "two events share the same source",
    PairType.CONVEY: "source of the second event is the target of the first",
    PairType.WEAKLY_CONNECTED: "target of the second event is the source of the first",
}

#: All six types in the paper's presentation order.
ALL_PAIR_TYPES: tuple[PairType, ...] = (
    PairType.REPETITION,
    PairType.PING_PONG,
    PairType.IN_BURST,
    PairType.OUT_BURST,
    PairType.CONVEY,
    PairType.WEAKLY_CONNECTED,
)

#: The "bursty/local" group and the "transfer" group used in Table 5.
RPIO_GROUP: frozenset[PairType] = frozenset(
    {PairType.REPETITION, PairType.PING_PONG, PairType.IN_BURST, PairType.OUT_BURST}
)
CW_GROUP: frozenset[PairType] = frozenset(
    {PairType.CONVEY, PairType.WEAKLY_CONNECTED}
)


def classify_pair(first: tuple[int, int], second: tuple[int, int]) -> PairType | None:
    """Classify an ordered pair of events given as ``(source, target)`` pairs.

    Returns ``None`` when the two events share no node (possible only inside
    four-or-more-node motifs).  Events must not be self-loops.

    The six cases are mutually exclusive for loop-free events: checking the
    two-node-sharing cases (R, P) first leaves the four one-node-sharing
    cases unambiguous.
    """
    u1, v1 = first
    u2, v2 = second
    if u1 == v1 or u2 == v2:
        raise ValueError("event pairs are undefined for self-loop events")
    if u1 == u2 and v1 == v2:
        return PairType.REPETITION
    if u1 == v2 and v1 == u2:
        return PairType.PING_PONG
    if v1 == v2:
        return PairType.IN_BURST
    if u1 == u2:
        return PairType.OUT_BURST
    if v1 == u2:
        return PairType.CONVEY
    if u1 == v2:
        return PairType.WEAKLY_CONNECTED
    return None


def pair_sequence_of_code(code: str) -> tuple[PairType | None, ...]:
    """The ``m − 1`` event-pair types of a motif code, in order.

    Entries are ``None`` where consecutive events share no node (only
    possible in ≥4-node motifs).
    """
    pairs = parse_code(code)
    return tuple(
        classify_pair(pairs[i], pairs[i + 1]) for i in range(len(pairs) - 1)
    )


def code_of_pair_sequence(sequence: Sequence[PairType]) -> str:
    """The unique ≤3-node motif code realizing an event-pair sequence.

    This is the inverse direction of the bijection: every sequence over the
    six-letter alphabet is realized by exactly one motif on at most three
    nodes (new nodes are introduced only when the pair type forces a node
    outside the current event's endpoints).
    """
    events: list[tuple[int, int]] = [(0, 1)]
    nodes: list[int] = [0, 1]
    for ptype in sequence:
        a, b = events[-1]
        if ptype is PairType.REPETITION:
            nxt = (a, b)
        elif ptype is PairType.PING_PONG:
            nxt = (b, a)
        else:
            other = _third_node(nodes, a, b)
            if ptype is PairType.IN_BURST:
                nxt = (other, b)
            elif ptype is PairType.OUT_BURST:
                nxt = (a, other)
            elif ptype is PairType.CONVEY:
                nxt = (b, other)
            elif ptype is PairType.WEAKLY_CONNECTED:
                nxt = (other, a)
            else:  # pragma: no cover - exhaustive over the enum
                raise ValueError(f"unknown pair type {ptype!r}")
            if other == len(nodes):
                nodes.append(other)
        events.append(nxt)
    return canonical_code(events)


def _third_node(nodes: list[int], a: int, b: int) -> int:
    """The unique node outside ``{a, b}`` in a ≤3-node construction.

    With two nodes in play this introduces node 2; with three it returns
    the existing third node, keeping the construction on three nodes.
    """
    if len(nodes) == 2:
        return 2
    for node in nodes:
        if node != a and node != b:
            return node
    raise AssertionError("three-node invariant violated")  # pragma: no cover


def pair_sequence_of_events(events: Iterable) -> tuple[PairType | None, ...]:
    """Event-pair types of a chronologically ordered event sequence.

    Accepts :class:`repro.core.events.Event` records or ``(u, v, t)``
    tuples.
    """
    pairs = [(ev[0], ev[1]) for ev in events]
    return tuple(
        classify_pair(pairs[i], pairs[i + 1]) for i in range(len(pairs) - 1)
    )


def is_exactly_representable(code: str) -> bool:
    """True when the pair sequence determines the motif exactly (≤3 nodes)."""
    return len({d for d in code}) <= 3
