"""Timing constraints ΔC and ΔW (Section 4.5).

Two flavours of temporal connectedness appear across the four models:

* **ΔC** (Kovanen, Hulovatyy): every pair of *consecutive* events in the
  motif must be at most ΔC apart — emphasizes temporal correlation between
  adjacent events but only bounds the whole motif loosely by ``(m−1)·ΔC``.
* **ΔW** (Song, Paranjape): the whole motif — last event minus first — must
  fit in a window of length ΔW; holistic but blind to consecutive gaps.

Given a motif with ``m`` events, Section 4.5 classifies which constraints
are *active*:

* ``ΔC/ΔW ≤ 1/(m−1)`` — ΔW is implied by ΔC (**only-ΔC** regime),
* ``ΔC/ΔW ≥ 1``       — ΔC is implied by ΔW (**only-ΔW** regime),
* otherwise both constraints prune instances (**both** regime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Sequence


class ConstraintRegime(Enum):
    """Which of the two constraints actually binds, per Section 4.5."""

    ONLY_DELTA_C = "only-ΔC"
    BOTH = "ΔW-and-ΔC"
    ONLY_DELTA_W = "only-ΔW"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TimingConstraints:
    """A ΔC / ΔW configuration.

    Either bound may be ``None`` (unconstrained).  Time differences are
    compared inclusively (``gap <= delta``), matching the paper's examples
    (Figure 1 treats a gap exactly equal to the threshold as valid).
    """

    delta_c: float | None = None
    delta_w: float | None = None

    def __post_init__(self) -> None:
        if self.delta_c is not None and self.delta_c <= 0:
            raise ValueError("delta_c must be positive (or None)")
        if self.delta_w is not None and self.delta_w <= 0:
            raise ValueError("delta_w must be positive (or None)")

    # ------------------------------------------------------------------
    # constructors for the paper's experiment configurations
    # ------------------------------------------------------------------
    @classmethod
    def only_c(cls, delta_c: float) -> "TimingConstraints":
        """ΔC alone (Kovanen / Hulovatyy style)."""
        return cls(delta_c=delta_c, delta_w=None)

    @classmethod
    def only_w(cls, delta_w: float) -> "TimingConstraints":
        """ΔW alone (Song / Paranjape style)."""
        return cls(delta_c=None, delta_w=delta_w)

    @classmethod
    def from_ratio(cls, delta_w: float, ratio: float) -> "TimingConstraints":
        """The paper's sweep parameterization: fix ΔW, set ΔC = ratio·ΔW.

        Section 5.2 uses ΔW = 3000 s and ratios {0.5, 0.66, 1.0} for
        three-event motifs and {0.33, 0.5, 0.66, 1.0} for four-event motifs.
        """
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        return cls(delta_c=ratio * delta_w, delta_w=delta_w)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def admits(self, times: Sequence[float]) -> bool:
        """Whether a chronologically sorted timestamp sequence satisfies both bounds."""
        if len(times) <= 1:
            return True
        if self.delta_w is not None and times[-1] - times[0] > self.delta_w:
            return False
        if self.delta_c is not None:
            for a, b in zip(times, times[1:]):
                if b - a > self.delta_c:
                    return False
        return True

    def next_event_deadline(self, t_first: float, t_last: float) -> float:
        """Latest admissible timestamp for the next event of a growing motif.

        Used by the enumeration engine to prune candidate events with a
        single bisect instead of filtering.
        """
        bound = math.inf
        if self.delta_c is not None:
            bound = t_last + self.delta_c
        if self.delta_w is not None:
            bound = min(bound, t_first + self.delta_w)
        return bound

    def loose_timespan_bound(self, n_events: int) -> float:
        """Upper bound on the motif timespan implied by the configuration.

        Only-ΔC configurations bound the span loosely by ``(m−1)·ΔC``
        (Section 4.5); ΔW bounds it directly.
        """
        bound = math.inf
        if self.delta_c is not None:
            bound = self.delta_c * (n_events - 1)
        if self.delta_w is not None:
            bound = min(bound, self.delta_w)
        return bound

    # ------------------------------------------------------------------
    # regime classification (Section 4.5)
    # ------------------------------------------------------------------
    def regime(self, n_events: int) -> ConstraintRegime:
        """Which constraint is active for ``n_events``-event motifs.

        When only one bound is set, the answer is that bound's regime.
        With both set, apply the Section 4.5 ratio rule.
        """
        if n_events < 2:
            raise ValueError("regimes are defined for motifs with >= 2 events")
        if self.delta_c is None and self.delta_w is None:
            raise ValueError("at least one of delta_c / delta_w must be set")
        if self.delta_w is None:
            return ConstraintRegime.ONLY_DELTA_C
        if self.delta_c is None:
            return ConstraintRegime.ONLY_DELTA_W
        ratio = self.delta_c / self.delta_w
        if ratio <= 1 / (n_events - 1):
            return ConstraintRegime.ONLY_DELTA_C
        if ratio >= 1:
            return ConstraintRegime.ONLY_DELTA_W
        return ConstraintRegime.BOTH

    def is_tighter_than(self, other: "TimingConstraints") -> bool:
        """True when every sequence admitted by ``self`` is admitted by ``other``.

        A ``None`` bound counts as +∞.  This is the subset/monotonicity
        relation the paper leans on ("the set of motifs observed under a
        smaller ΔC/ΔW ratio is a subset of a larger ΔC/ΔW configuration").
        """
        mine_c = math.inf if self.delta_c is None else self.delta_c
        theirs_c = math.inf if other.delta_c is None else other.delta_c
        mine_w = math.inf if self.delta_w is None else self.delta_w
        theirs_w = math.inf if other.delta_w is None else other.delta_w
        return mine_c <= theirs_c and mine_w <= theirs_w

    def describe(self, n_events: int | None = None) -> str:
        """One-line description, optionally with the regime for ``n_events``."""
        parts = []
        if self.delta_c is not None:
            parts.append(f"ΔC={self.delta_c:g}s")
        if self.delta_w is not None:
            parts.append(f"ΔW={self.delta_w:g}s")
        text = ", ".join(parts) if parts else "unconstrained"
        if n_events is not None and (self.delta_c or self.delta_w):
            text += f" [{self.regime(n_events)} for {n_events}-event motifs]"
        return text
