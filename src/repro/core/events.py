"""Event record types for temporal networks.

Following Section 2 of the paper, a temporal network ``G(V, E)`` is a set of
nodes ``V`` and a time-ordered list of events ``E``.  Each event is a 4-tuple
``(u, v, t, dt)`` — source node, target node, start time, duration.  Because
inter-event times dominate durations in practically all of the paper's
datasets, the paper (and this library's default path) uses the 3-tuple form
``(u, v, t)``; the durative form is kept for the Hulovatyy model, which is
the one model that incorporates durations (Section 4.2).

Events compare by ``(t, index-of-insertion)`` once inside a
:class:`repro.core.temporal_graph.TemporalGraph`; as free-standing records
they compare lexicographically ``(t, u, v)`` so sorted event lists are
deterministic.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple


class Event(NamedTuple):
    """A temporal edge ``(u, v, t)``: ``u`` contacts ``v`` at time ``t``.

    ``u`` and ``v`` are hashable node identifiers (typically ``int``);
    ``t`` is a number (seconds in all paper datasets, resolution 1 s).
    """

    u: int
    v: int
    t: float

    @property
    def edge(self) -> tuple[int, int]:
        """The static projection ``(u, v)`` of this event."""
        return (self.u, self.v)

    @property
    def nodes(self) -> tuple[int, int]:
        """Both endpoints, source first."""
        return (self.u, self.v)

    def reversed(self) -> "Event":
        """The same contact with source and target swapped."""
        return Event(self.v, self.u, self.t)

    def shifted(self, delta: float) -> "Event":
        """A copy of this event translated in time by ``delta``."""
        return Event(self.u, self.v, self.t + delta)

    def is_loop(self) -> bool:
        """True when source equals target (self-loop)."""
        return self.u == self.v


class DurativeEvent(NamedTuple):
    """A temporal edge with a duration, the full 4-tuple of Section 2.

    The Hulovatyy model measures temporal adjacency from the *end* of the
    earlier event to the *start* of the later one; :attr:`end` exists for
    that computation.
    """

    u: int
    v: int
    t: float
    duration: float

    @property
    def edge(self) -> tuple[int, int]:
        """The static projection ``(u, v)`` of this event."""
        return (self.u, self.v)

    @property
    def end(self) -> float:
        """The time at which this event finishes, ``t + duration``."""
        return self.t + self.duration

    def without_duration(self) -> Event:
        """Drop the duration, yielding the 3-tuple convention."""
        return Event(self.u, self.v, self.t)


def validate_events(events: Iterable[Event], *, allow_loops: bool = False) -> list[Event]:
    """Validate and normalize an iterable of events into a sorted list.

    Events are sorted by ``(t, u, v)``.  Raises :class:`ValueError` on
    negative timestamps or (by default) self-loops, since none of the four
    motif models in the paper admits self-loops.

    Parameters
    ----------
    events:
        Any iterable of :class:`Event` or plain 3-tuples.
    allow_loops:
        Permit ``u == v`` events (disabled by default).
    """
    out: list[Event] = []
    for raw in events:
        ev = raw if isinstance(raw, Event) else Event(*raw)
        if ev.t < 0:
            raise ValueError(f"event {ev} has a negative timestamp")
        if ev.is_loop() and not allow_loops:
            raise ValueError(f"event {ev} is a self-loop; motif models exclude loops")
        out.append(ev)
    out.sort(key=lambda e: (e.t, e.u, e.v))
    return out


def interevent_times(events: list[Event]) -> list[float]:
    """Time gaps between consecutive events of a time-sorted event list.

    This is the quantity whose median appears in Table 2 (column m(Δt));
    it guides the choice of ΔC / ΔW per dataset.
    """
    return [b.t - a.t for a, b in zip(events, events[1:])]


def strip_durations(events: Iterable[DurativeEvent]) -> list[Event]:
    """Project durative events to the instantaneous 3-tuple convention."""
    return [ev.without_duration() for ev in events]
