"""Pattern-level motif objects and node orbits.

While the counting APIs aggregate over *all* motif codes, applications
often care about one specific pattern ("count the ask-reply motif 010210")
or about a *node's role* inside motifs.  This module provides both:

* :class:`Motif` — a first-class wrapper around a motif code with
  structural accessors and instance matching,
* node **orbits** — the position digit a node occupies inside an instance.
  Hulovatyy et al. build per-node *dynamic graphlet degree vectors* from
  exactly this information and use them to predict aging-related genes;
  :func:`node_motif_profiles` computes the analogous vectors here.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Mapping, Sequence

from repro.algorithms.counting import Predicate
from repro.algorithms.enumeration import enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import PairType, pair_sequence_of_code
from repro.core.notation import (
    canonical_code,
    code_edges,
    is_valid_code,
    node_count_of_code,
    parse_code,
)
from repro.core.temporal_graph import TemporalGraph


class Motif:
    """A temporal motif pattern, identified by its canonical code.

    >>> m = Motif("010210")
    >>> m.n_events, m.n_nodes
    (3, 3)
    >>> [str(p) for p in m.pair_sequence]
    ['O', 'P']
    """

    def __init__(self, code: str) -> None:
        if not is_valid_code(code):
            raise ValueError(f"{code!r} is not a canonical single-component motif code")
        self.code = code
        self._pairs = parse_code(code)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Motif({self.code!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Motif) and other.code == self.code

    def __hash__(self) -> int:
        return hash(("Motif", self.code))

    @property
    def n_events(self) -> int:
        return len(self._pairs)

    @property
    def n_nodes(self) -> int:
        return node_count_of_code(self.code)

    @property
    def events(self) -> list[tuple[int, int]]:
        """The ``(source, target)`` digit pairs, chronological."""
        return list(self._pairs)

    @property
    def edges(self) -> set[tuple[int, int]]:
        """Distinct static edges of the pattern."""
        return code_edges(self.code)

    @property
    def pair_sequence(self) -> tuple[PairType | None, ...]:
        """The event-pair sequence (Figure 2's six-letter description)."""
        return pair_sequence_of_code(self.code)

    def is_two_node_conversation(self) -> bool:
        """True when every pair is a repetition or ping-pong (2 nodes)."""
        return all(
            p in (PairType.REPETITION, PairType.PING_PONG)
            for p in self.pair_sequence
        )

    def is_transfer_chain(self) -> bool:
        """True when every pair is a convey or weakly-connected."""
        return all(
            p in (PairType.CONVEY, PairType.WEAKLY_CONNECTED)
            for p in self.pair_sequence
        )

    def reciprocated(self) -> bool:
        """True when the last event reverses the first — the ask-reply
        signature that Table 3's amplified motifs share."""
        first = self._pairs[0]
        last = self._pairs[-1]
        return first == (last[1], last[0])

    # ------------------------------------------------------------------
    def matches(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        """Whether an instance's canonical code equals this pattern."""
        return (
            canonical_code([graph.events[i].edge for i in instance]) == self.code
        )

    def instances(
        self,
        graph: TemporalGraph,
        constraints: TimingConstraints,
        *,
        predicate: Predicate | None = None,
    ) -> Iterable[tuple[int, ...]]:
        """All instances of this pattern in ``graph``."""
        for inst in enumerate_instances(
            graph,
            self.n_events,
            constraints,
            max_nodes=self.n_nodes,
            predicate=predicate,
        ):
            if self.matches(graph, inst):
                yield inst

    def count(
        self,
        graph: TemporalGraph,
        constraints: TimingConstraints,
        *,
        predicate: Predicate | None = None,
    ) -> int:
        """Number of instances of this pattern."""
        return sum(1 for _ in self.instances(graph, constraints, predicate=predicate))


# ----------------------------------------------------------------------
# node orbits
# ----------------------------------------------------------------------
def instance_orbits(graph: TemporalGraph, instance: Sequence[int]) -> dict[int, int]:
    """Map each node of an instance to its orbit (digit in the code).

    The orbit of a node is the digit it carries in the canonical code —
    orbit 0 is the initiator, orbit 1 the first target, etc.  Two nodes of
    an instance never share an orbit.
    """
    mapping: dict[int, int] = {}
    for idx in instance:
        ev = graph.events[idx]
        for node in (ev.u, ev.v):
            if node not in mapping:
                mapping[node] = len(mapping)
    return mapping


def node_motif_profiles(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
) -> dict[int, Counter]:
    """Per-node (code, orbit) participation counts.

    Returns ``node -> Counter{(code, orbit): count}`` — the temporal
    analogue of graphlet degree vectors.  Hulovatyy et al. feed these
    vectors to a classifier to find aging-related genes; downstream users
    can featurize nodes the same way (see ``examples/node_roles.py``).
    """
    profiles: dict[int, Counter] = defaultdict(Counter)
    for inst in enumerate_instances(
        graph, n_events, constraints, max_nodes=max_nodes, predicate=predicate
    ):
        code = canonical_code([graph.events[i].edge for i in inst])
        for node, orbit in instance_orbits(graph, inst).items():
            profiles[node][(code, orbit)] += 1
    return dict(profiles)


def profile_vector(
    profile: Mapping[tuple[str, int], int],
    feature_index: Sequence[tuple[str, int]],
) -> list[int]:
    """Project a profile counter onto a fixed feature order (for ML use)."""
    return [profile.get(feature, 0) for feature in feature_index]


def all_orbit_features(n_events: int, max_nodes: int) -> list[tuple[str, int]]:
    """The full (code, orbit) feature index for a motif family."""
    from repro.core.notation import all_motif_codes

    features: list[tuple[str, int]] = []
    for code in all_motif_codes(n_events, max_nodes):
        for orbit in range(node_count_of_code(code)):
            features.append((code, orbit))
    return features
