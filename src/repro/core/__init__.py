"""Core data structures for temporal network motif analysis.

This subpackage holds the substrate every model and experiment builds on:

* :mod:`repro.core.events` — the event (temporal edge) record types,
* :mod:`repro.core.temporal_graph` — the indexed temporal graph,
* :mod:`repro.core.notation` — the paper's 2n-digit motif notation,
* :mod:`repro.core.eventpairs` — the six-letter event-pair alphabet,
* :mod:`repro.core.constraints` — the ΔC / ΔW timing constraints.
"""

from repro.core.constraints import ConstraintRegime, TimingConstraints
from repro.core.eventpairs import PairType, classify_pair, pair_sequence_of_code
from repro.core.events import Event, DurativeEvent
from repro.core.notation import (
    all_motif_codes,
    canonical_code,
    code_edges,
    node_count_of_code,
)
from repro.core.temporal_graph import TemporalGraph

__all__ = [
    "ConstraintRegime",
    "DurativeEvent",
    "Event",
    "PairType",
    "TemporalGraph",
    "TimingConstraints",
    "all_motif_codes",
    "canonical_code",
    "classify_pair",
    "code_edges",
    "node_count_of_code",
    "pair_sequence_of_code",
]
