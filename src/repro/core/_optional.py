"""Optional-dependency shims.

NumPy is an optional accelerator for this library: the core motif models
and the pure-Python storage backends run without it, while dataset
generation, the shuffle null models, the statistics helpers, and the
``"numpy"`` storage backend need the real package.  Modules in the second
group import through :func:`import_numpy`, which keeps *module import*
dependency-free and defers a clear, actionable error to the first actual
use — so ``import repro`` always works and the no-NumPy CI leg can run
everything that does not genuinely need the accelerator.
"""

from __future__ import annotations


class MissingNumpy:
    """Placeholder whose every attribute access explains what to install."""

    def __bool__(self) -> bool:
        return False

    def __getattr__(self, name: str):
        raise ModuleNotFoundError(
            "this feature requires NumPy, which is not installed; "
            "install it with: pip install 'repro-temporal-motifs[numpy]'"
        )


def import_numpy():
    """The ``numpy`` module, or a :class:`MissingNumpy` stand-in.

    The stand-in is falsy, so ``if not np: ...`` detects absence without
    triggering the explanatory error.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised on the no-numpy leg
        return MissingNumpy()
    return numpy
