"""Colored temporal motifs (Kovanen et al. 2013 extension).

The survey's related work covers Kovanen et al.'s follow-up, which adapts
the temporal motif model to *colored* networks — node colors are
categorical attributes (sex, age group, subscription type in their CDR
study) and a colored motif is a motif code plus the color of each orbit.
Two instances are the same colored motif iff their codes match **and**
corresponding orbits carry the same colors.

A colored code is rendered ``<code>|<color0>,<color1>,...`` with colors in
orbit order, e.g. ``0110|F,M`` — a ping-pong between a female and a male
node.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Mapping, Sequence

from repro.algorithms.counting import Predicate
from repro.algorithms.enumeration import enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.motif import instance_orbits
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph

Coloring = Mapping[int, object] | Callable[[int], object]


def _color_of(coloring: Coloring, node: int) -> object:
    if callable(coloring):
        return coloring(node)
    return coloring[node]


def colored_code(
    graph: TemporalGraph, instance: Sequence[int], coloring: Coloring
) -> str:
    """The colored canonical code of an instance.

    Raises :class:`KeyError` when a mapping coloring lacks a node — silent
    color defaults would corrupt cross-dataset comparisons.
    """
    code = canonical_code([graph.events[i].edge for i in instance])
    orbits = instance_orbits(graph, instance)
    by_orbit = sorted(orbits.items(), key=lambda kv: kv[1])
    colors = ",".join(str(_color_of(coloring, node)) for node, _orbit in by_orbit)
    return f"{code}|{colors}"


def parse_colored_code(colored: str) -> tuple[str, tuple[str, ...]]:
    """Split a colored code into ``(code, colors-by-orbit)``."""
    code, sep, colors = colored.partition("|")
    if not sep:
        raise ValueError(f"{colored!r} has no color part")
    return code, tuple(colors.split(","))


def count_colored_motifs(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    coloring: Coloring,
    *,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
) -> Counter:
    """Count instances per colored code."""
    counts: Counter = Counter()
    for inst in enumerate_instances(
        graph, n_events, constraints, max_nodes=max_nodes, predicate=predicate
    ):
        counts[colored_code(graph, inst, coloring)] += 1
    return counts


def color_assortativity(
    counts: Mapping[str, int], *, code_filter: str | None = None
) -> float:
    """Fraction of (colored) motif instances whose orbits are monochrome.

    Kovanen et al.'s headline finding is homophily: same-attribute motifs
    are overrepresented.  This statistic is the direct probe — compare it
    against a color-shuffled null to test for homophily.

    Parameters
    ----------
    code_filter:
        Restrict to one structural code (e.g. ``"0110"``); ``None`` pools
        everything.  Returns 0.0 when nothing matches.
    """
    total = 0
    monochrome = 0
    for colored, n in counts.items():
        code, colors = parse_colored_code(colored)
        if code_filter is not None and code != code_filter:
            continue
        total += n
        if len(set(colors)) == 1:
            monochrome += n
    if total == 0:
        return 0.0
    return monochrome / total


def group_by_structure(counts: Mapping[str, int]) -> dict[str, Counter]:
    """Regroup colored counts by their structural code.

    ``{code: Counter{color-tuple-string: count}}`` — the view Kovanen et
    al. plot per motif shape.
    """
    grouped: dict[str, Counter] = {}
    for colored, n in counts.items():
        code, colors = parse_colored_code(colored)
        grouped.setdefault(code, Counter())[",".join(colors)] += n
    return grouped


def shuffle_colors(
    coloring: Mapping[int, object],
    seed: int | None = None,
) -> dict[int, object]:
    """A color-shuffled null: reassign the color multiset uniformly.

    The standard reference model for homophily tests — structure and the
    color frequency distribution are preserved; the node-color alignment
    is destroyed.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    nodes = list(coloring)
    colors = [coloring[n] for n in nodes]
    rng.shuffle(colors)
    return dict(zip(nodes, colors))


def homophily_gap(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    coloring: Mapping[int, object],
    *,
    max_nodes: int | None = None,
    n_null: int = 5,
    seed: int | None = None,
) -> tuple[float, float]:
    """Observed vs null-mean monochrome fraction.

    Returns ``(observed, null_mean)``; observed ≫ null_mean indicates
    homophily in motif participation (Kovanen et al. 2013's finding on
    call records).
    """
    observed = color_assortativity(
        count_colored_motifs(
            graph, n_events, constraints, coloring, max_nodes=max_nodes
        )
    )
    null_values = []
    for k in range(n_null):
        null_coloring = shuffle_colors(
            coloring, seed=None if seed is None else seed + k
        )
        null_values.append(
            color_assortativity(
                count_colored_motifs(
                    graph,
                    n_events,
                    constraints,
                    null_coloring,
                    max_nodes=max_nodes,
                )
            )
        )
    return observed, sum(null_values) / len(null_values)
