"""Indexed temporal graph: the substrate for all motif enumeration.

The :class:`TemporalGraph` is a facade over a pluggable storage engine
(:mod:`repro.storage`).  The engine owns the time-sorted event list and the
three index families the enumeration engine and the model restrictions
depend on:

* per-node adjacency: for each node, the time-sorted list of indices of
  events that touch it (used for connected-growth candidate generation and
  the Kovanen consecutive-events restriction),
* per-edge occurrences: for each directed static edge ``(u, v)``, the
  time-sorted list of event indices on that edge (used for the constrained
  dynamic graphlet restriction),
* the static projection (used for static inducedness checks).

Three backends ship with the library: ``"list"`` (the original plain-list
indices — the default), ``"columnar"`` (flat ``array`` columns with CSR
offsets — cheaper to build, lighter in memory), and ``"numpy"``
(contiguous ``ndarray`` columns with vectorized ``searchsorted`` window
kernels and memory-mapped persistence via :meth:`TemporalGraph.save` /
:meth:`TemporalGraph.load`).  Select one per graph with ``backend=...`` or
globally via the ``REPRO_STORAGE`` environment variable; every backend
answers every query identically, which the parity test-suite enforces.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.events import Event, interevent_times, validate_events
from repro.storage import GraphStorage, get_backend


class TemporalGraph:
    """A directed temporal network with time-sorted, indexed events.

    Parameters
    ----------
    events:
        Iterable of :class:`Event` (or 3-tuples).  They are validated,
        sorted by ``(t, u, v)``, and handed to the storage engine.
    name:
        Optional label used by dataset registry and experiment reports.
    backend:
        Storage engine name (``"list"``, ``"columnar"``, or any name
        registered with :func:`repro.storage.register_backend`).  ``None``
        defers to the ``REPRO_STORAGE`` environment variable, then the
        library default.  Transformations (:meth:`slice`, :meth:`head`,
        ...) propagate the parent graph's backend.

    Notes
    -----
    Event *indices* (positions in :attr:`events`) are the universal handle
    throughout the library: enumerators yield tuples of indices, restriction
    checkers take tuples of indices, and counters convert indices to motif
    codes.  Indices are stable because events only ever change through
    :meth:`append`/:meth:`extend`, which admit strictly end-of-stream
    events.
    """

    def __init__(
        self,
        events: Iterable[Event],
        *,
        name: str = "",
        backend: str | None = None,
    ) -> None:
        cls = get_backend(backend)
        self._storage: GraphStorage = cls.from_events(
            validate_events(events), presorted=True
        )
        self.name = name

    @classmethod
    def _from_storage(cls, storage: GraphStorage, *, name: str = "") -> "TemporalGraph":
        """Wrap an existing storage engine without re-validating its events."""
        graph = cls.__new__(cls)
        graph._storage = storage
        graph.name = name
        return graph

    # ------------------------------------------------------------------
    # storage facade
    # ------------------------------------------------------------------
    @property
    def storage(self) -> GraphStorage:
        """The storage engine answering this graph's index queries."""
        return self._storage

    @property
    def backend(self) -> str:
        """Name of the storage backend serving this graph."""
        return self._storage.backend_name

    @property
    def events(self) -> tuple[Event, ...]:
        """Time-sorted events; position in this tuple is the event index."""
        return self._storage.events

    @property
    def times(self) -> list[float]:
        """Timestamps parallel to :attr:`events` (bisect keys)."""
        return self._storage.times

    def to_events(self) -> tuple[Event, ...]:
        """The graph's events as an immutable time-sorted tuple.

        The round-trip ``TemporalGraph(g.to_events())`` rebuilds an
        identical graph (same indices, same index-mapping iteration
        order), which is how parallel workers obtain their own copy.
        """
        return self._storage.to_events()

    @property
    def node_events(self) -> Mapping[int, list[int]]:
        """node -> time-sorted event indices touching the node."""
        return self._storage.node_events

    @property
    def node_times(self) -> Mapping[int, list[float]]:
        """node -> timestamps parallel to :attr:`node_events` (bisect keys)."""
        return self._storage.node_times

    @property
    def edge_events(self) -> Mapping[tuple[int, int], list[int]]:
        """directed edge -> time-sorted event indices on that edge."""
        return self._storage.edge_events

    @property
    def edge_times(self) -> Mapping[tuple[int, int], list[float]]:
        """directed edge -> timestamps parallel to :attr:`edge_events`."""
        return self._storage.edge_times

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._storage)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TemporalGraph{label}: {self.num_nodes} nodes, "
            f"{len(self)} events, {self.num_edges} edges>"
        )

    @property
    def nodes(self) -> set[int]:
        """The set of nodes appearing in at least one event."""
        return self._storage.nodes

    @property
    def num_nodes(self) -> int:
        return self._storage.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of distinct directed static edges."""
        return self._storage.num_edges

    @property
    def timespan(self) -> float:
        """Time difference between the last and first events (0 if empty)."""
        start = self._storage.start_time
        if start is None:
            return 0.0
        return self._storage.end_time - start

    # ------------------------------------------------------------------
    # static projection
    # ------------------------------------------------------------------
    def static_edges(self) -> set[tuple[int, int]]:
        """All distinct directed edges of the static projection."""
        return set(self.edge_events)

    def static_neighbors(self, node: int) -> set[int]:
        """Nodes adjacent to ``node`` in the (directed) static projection."""
        return self._storage.neighbors(node)

    def induced_static_edges(self, nodes: Iterable[int]) -> set[tuple[int, int]]:
        """Directed static edges with both endpoints in ``nodes``.

        This is the edge set that a *statically induced* motif on ``nodes``
        (Hulovatyy / Paranjape sense, Section 4.1) must fully cover.
        """
        node_set = set(nodes)
        storage = self._storage
        events = storage.events
        found: set[tuple[int, int]] = set()
        for node in node_set:
            for idx in storage.node_event_indices(node):
                ev = events[idx]
                if ev.u in node_set and ev.v in node_set:
                    found.add(ev.edge)
        return found

    # ------------------------------------------------------------------
    # windowed queries (the hot path of every restriction checker)
    # ------------------------------------------------------------------
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        """Indices of events touching ``node`` with ``t_lo <= t <= t_hi``."""
        return self._storage.node_events_in(node, t_lo, t_hi)

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        """Number of events touching ``node`` in the closed window."""
        return self._storage.count_node_events_in(node, t_lo, t_hi)

    def edge_events_in(self, edge: tuple[int, int], t_lo: float, t_hi: float) -> list[int]:
        """Indices of events on directed ``edge`` with ``t_lo <= t <= t_hi``."""
        return self._storage.edge_events_in(edge, t_lo, t_hi)

    def count_edge_events_in(self, edge: tuple[int, int], t_lo: float, t_hi: float) -> int:
        """Number of events on directed ``edge`` in the closed window."""
        return self._storage.count_edge_events_in(edge, t_lo, t_hi)

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        """Indices of all events with ``t_lo <= t <= t_hi``."""
        return self._storage.events_in(t_lo, t_hi)

    def event_at(self, idx: int) -> Event:
        """The event at one index in O(1).

        Equivalent to ``graph.events[idx]``, but on a live (growing) graph
        it avoids re-snapshotting the whole :attr:`events` tuple after
        every :meth:`append` — use it to resolve per-arrival indices, e.g.
        from :func:`repro.algorithms.streaming.match_live`.
        """
        return self._storage.event_at(idx)

    # ------------------------------------------------------------------
    # persistence (numpy page directory, mmap-loadable)
    # ------------------------------------------------------------------
    def save(self, path, *, partition_events: int | None = None) -> None:
        """Write this graph as a memory-mappable page directory.

        With the default ``partition_events=None`` the layout is the flat
        ``"numpy"`` backend ``.npy`` page format (columns + CSR index
        pages + ``meta.json``); graphs on any other backend are converted
        on the way out.  With ``partition_events=N`` the out-of-core
        *partitioned* layout is written instead: one flat page set per
        roughly-``N``-event time interval under a top-level
        ``manifest.json`` (see :mod:`repro.storage.partitioned`), which
        :meth:`load` reopens with a bounded resident set.  Either way the
        graph's :attr:`name` round-trips through the manifest.  Requires
        NumPy.
        """
        if partition_events is not None:
            from repro.storage.partitioned import write_partitioned

            write_partitioned(
                self._storage.iter_uvt(),
                path,
                partition_events=partition_events,
                name=self.name,
            )
            return
        from repro.storage.numpy_backend import NumpyStorage

        storage = self._storage
        if not isinstance(storage, NumpyStorage):
            storage = NumpyStorage.from_events(storage.events, presorted=True)
        storage.save(path, name=self.name)

    @classmethod
    def load(cls, path, *, mmap: bool = True, name: str | None = None) -> "TemporalGraph":
        """Reopen a :meth:`save` page directory, flat or partitioned.

        The layout is auto-detected from the directory's manifest: a
        top-level ``manifest.json`` opens as an out-of-core
        :class:`~repro.storage.partitioned.PartitionedStorage` (lazily
        mmap'd partitions, bounded resident set, read-only), a flat
        ``meta.json`` page set opens as a ``"numpy"``-backed graph.  With
        ``mmap=True`` (the default) pages are opened read-only via
        ``np.load(..., mmap_mode="r")``: queries fault in only the pages
        they touch, and — on the flat layout — appends land in an
        in-memory tail without ever writing to the backing files.
        ``name`` overrides the name recorded in the manifest.

        This is the one open entry point; prefer it (or
        :func:`repro.sources.resolve`) over calling the low-level
        :func:`~repro.storage.numpy_backend.load_pages` /
        :func:`~repro.storage.partitioned.load_partitioned` openers
        directly — those remain for code that needs the raw storage plus
        manifest, and know nothing about the other layout.
        """
        from repro.storage.partitioned import is_partitioned, load_partitioned

        if is_partitioned(path):
            storage, meta = load_partitioned(path, mmap=mmap)
        else:
            from repro.storage.numpy_backend import load_pages

            storage, meta = load_pages(path, mmap=mmap)
        return cls._from_storage(
            storage, name=meta.get("name", "") if name is None else name
        )

    # ------------------------------------------------------------------
    # mutation (live/streaming graphs)
    # ------------------------------------------------------------------
    def append(self, event: Event) -> int:
        """Add one end-of-stream event; return its (stable) index.

        The event's timestamp must be at or after the current last event —
        the non-decreasing arrival order of a live stream — so that all
        previously issued event indices stay valid.  This is the substrate
        for matching patterns against a growing graph
        (:func:`repro.algorithms.streaming.match_live`).
        """
        return self._storage.append(event)

    def extend(self, events: Iterable[Event]) -> list[int]:
        """Append a time-sorted batch of events; return their indices."""
        return self._storage.update(list(events))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def slice(self, t_lo: float, t_hi: float, *, name: str | None = None) -> "TemporalGraph":
        """A new graph holding only events in the closed window."""
        return TemporalGraph._from_storage(
            self._storage.slice_time(t_lo, t_hi), name=name or self.name
        )

    def slice_nodes(
        self, nodes: Iterable[int], *, name: str | None = None
    ) -> "TemporalGraph":
        """The subgraph induced by ``nodes``.

        Keeps exactly the events whose endpoints *both* lie in ``nodes``
        (event indices are renumbered; timestamps are untouched).
        """
        return TemporalGraph._from_storage(
            self._storage.slice_nodes(nodes), name=name or self.name
        )

    def head(self, n: int, *, name: str | None = None) -> "TemporalGraph":
        """A new graph holding the earliest ``n`` events."""
        return TemporalGraph(self.events[:n], name=name or self.name, backend=self.backend)

    def degrade_resolution(self, resolution: float, *, name: str | None = None) -> "TemporalGraph":
        """Snap every timestamp down to a multiple of ``resolution``.

        This is the "degrade the resolution to 300 s" operation of
        Section 5.1.2 (Table 4): it creates snapshot-like co-occurring
        timestamps, which is what the constrained dynamic graphlet
        restriction was designed around.
        """
        return TemporalGraph._from_storage(
            self._storage.coarsen(resolution), name=name or self.name
        )

    def filter_events(
        self, predicate: Callable[[Event], bool], *, name: str | None = None
    ) -> "TemporalGraph":
        """A new graph holding only events for which ``predicate`` is true."""
        return TemporalGraph(
            (ev for ev in self.events if predicate(ev)),
            name=name or self.name,
            backend=self.backend,
        )

    def relabeled(self, *, name: str | None = None) -> "TemporalGraph":
        """A copy with nodes renamed to 0..n-1 in order of first appearance."""
        mapping: dict[int, int] = {}
        out: list[Event] = []
        for ev in self.events:
            for node in ev.nodes:
                if node not in mapping:
                    mapping[node] = len(mapping)
            out.append(Event(mapping[ev.u], mapping[ev.v], ev.t))
        return TemporalGraph(out, name=name or self.name, backend=self.backend)

    def with_backend(self, backend: str, *, name: str | None = None) -> "TemporalGraph":
        """The same graph re-indexed under another storage backend."""
        return TemporalGraph(
            self.events, name=name or self.name, backend=backend
        )

    # ------------------------------------------------------------------
    # statistics (Table 2 building blocks)
    # ------------------------------------------------------------------
    def unique_timestamps(self) -> int:
        """Number of distinct timestamps across the whole timespan (#T)."""
        return len(set(self.times))

    def unique_timestamp_fraction(self) -> float:
        """Fraction of events whose timestamp is shared with no other event.

        Table 2 column |Eu|/|E|.  Returns 0.0 for an empty graph.
        """
        times = self.times
        if not times:
            return 0.0
        counts: dict[float, int] = defaultdict(int)
        for t in times:
            counts[t] += 1
        unique = sum(1 for t in times if counts[t] == 1)
        return unique / len(times)

    def median_interevent_time(self) -> float:
        """Median gap between consecutive events (Table 2 column m(Δt))."""
        gaps = interevent_times(list(self.events))
        if not gaps:
            return 0.0
        gaps.sort()
        mid = len(gaps) // 2
        if len(gaps) % 2 == 1:
            return gaps[mid]
        return (gaps[mid - 1] + gaps[mid]) / 2

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        triples: Sequence[tuple[int, int, float]],
        *,
        name: str = "",
        backend: str | None = None,
    ) -> "TemporalGraph":
        """Build a graph from plain ``(u, v, t)`` tuples."""
        return cls((Event(*tri) for tri in triples), name=name, backend=backend)
