"""Indexed temporal graph: the substrate for all motif enumeration.

The :class:`TemporalGraph` stores a time-sorted event list and maintains
three indices the enumeration engine and the model restrictions depend on:

* per-node adjacency: for each node, the time-sorted list of indices of
  events that touch it (used for connected-growth candidate generation and
  the Kovanen consecutive-events restriction),
* per-edge occurrences: for each directed static edge ``(u, v)``, the
  time-sorted list of event indices on that edge (used for the constrained
  dynamic graphlet restriction),
* the static projection (used for static inducedness checks).

All indices are plain Python lists of integers plus parallel lists of
timestamps so that :mod:`bisect` can slice any time window in O(log m).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.events import Event, interevent_times, validate_events


class TemporalGraph:
    """A directed temporal network with time-sorted, indexed events.

    Parameters
    ----------
    events:
        Iterable of :class:`Event` (or 3-tuples).  They are validated,
        sorted by ``(t, u, v)``, and frozen.
    name:
        Optional label used by dataset registry and experiment reports.

    Notes
    -----
    Event *indices* (positions in :attr:`events`) are the universal handle
    throughout the library: enumerators yield tuples of indices, restriction
    checkers take tuples of indices, and counters convert indices to motif
    codes.  Indices are stable because the event list is immutable.
    """

    def __init__(self, events: Iterable[Event], *, name: str = "") -> None:
        self.events: tuple[Event, ...] = tuple(validate_events(events))
        self.name = name
        self.times: list[float] = [ev.t for ev in self.events]

        node_events: dict[int, list[int]] = defaultdict(list)
        edge_events: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, ev in enumerate(self.events):
            node_events[ev.u].append(idx)
            if ev.v != ev.u:
                node_events[ev.v].append(idx)
            edge_events[ev.edge].append(idx)

        #: node -> time-sorted event indices touching the node
        self.node_events: dict[int, list[int]] = dict(node_events)
        #: node -> timestamps parallel to :attr:`node_events` (bisect keys)
        self.node_times: dict[int, list[float]] = {
            node: [self.times[i] for i in idxs] for node, idxs in node_events.items()
        }
        #: directed edge -> time-sorted event indices on that edge
        self.edge_events: dict[tuple[int, int], list[int]] = dict(edge_events)
        #: directed edge -> timestamps parallel to :attr:`edge_events`
        self.edge_times: dict[tuple[int, int], list[float]] = {
            edge: [self.times[i] for i in idxs] for edge, idxs in edge_events.items()
        }

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TemporalGraph{label}: {self.num_nodes} nodes, "
            f"{len(self.events)} events, {self.num_edges} edges>"
        )

    @property
    def nodes(self) -> set[int]:
        """The set of nodes appearing in at least one event."""
        return set(self.node_events)

    @property
    def num_nodes(self) -> int:
        return len(self.node_events)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed static edges."""
        return len(self.edge_events)

    @property
    def timespan(self) -> float:
        """Time difference between the last and first events (0 if empty)."""
        if not self.events:
            return 0.0
        return self.times[-1] - self.times[0]

    # ------------------------------------------------------------------
    # static projection
    # ------------------------------------------------------------------
    def static_edges(self) -> set[tuple[int, int]]:
        """All distinct directed edges of the static projection."""
        return set(self.edge_events)

    def static_neighbors(self, node: int) -> set[int]:
        """Nodes adjacent to ``node`` in the (directed) static projection."""
        neighbors: set[int] = set()
        for idx in self.node_events.get(node, ()):
            ev = self.events[idx]
            neighbors.add(ev.v if ev.u == node else ev.u)
        neighbors.discard(node)
        return neighbors

    def induced_static_edges(self, nodes: Iterable[int]) -> set[tuple[int, int]]:
        """Directed static edges with both endpoints in ``nodes``.

        This is the edge set that a *statically induced* motif on ``nodes``
        (Hulovatyy / Paranjape sense, Section 4.1) must fully cover.
        """
        node_set = set(nodes)
        found: set[tuple[int, int]] = set()
        for node in node_set:
            for idx in self.node_events.get(node, ()):
                ev = self.events[idx]
                if ev.u in node_set and ev.v in node_set:
                    found.add(ev.edge)
        return found

    # ------------------------------------------------------------------
    # windowed queries (the hot path of every restriction checker)
    # ------------------------------------------------------------------
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        """Indices of events touching ``node`` with ``t_lo <= t <= t_hi``."""
        times = self.node_times.get(node)
        if times is None:
            return []
        lo = bisect.bisect_left(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return self.node_events[node][lo:hi]

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        """Number of events touching ``node`` in the closed window."""
        times = self.node_times.get(node)
        if times is None:
            return 0
        return bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)

    def edge_events_in(self, edge: tuple[int, int], t_lo: float, t_hi: float) -> list[int]:
        """Indices of events on directed ``edge`` with ``t_lo <= t <= t_hi``."""
        times = self.edge_times.get(edge)
        if times is None:
            return []
        lo = bisect.bisect_left(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return self.edge_events[edge][lo:hi]

    def count_edge_events_in(self, edge: tuple[int, int], t_lo: float, t_hi: float) -> int:
        """Number of events on directed ``edge`` in the closed window."""
        times = self.edge_times.get(edge)
        if times is None:
            return 0
        return bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        """Indices of all events with ``t_lo <= t <= t_hi``."""
        lo = bisect.bisect_left(self.times, t_lo)
        hi = bisect.bisect_right(self.times, t_hi)
        return list(range(lo, hi))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def slice(self, t_lo: float, t_hi: float, *, name: str | None = None) -> "TemporalGraph":
        """A new graph holding only events in the closed window."""
        lo = bisect.bisect_left(self.times, t_lo)
        hi = bisect.bisect_right(self.times, t_hi)
        return TemporalGraph(self.events[lo:hi], name=name or self.name)

    def head(self, n: int, *, name: str | None = None) -> "TemporalGraph":
        """A new graph holding the earliest ``n`` events."""
        return TemporalGraph(self.events[:n], name=name or self.name)

    def degrade_resolution(self, resolution: float, *, name: str | None = None) -> "TemporalGraph":
        """Snap every timestamp down to a multiple of ``resolution``.

        This is the "degrade the resolution to 300 s" operation of
        Section 5.1.2 (Table 4): it creates snapshot-like co-occurring
        timestamps, which is what the constrained dynamic graphlet
        restriction was designed around.
        """
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        snapped = (
            Event(ev.u, ev.v, (ev.t // resolution) * resolution) for ev in self.events
        )
        return TemporalGraph(snapped, name=name or self.name)

    def filter_events(
        self, predicate: Callable[[Event], bool], *, name: str | None = None
    ) -> "TemporalGraph":
        """A new graph holding only events for which ``predicate`` is true."""
        return TemporalGraph(
            (ev for ev in self.events if predicate(ev)), name=name or self.name
        )

    def relabeled(self, *, name: str | None = None) -> "TemporalGraph":
        """A copy with nodes renamed to 0..n-1 in order of first appearance."""
        mapping: dict[int, int] = {}
        out: list[Event] = []
        for ev in self.events:
            for node in ev.nodes:
                if node not in mapping:
                    mapping[node] = len(mapping)
            out.append(Event(mapping[ev.u], mapping[ev.v], ev.t))
        return TemporalGraph(out, name=name or self.name)

    # ------------------------------------------------------------------
    # statistics (Table 2 building blocks)
    # ------------------------------------------------------------------
    def unique_timestamps(self) -> int:
        """Number of distinct timestamps across the whole timespan (#T)."""
        return len(set(self.times))

    def unique_timestamp_fraction(self) -> float:
        """Fraction of events whose timestamp is shared with no other event.

        Table 2 column |Eu|/|E|.  Returns 0.0 for an empty graph.
        """
        if not self.events:
            return 0.0
        counts: dict[float, int] = defaultdict(int)
        for t in self.times:
            counts[t] += 1
        unique = sum(1 for t in self.times if counts[t] == 1)
        return unique / len(self.events)

    def median_interevent_time(self) -> float:
        """Median gap between consecutive events (Table 2 column m(Δt))."""
        gaps = interevent_times(list(self.events))
        if not gaps:
            return 0.0
        gaps.sort()
        mid = len(gaps) // 2
        if len(gaps) % 2 == 1:
            return gaps[mid]
        return (gaps[mid - 1] + gaps[mid]) / 2

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls, triples: Sequence[tuple[int, int, float]], *, name: str = ""
    ) -> "TemporalGraph":
        """Build a graph from plain ``(u, v, t)`` tuples."""
        return cls((Event(*tri) for tri in triples), name=name)
