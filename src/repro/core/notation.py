"""The paper's 2n-digit temporal motif notation (Figure 2, left).

A temporal motif with ``n`` events is written as ``2n`` digits.  Each digit
pair is one event, source digit first; the first pair is always ``01``
(first event goes from node 0 to node 1); subsequent nodes are numbered in
chronological order of first appearance.  For example ``011202`` is the
temporal triangle 0→1, 1→2, 0→2.

Only motifs that *grow as a single component* — every event after the first
shares at least one node with the union of the nodes seen so far — are
considered, matching the paper ("we only consider the motifs that grow as a
single component, by adding one event at a time").

Taxonomy facts reproduced by :func:`all_motif_codes` and used as test
oracles (Section 5, "Motif notation"):

* three-event motifs on ≤3 nodes: 36 (= 6²), of which 4 are 2n3e and 32 3n3e,
* four-event motifs on ≤3 nodes: 216 (= 6³),
* four-event motifs on exactly 4 nodes: 480,
* all four-event motifs on ≤4 nodes: 696.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

#: Maximum nodes representable with single-digit notation.
MAX_NOTATION_NODES = 10

#: Digit lookup for the encoder's hot path (cheaper than ``str(int)``).
_DIGIT_CHARS = "0123456789"


def canonical_code(node_pairs: Sequence[tuple[int, int]]) -> str:
    """Encode a chronologically ordered event sequence as a motif code.

    ``node_pairs`` holds the ``(source, target)`` node pair of each event in
    chronological order; node identifiers are arbitrary hashables.  Nodes
    are renumbered by order of first appearance, so the first pair always
    becomes ``01``.

    Raises :class:`ValueError` on self-loops or on motifs with more than
    ten nodes (unrepresentable in single-digit notation).
    """
    mapping: dict[int, int] = {}
    digits: list[str] = []
    append = digits.append
    get = mapping.get
    for u, v in node_pairs:
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) has no motif code")
        du = get(u)
        if du is None:
            du = len(mapping)
            if du >= MAX_NOTATION_NODES:
                raise ValueError("motif has too many nodes for digit notation")
            mapping[u] = du
        dv = get(v)
        if dv is None:
            dv = len(mapping)
            if dv >= MAX_NOTATION_NODES:
                raise ValueError("motif has too many nodes for digit notation")
            mapping[v] = dv
        append(_DIGIT_CHARS[du])
        append(_DIGIT_CHARS[dv])
    return "".join(digits)


def parse_code(code: str) -> list[tuple[int, int]]:
    """Decode a motif code into its list of ``(source, target)`` pairs.

    Raises :class:`ValueError` on malformed codes (odd length, non-digits,
    self-loop pairs).
    """
    if not code or len(code) % 2 != 0:
        raise ValueError(f"motif code {code!r} must have even, positive length")
    if not code.isdigit():
        raise ValueError(f"motif code {code!r} must be all digits")
    pairs = [(int(code[i]), int(code[i + 1])) for i in range(0, len(code), 2)]
    for u, v in pairs:
        if u == v:
            raise ValueError(f"motif code {code!r} contains self-loop {u}{v}")
    return pairs


def is_valid_code(code: str) -> bool:
    """True when ``code`` is a well-formed, canonical, single-component code.

    Canonical means nodes are numbered in first-appearance order (so the
    code equals :func:`canonical_code` of its own pairs); single-component
    means every event after the first shares a node with the nodes so far.
    """
    try:
        pairs = parse_code(code)
    except ValueError:
        return False
    if canonical_code(pairs) != code:
        return False
    return is_single_component_growth(pairs)


def is_single_component_growth(node_pairs: Sequence[tuple[int, int]]) -> bool:
    """Check that each event after the first touches an already-seen node."""
    if not node_pairs:
        return False
    seen = {node_pairs[0][0], node_pairs[0][1]}
    for u, v in node_pairs[1:]:
        if u not in seen and v not in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def node_count_of_code(code: str) -> int:
    """Number of distinct nodes in a motif code."""
    return len({d for d in code})


def event_count_of_code(code: str) -> int:
    """Number of events in a motif code."""
    return len(code) // 2


def code_edges(code: str) -> set[tuple[int, int]]:
    """Distinct directed static edges used by a motif code."""
    return set(parse_code(code))


def code_nodes(code: str) -> set[int]:
    """Distinct node digits used by a motif code."""
    return {int(d) for d in code}


@lru_cache(maxsize=None)
def all_motif_codes(n_events: int, max_nodes: int | None = None) -> tuple[str, ...]:
    """All canonical single-component motif codes with ``n_events`` events.

    Parameters
    ----------
    n_events:
        Number of events (≥ 1).
    max_nodes:
        Keep only motifs with at most this many nodes.  ``None`` keeps all
        (bounded naturally by ``n_events + 1`` nodes).

    Returns
    -------
    Sorted tuple of codes.  Use :func:`motif_codes_with_nodes` for an
    exact-node-count slice (e.g. the paper's 32 "3n3e" motifs).
    """
    if n_events < 1:
        raise ValueError("a motif needs at least one event")
    cap = n_events + 1 if max_nodes is None else max_nodes
    results: list[str] = []

    def extend(pairs: list[tuple[int, int]], n_used: int) -> None:
        if len(pairs) == n_events:
            results.append("".join(f"{u}{v}" for u, v in pairs))
            return
        # events entirely within already-used nodes
        for u in range(n_used):
            for v in range(n_used):
                if u != v:
                    pairs.append((u, v))
                    extend(pairs, n_used)
                    pairs.pop()
        # events introducing the next new node (single-component growth
        # forbids two new endpoints at once)
        if n_used < cap:
            new = n_used
            for other in range(n_used):
                for pair in ((other, new), (new, other)):
                    pairs.append(pair)
                    extend(pairs, n_used + 1)
                    pairs.pop()

    extend([(0, 1)], 2)
    return tuple(sorted(results))


def motif_codes_with_nodes(n_events: int, n_nodes: int) -> tuple[str, ...]:
    """Canonical codes with exactly ``n_events`` events and ``n_nodes`` nodes.

    ``motif_codes_with_nodes(3, 3)`` yields the paper's 32 3n3e motifs.
    """
    return tuple(
        code
        for code in all_motif_codes(n_events, n_nodes)
        if node_count_of_code(code) == n_nodes
    )


def code_of_events(events: Iterable) -> str:
    """Motif code of a chronologically ordered sequence of events.

    Accepts :class:`repro.core.events.Event` records or ``(u, v, t)``
    tuples; only the node pairs matter.
    """
    return canonical_code([(ev[0], ev[1]) for ev in events])


def describe_code(code: str) -> str:
    """Human-readable one-line description of a motif code."""
    pairs = parse_code(code)
    arrows = ", ".join(f"{u}→{v}" for u, v in pairs)
    return (
        f"{code}: {len(pairs)} events on {node_count_of_code(code)} nodes ({arrows})"
    )
