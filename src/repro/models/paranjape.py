"""Paranjape et al. 2017 — δ-temporal motifs.

The model (Section 4 of the survey): a temporal motif is a totally ordered
sequence of events whose whole span — last minus first — fits inside a time
window ΔW.  Kovanen's consecutive-events restriction is deliberately
dropped so that motifs occurring in short bursts are caught.  Per the
survey's Table 1 and Figure 1, motifs are induced in the static projection
(the second Figure-1 example is invalid for this model because it skips a
diagonal edge).

The original WSDM'17 formulation counts non-induced matches; pass
``induced=False`` to get that behaviour — the survey's reading is the
default so Figure 1 reproduces.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.restrictions import is_static_induced
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.models.base import ModelAspects, MotifModel, grows_connected, ordered_strictly


class ParanjapeModel(MotifModel):
    """ΔW-windowed, totally ordered, statically induced temporal motifs."""

    name = "Paranjape et al. [14]"
    year = 2017
    aspects = ModelAspects(
        induced="static only",
        event_durations=False,
        partial_ordering=False,
        directed_edges=True,
        node_edge_labels=False,
        uses_delta_c=False,
        uses_delta_w=True,
    )

    def __init__(
        self,
        delta_w: float,
        *,
        induced: bool = True,
        induced_scope: str = "window",
    ) -> None:
        """
        Parameters
        ----------
        delta_w:
            Window bounding the whole motif (first to last event).
        induced:
            Require static inducedness (survey reading).  ``False`` gives
            the original WSDM'17 non-induced counting.
        induced_scope:
            ``"window"`` or ``"global"``.
        """
        self.delta_w = delta_w
        self.induced = induced
        self.induced_scope = induced_scope

    def constraints(self) -> TimingConstraints:
        return TimingConstraints.only_w(self.delta_w)

    def is_valid_instance(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not instance:
            return False
        if not ordered_strictly(graph, instance):
            return False
        if not grows_connected(graph, instance):
            return False
        times = [graph.times[i] for i in instance]
        if not self.constraints().admits(times):
            return False
        return self._predicate(graph, instance)

    def _predicate(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not self.induced:
            return True
        return is_static_induced(graph, instance, scope=self.induced_scope)
