"""The four temporal motif models surveyed by the paper (Section 4).

* :class:`~repro.models.kovanen.KovanenModel` — Kovanen et al. 2011,
* :class:`~repro.models.song.SongModel` — Song et al. 2014,
* :class:`~repro.models.hulovatyy.HulovatyyModel` — Hulovatyy et al. 2015,
* :class:`~repro.models.paranjape.ParanjapeModel` — Paranjape et al. 2017,

plus the Table-1 aspect matrix in :mod:`repro.models.aspects`.
"""

from repro.models.aspects import ASPECT_ROWS, aspect_table
from repro.models.base import ModelAspects, MotifModel
from repro.models.hulovatyy import HulovatyyModel
from repro.models.kovanen import KovanenModel
from repro.models.paranjape import ParanjapeModel
from repro.models.song import SongModel

ALL_MODELS = (KovanenModel, SongModel, HulovatyyModel, ParanjapeModel)

__all__ = [
    "ALL_MODELS",
    "ASPECT_ROWS",
    "HulovatyyModel",
    "KovanenModel",
    "ModelAspects",
    "MotifModel",
    "ParanjapeModel",
    "SongModel",
    "aspect_table",
]
