"""The paper's Table 1 — aspects of the four temporal motif models.

:data:`ASPECT_ROWS` is the machine-readable matrix; :func:`aspect_table`
renders it in the paper's layout (one column per model, one row per aspect,
check marks for booleans).
"""

from __future__ import annotations

from repro.models.base import ModelAspects

#: Model name -> Table-1 row, in the paper's column order.
ASPECT_ROWS: dict[str, ModelAspects] = {
    "Kovanen et al. [11]": ModelAspects(
        induced="node-based temporal",
        event_durations=False,
        partial_ordering=True,
        directed_edges=True,
        node_edge_labels=False,
        uses_delta_c=True,
        uses_delta_w=False,
    ),
    "Song et al. [12]": ModelAspects(
        induced="none",
        event_durations=False,
        partial_ordering=True,
        directed_edges=True,
        node_edge_labels=True,
        uses_delta_c=False,
        uses_delta_w=True,
    ),
    "Hulovatyy et al. [13]": ModelAspects(
        induced="static only",
        event_durations=True,
        partial_ordering=False,
        directed_edges=False,
        node_edge_labels=False,
        uses_delta_c=True,
        uses_delta_w=False,
    ),
    "Paranjape et al. [14]": ModelAspects(
        induced="static only",
        event_durations=False,
        partial_ordering=False,
        directed_edges=True,
        node_edge_labels=False,
        uses_delta_c=False,
        uses_delta_w=True,
    ),
}

#: Row labels of Table 1, paired with the ModelAspects attribute they read.
ASPECT_LABELS: tuple[tuple[str, str], ...] = (
    ("Induced subgraph (Sec. 4.1)", "induced"),
    ("Event durations (Sec. 4.2)", "event_durations"),
    ("Partial ordering (Sec. 4.3)", "partial_ordering"),
    ("Directed edges (Sec. 4.4)", "directed_edges"),
    ("Node/Edge labels (Sec. 4.4)", "node_edge_labels"),
    ("Adjacent events in ΔC (Sec. 4.5)", "uses_delta_c"),
    ("Entire motif in ΔW (Sec. 4.5)", "uses_delta_w"),
)


def _cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value == "none":
        return "no"
    return str(value)


def aspect_table() -> str:
    """Render Table 1 as aligned text."""
    models = list(ASPECT_ROWS)
    header = ["Aspect"] + models
    rows = [header]
    for label, attr in ASPECT_LABELS:
        row = [label]
        for model in models:
            row.append(_cell(getattr(ASPECT_ROWS[model], attr)))
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def aspect_matrix() -> dict[str, dict[str, object]]:
    """Table 1 as nested dicts: aspect label -> model -> cell value."""
    out: dict[str, dict[str, object]] = {}
    for label, attr in ASPECT_LABELS:
        out[label] = {
            model: getattr(row, attr) for model, row in ASPECT_ROWS.items()
        }
    return out
