"""Hulovatyy et al. 2015 — dynamic graphlets.

The model (Section 4 of the survey) refines Kovanen's in two directions:

* motifs must be **statically induced** — all edges among the motif's
  nodes must be covered by the motif's edge set (the skipped-event example
  of Section 4.1 shows coverage is per-edge, not per-event), and
* the consecutive-events restriction is **dropped** (too restrictive).

Events are **totally ordered**; temporal adjacency uses ΔC between
consecutive events.  Two optional refinements from the original paper are
supported:

* *constrained dynamic graphlets* — a consecutive event on a new edge must
  be the first event on that edge since its predecessor (filters stale
  repeats; evaluated in Table 4), and
* *event durations* — the gap is measured from the **end** of the earlier
  event to the **start** of the later one, the one duration-aware model in
  the literature (Section 4.2).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algorithms.restrictions import is_static_induced, satisfies_cdg
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.models.base import ModelAspects, MotifModel, grows_connected, ordered_strictly


class HulovatyyModel(MotifModel):
    """Statically induced, ΔC-connected, totally ordered dynamic graphlets."""

    name = "Hulovatyy et al. [13]"
    year = 2015
    aspects = ModelAspects(
        induced="static only",
        event_durations=True,
        partial_ordering=False,
        directed_edges=False,
        node_edge_labels=False,
        uses_delta_c=True,
        uses_delta_w=False,
    )

    def __init__(
        self,
        delta_c: float,
        *,
        constrained: bool = False,
        induced_scope: str = "window",
        durations: Mapping[int, float] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        delta_c:
            Maximum gap between consecutive events.
        constrained:
            Apply the constrained-dynamic-graphlet restriction.
        induced_scope:
            ``"window"`` or ``"global"`` — see
            :func:`repro.algorithms.restrictions.is_static_induced`.
        durations:
            Optional event-index → duration map; when given, consecutive
            gaps are measured end-of-first to start-of-second.
        """
        self.delta_c = delta_c
        self.constrained = constrained
        self.induced_scope = induced_scope
        self.durations = durations

    def constraints(self) -> TimingConstraints:
        return TimingConstraints.only_c(self.delta_c)

    def is_valid_instance(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not instance:
            return False
        if not ordered_strictly(graph, instance):
            return False
        if not grows_connected(graph, instance):
            return False
        if not self._admits_timing(graph, instance):
            return False
        return self._predicate(graph, instance)

    def _admits_timing(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        """ΔC over consecutive gaps, duration-aware when durations are set."""
        if self.durations is None:
            times = [graph.times[i] for i in instance]
            return self.constraints().admits(times)
        for a, b in zip(instance, instance[1:]):
            end_a = graph.times[a] + self.durations.get(a, 0.0)
            if graph.times[b] - end_a > self.delta_c:
                return False
        return True

    def _predicate(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not is_static_induced(graph, instance, scope=self.induced_scope):
            return False
        if self.constrained and not satisfies_cdg(graph, instance):
            return False
        if self.durations is not None and not self._admits_timing(graph, instance):
            return False
        return True
