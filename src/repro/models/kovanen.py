"""Kovanen et al. 2011 — the first temporal motif model.

Definition (Section 4 of the survey): a temporal motif is an ordered set of
events such that

1. the time difference between each pair of *consecutive* events (in the
   whole, time-ordered set) is at most ΔC (temporal adjacency), and
2. for each node of the motif, its adjacent events in the motif are
   consecutive among all of the node's events — the node participates in no
   outside event between its motif events (the *consecutive events
   restriction*, a node-based temporal inducedness).

The model supports a partial ordering among events (ties in timestamps are
tolerated) and is **not** induced in the static sense: skipped edges among
the motif's nodes are allowed.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.models.base import ModelAspects, MotifModel, grows_connected, ordered_weakly


class KovanenModel(MotifModel):
    """ΔC-connected motifs with the consecutive-events restriction."""

    name = "Kovanen et al. [11]"
    year = 2011
    aspects = ModelAspects(
        induced="node-based temporal",
        event_durations=False,
        partial_ordering=True,
        directed_edges=True,
        node_edge_labels=False,
        uses_delta_c=True,
        uses_delta_w=False,
    )

    def __init__(self, delta_c: float, *, enforce_consecutive: bool = True) -> None:
        """
        Parameters
        ----------
        delta_c:
            Maximum gap between consecutive events of a motif, in seconds.
        enforce_consecutive:
            Allow switching the consecutive-events restriction off; the
            paper's Table 3 compares exactly this toggle.
        """
        self.delta_c = delta_c
        self.enforce_consecutive = enforce_consecutive

    def constraints(self) -> TimingConstraints:
        return TimingConstraints.only_c(self.delta_c)

    def is_valid_instance(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not instance:
            return False
        if not ordered_weakly(graph, instance):
            return False
        if not grows_connected(graph, instance):
            return False
        times = [graph.times[i] for i in instance]
        if not self.constraints().admits(times):
            return False
        if self.enforce_consecutive and not satisfies_consecutive_events(
            graph, instance
        ):
            return False
        return True

    def _predicate(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        # Ordering, growth, and ΔC are already guaranteed by the enumerator.
        if not self.enforce_consecutive:
            return True
        return satisfies_consecutive_events(graph, instance)
