"""Common interface for the four temporal motif models.

Each model is a validity judge plus a counter: given a candidate motif
instance (a chronologically ordered tuple of event indices into a
:class:`~repro.core.temporal_graph.TemporalGraph`), ``is_valid_instance``
answers whether that instance is a motif under the model's constraints —
exactly the question Figure 1 of the paper poses for its four examples.
``count`` enumerates and tallies all valid instances per motif code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.counting import count_motifs
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class ModelAspects:
    """One row of the paper's Table 1: which aspects a model handles.

    ``induced`` is one of ``"node-based temporal"``, ``"static only"``,
    or ``"none"``; the booleans mirror the check marks of Table 1.
    """

    induced: str
    event_durations: bool
    partial_ordering: bool
    directed_edges: bool
    node_edge_labels: bool
    uses_delta_c: bool
    uses_delta_w: bool


class MotifModel(ABC):
    """A temporal motif model: validity judge + counter."""

    #: Human-readable model name ("Kovanen et al. [11]" style).
    name: str = ""
    #: Publication year, for ordering in reports.
    year: int = 0
    #: Table-1 row for this model.
    aspects: ModelAspects

    @abstractmethod
    def constraints(self) -> TimingConstraints:
        """The timing constraints this model instance applies."""

    @abstractmethod
    def is_valid_instance(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        """Judge a chronologically ordered candidate instance.

        Implementations must require single-component growth and whatever
        ordering, timing, and inducedness rules the model defines.
        """

    def count(
        self,
        graph: TemporalGraph,
        n_events: int,
        *,
        max_nodes: int | None = None,
        node_counts: Iterable[int] | None = None,
    ) -> Counter:
        """Count valid instances per canonical motif code."""
        return count_motifs(
            graph,
            n_events,
            self.constraints(),
            max_nodes=max_nodes,
            node_counts=node_counts,
            predicate=self._predicate,
        )

    def _predicate(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        """Adapter so the enumerator can call the model as a filter.

        The enumerator already guarantees ordering, growth, and the timing
        constraints returned by :meth:`constraints`; subclasses override
        this with only their *extra* restrictions to avoid re-checking.
        """
        return self.is_valid_instance(graph, instance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}: {self.constraints().describe()}>"


def ordered_strictly(graph: TemporalGraph, instance: Sequence[int]) -> bool:
    """Strictly increasing timestamps (total ordering)."""
    times = [graph.times[i] for i in instance]
    return all(b > a for a, b in zip(times, times[1:]))


def ordered_weakly(graph: TemporalGraph, instance: Sequence[int]) -> bool:
    """Non-decreasing timestamps (partial ordering allows ties)."""
    times = [graph.times[i] for i in instance]
    return all(b >= a for a, b in zip(times, times[1:]))


def grows_connected(graph: TemporalGraph, instance: Sequence[int]) -> bool:
    """Single-component growth: each event touches an already-seen node."""
    if not instance:
        return False
    first = graph.events[instance[0]]
    seen = {first.u, first.v}
    for idx in instance[1:]:
        ev = graph.events[idx]
        if ev.u not in seen and ev.v not in seen:
            return False
        seen.add(ev.u)
        seen.add(ev.v)
    return True
