"""Song et al. 2014 — event pattern matching over graph streams.

The model (Section 4 of the survey) comes from complex event processing:
an *event pattern* is a temporal motif with node/edge label predicates and
a partial ordering among its events, and all events of a match must fall
inside a time window ΔW (first-to-last).  There is no inducedness
requirement — non-induced motifs are the point (fraud squares etc.).

For instance-validity judging (Figure 1), only the ΔW window, partial
ordering, and connected growth matter; label-aware streaming matching
lives in :mod:`repro.algorithms.streaming` and can be attached here via
``pattern``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.models.base import ModelAspects, MotifModel, grows_connected, ordered_weakly


class SongModel(MotifModel):
    """ΔW-windowed, label-aware, partially ordered event patterns."""

    name = "Song et al. [12]"
    year = 2014
    aspects = ModelAspects(
        induced="none",
        event_durations=False,
        partial_ordering=True,
        directed_edges=True,
        node_edge_labels=True,
        uses_delta_c=False,
        uses_delta_w=True,
    )

    def __init__(self, delta_w: float, *, pattern=None) -> None:
        """
        Parameters
        ----------
        delta_w:
            Window bounding the whole motif (first to last event).
        pattern:
            Optional :class:`repro.algorithms.pattern.EventPattern`; when
            given, :meth:`is_valid_instance` additionally requires the
            instance to match the pattern (labels + partial order).
        """
        self.delta_w = delta_w
        self.pattern = pattern

    def constraints(self) -> TimingConstraints:
        return TimingConstraints.only_w(self.delta_w)

    def is_valid_instance(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if not instance:
            return False
        if not ordered_weakly(graph, instance):
            return False
        if not grows_connected(graph, instance):
            return False
        times = [graph.times[i] for i in instance]
        if not self.constraints().admits(times):
            return False
        if self.pattern is not None:
            events = [graph.events[i] for i in instance]
            if not self.pattern.matches_sequence(events):
                return False
        return True

    def _predicate(self, graph: TemporalGraph, instance: Sequence[int]) -> bool:
        if self.pattern is None:
            return True
        events = [graph.events[i] for i in instance]
        return self.pattern.matches_sequence(events)
