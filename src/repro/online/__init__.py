"""Online sliding-window motif census (live event streams).

Batch counting answers "how many instances of each motif does this graph
hold?" by walking a fully materialized
:class:`~repro.core.temporal_graph.TemporalGraph`.  This package answers
the *live* version of the same question: maintain exact per-motif counts
for the trailing window ``[now - W, now]`` of a stream, updating them as
each event arrives instead of re-running
:func:`~repro.algorithms.counting.run_census` from scratch.

* :class:`~repro.online.census.OnlineCensus` — the incremental engine:
  ``push(event)`` appends through the storage contract's tail path and
  discovers only the new instances *ending at* the arrival by extending
  a node-bucketed store of live prefixes, so per-event cost tracks local
  activity, never history; instances whose anchor event slides out of
  the window retire through a monotone expiry heap.
* :class:`~repro.online.multiview.MultiViewCensus` — the multi-view
  generalization: one shared core (graph tail, prefix store, compiled
  kernel, discovery ledger) fans each ``push`` into many registered
  views — heterogeneous window lengths, node-set slices, restriction
  predicates — each owning only counters and an anchor-keyed expiry
  heap, with ``add_view``/``drop_view`` live on a running stream and
  per-view degradation to the sampling estimators under load.
  :class:`OnlineCensus` is its single-view facade.
* :mod:`~repro.online.checkpoint` — page-directory checkpoints
  (:meth:`OnlineCensus.snapshot` / :meth:`OnlineCensus.restore`) built on
  the ``"numpy"`` backend's mmap persistence; restore regrows the prefix
  store by running the batch enumerator — and its
  :meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
  candidate seam — over the retained tail.

The engine's core invariant — counts at time *t* equal a batch census of
``slice_time(t - W, t)`` — is enforced push-by-push by the differential
property suite in ``tests/test_online.py`` on every storage backend, and
its multi-view extension — every view bit-identical to an independent
single-window engine after every push — by ``tests/test_multiview.py``.
"""

from repro.online.census import OnlineCensus
from repro.online.checkpoint import load_checkpoint, save_checkpoint
from repro.online.multiview import MultiViewCensus

__all__ = ["MultiViewCensus", "OnlineCensus", "load_checkpoint", "save_checkpoint"]
