"""Online sliding-window motif census (live event streams).

Batch counting answers "how many instances of each motif does this graph
hold?" by walking a fully materialized
:class:`~repro.core.temporal_graph.TemporalGraph`.  This package answers
the *live* version of the same question: maintain exact per-motif counts
for the trailing window ``[now - W, now]`` of a stream, updating them as
each event arrives instead of re-running
:func:`~repro.algorithms.counting.run_census` from scratch.

* :class:`~repro.online.census.OnlineCensus` — the incremental engine:
  ``push(event)`` appends through the storage contract's tail path and
  discovers only the new instances *ending at* the arrival by extending
  a node-bucketed store of live prefixes, so per-event cost tracks local
  activity, never history; instances whose anchor event slides out of
  the window retire through a monotone expiry heap.
* :mod:`~repro.online.checkpoint` — page-directory checkpoints
  (:meth:`OnlineCensus.snapshot` / :meth:`OnlineCensus.restore`) built on
  the ``"numpy"`` backend's mmap persistence; restore regrows the prefix
  store by running the batch enumerator — and its
  :meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
  candidate seam — over the retained tail.

The engine's core invariant — counts at time *t* equal a batch census of
``slice_time(t - W, t)`` — is enforced push-by-push by the differential
property suite in ``tests/test_online.py`` on every storage backend.
"""

from repro.online.census import OnlineCensus
from repro.online.checkpoint import load_checkpoint, save_checkpoint

__all__ = ["OnlineCensus", "load_checkpoint", "save_checkpoint"]
