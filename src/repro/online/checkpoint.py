"""Checkpoint persistence for :class:`~repro.online.census.OnlineCensus`.

A checkpoint is a directory with two parts:

* ``graph/`` — the engine's retained event tail as a ``"numpy"`` page
  directory (PR 3's mmap-loadable ``repro-numpy-pages`` layout, written
  through :meth:`TemporalGraph.save`), and
* ``state.json`` — the engine configuration, the stream clock, and the
  live-instance ledger (anchor timestamp, motif code, pair sequence per
  counted instance).

The counters are *not* stored: they are a pure fold over the ledger, so
:func:`load_checkpoint` rebuilds them and cross-checks the recorded
total, which makes a truncated or hand-edited state file fail loudly
instead of drifting.  Restoring converts the graph to the requested (or
session-default) storage backend, so a checkpoint written by a
``"numpy"`` session resumes cleanly under ``"list"`` or ``"columnar"``.

Predicates are code, not data — the manifest only records that one was
in use, and :func:`load_checkpoint` refuses to resume until the caller
re-supplies it (pass ``predicate=...``).
"""

from __future__ import annotations

import heapq
import json
import os

from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import PairType
from repro.core.temporal_graph import TemporalGraph
from repro.online.census import OnlineCensus, Predicate
from repro.online.multiview import _LedgerEntry

#: ``state.json`` manifest identifier / version of the checkpoint layout.
CHECKPOINT_FORMAT = "repro-online-census"
CHECKPOINT_VERSION = 1

#: Subdirectory holding the graph tail's numpy page directory.
GRAPH_DIR = "graph"
STATE_FILE = "state.json"


def save_checkpoint(census: OnlineCensus, path: str | os.PathLike) -> None:
    """Write ``census`` as a checkpoint directory under ``path``.

    Prunes the engine first so the graph pages hold only the tail a
    resumed stream can still touch.  Requires NumPy (the page writer
    converts other backends on the way out).
    """
    census.prune()
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    census._graph.save(os.path.join(path, GRAPH_DIR))
    ledger = [
        [
            anchor_t,
            entry.code,
            [None if p is None else p.value for p in entry.pair_seq],
        ]
        for anchor_t, _seq, entry in sorted(census._heap)
    ]
    state = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "n_events": census._n_events,
        "delta_c": census._constraints.delta_c,
        "delta_w": census._constraints.delta_w,
        "window": census._window,
        "max_nodes": census._max_nodes,
        "has_predicate": census._predicate is not None,
        "now": census._now,
        "offset": census._offset,
        "pushed": census._pushed,
        "discovered": census._discovered,
        "expired": census._expired,
        "total": census._total,
        "ledger": ledger,
    }
    with open(os.path.join(path, STATE_FILE), "w") as fh:
        json.dump(state, fh, indent=2)


def load_checkpoint(
    path: str | os.PathLike,
    *,
    backend: str | None = None,
    predicate: Predicate | None = None,
    prune_every: int | None = None,
) -> OnlineCensus:
    """Reopen a :func:`save_checkpoint` directory and resume the stream.

    Parameters
    ----------
    backend:
        Storage backend for the resumed live graph (``None`` = the
        ``REPRO_STORAGE`` env var, then the library default).  The pages
        are always *read* through NumPy; the events are re-indexed under
        the chosen backend.
    predicate:
        Must be supplied iff the snapshotted engine used one (the state
        manifest records which).
    prune_every:
        Auto-prune period for the resumed engine (``None`` disables).
    """
    path = os.fspath(path)
    state_path = os.path.join(path, STATE_FILE)
    if not os.path.exists(state_path):
        raise FileNotFoundError(f"{path!r} is not an online-census checkpoint")
    with open(state_path) as fh:
        state = json.load(fh)
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path!r}: unrecognized checkpoint format {state.get('format')!r}")
    if state.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path!r}: checkpoint version {state.get('version')!r} is not "
            f"supported (this build reads version {CHECKPOINT_VERSION})"
        )
    if state["has_predicate"] and predicate is None:
        raise ValueError(
            "the snapshotted engine used a restriction predicate; re-supply "
            "it via load_checkpoint(..., predicate=...)"
        )
    if not state["has_predicate"] and predicate is not None:
        raise ValueError("the snapshotted engine used no predicate; got one")

    census = OnlineCensus(
        state["n_events"],
        TimingConstraints(delta_c=state["delta_c"], delta_w=state["delta_w"]),
        state["window"],
        max_nodes=state["max_nodes"],
        predicate=predicate,
        backend=backend,
        prune_every=prune_every,
    )
    # The page tail was validated when it was first streamed in; reopening
    # re-indexes it under the target backend without re-validation — and
    # when the target is the page format's own backend, the loaded
    # storage is used as-is (no event-tuple round-trip).
    loaded = TemporalGraph.load(os.path.join(path, GRAPH_DIR), mmap=False)
    storage_cls = type(census._graph.storage)
    if isinstance(loaded.storage, storage_cls):
        census._graph = loaded
    else:
        census._graph = TemporalGraph._from_storage(
            storage_cls.from_events(loaded.to_events(), presorted=True),
            name=loaded.name,
        )
    census._bind_kernel()
    census._offset = state["offset"]
    census._now = state["now"]
    census._pushed = state["pushed"]
    census._discovered = state["discovered"]
    census._expired = state["expired"]
    heap: list[tuple[float, int, _LedgerEntry]] = []
    for seq_no, (anchor_t, code, pair_values) in enumerate(state["ledger"]):
        pair_seq = tuple(None if p is None else PairType(p) for p in pair_values)
        # The node tuple and event indices are fan-out-time data (sliced-
        # view routing, predicate re-evaluation); a restored solo engine
        # never re-folds these entries, so they stay empty.
        entry = _LedgerEntry(anchor_t, seq_no, code, pair_seq, (), anchor_t, ())
        heap.append((anchor_t, seq_no, entry))
        census._code_counts[code] += 1
        for ptype in pair_seq:
            census._pair_counts[ptype] += 1
        census._pair_seq_counts[pair_seq] += 1
    heapq.heapify(heap)
    census._heap = heap
    census._seq = len(heap)
    census._total = len(heap)
    if census._total != state["total"]:
        raise ValueError(
            f"{path!r}: ledger holds {census._total} live instances but the "
            f"manifest records {state['total']} (corrupt checkpoint?)"
        )
    census._rebuild_prefixes()
    return census
