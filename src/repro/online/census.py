"""The incremental sliding-window census engine.

:class:`OnlineCensus` maintains, for a live event stream, exactly the
counters a batch :func:`~repro.algorithms.counting.run_census` would
produce over the trailing window ``[now - W, now]``:

* **Arrival.**  Events within one motif instance have strictly increasing
  timestamps, so a new arrival can only ever be the chronologically *last*
  event of an instance — every instance it completes is new, and every
  previously counted instance is untouched.  The engine keeps a
  :class:`_PrefixStore` of live *prefixes* (connected-growth sequences of
  fewer than ``n_events`` events that still satisfy the timing bounds),
  bucketed by node: an arrival extends exactly the prefixes sharing one
  of its endpoints whose chained deadline it meets — completing the
  ``n_events - 1``-long ones into counted instances and storing the
  shorter extensions as new prefixes.  Each prefix is built once, when
  its own last event arrives, so per-event cost is proportional to the
  arrival's local activity, never to history and never to a window
  rescan.
* **Expiry.**  A batch census of ``slice_time(t - W, t)`` keeps exactly
  the instances whose *anchor* (first event) has ``t_anchor >= t - W``
  — the anchor is the instance's earliest timestamp, so anchor-in-window
  means instance-in-window.  Counted instances sit in a min-heap keyed by
  anchor timestamp (the monotone expiry queue); each arrival pops the
  expired prefix of the heap and decrements the counters.  The horizon
  ``now - W`` is computed with the same arithmetic as the slice
  bisection, so the online counts match the batch slice bit-for-bit even
  at floating-point window edges.
* **Pruning.**  Events older than ``now - min(W, δ)`` (δ = the
  constraints' loose timespan bound) can neither join a future instance
  nor re-enter the window, so :meth:`prune` (or the ``prune_every``
  auto-trigger) drops them and rebases the internal graph, bounding
  memory by window activity on an unbounded stream.  Prefixes carry
  their own timestamps and edges, so pruning never invalidates them.

The storage contract stays the substrate: every arrival lands through the
backends' :meth:`~repro.storage.base.GraphStorage.append` tail path, and
checkpoint restore (:mod:`repro.online.checkpoint`) rebuilds the prefix
store by running the batch enumerator — and therefore its
:meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
candidate seam — over the retained tail.

Window-edge conventions mirror the rest of the library: the trailing
window is closed (an anchor at exactly ``now - W`` is still counted,
matching ``slice_time``'s ``bisect_left``), extension admission runs
through the execution engine's kernel
(:meth:`repro.engine.kernels.ExtensionKernel.extend_frontier` — the
batch enumerator's own deadline arithmetic, in its only
implementation), and the store's bucket prefilters are widened by the
same ulp slack the parallel engine's shard planner uses, so
floating-point never loses an instance at a boundary.
"""

from __future__ import annotations

import bisect
import heapq
import math
import time
from collections import Counter
from typing import Callable, Iterable, Iterator

import repro.obs as _obs
from repro.algorithms.counting import MotifCensus
from repro.algorithms.enumeration import Instance, enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import classify_pair
from repro.core.events import Event
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph
from repro.engine import compile_plan

Predicate = Callable[[TemporalGraph, Instance], bool]

#: Ulp multiplier for conservative window widening (mirrors
#: :mod:`repro.parallel.shards`: extra candidates are harmless, the exact
#: per-extension timing checks reject them; missing candidates would lose
#: instances).
_ULP_SLACK = 32.0

#: Pruning uses a much wider slack than the live prefilters so the
#: retained tail always covers everything a live prefix references, even
#: across float binade edges.
_PRUNE_SLACK = 1024.0


def _widen_down(bound: float) -> float:
    """Lower a window start by a few ulps (conservative prefilter bound)."""
    if not math.isfinite(bound):
        return bound
    return bound - _ULP_SLACK * math.ulp(abs(bound) + 1.0)


class _Prefix:
    """One live connected-growth prefix (fewer than ``n_events`` events).

    Self-contained — global event indices, edges, node set, first/last
    timestamps — so extending, counting and pruning never have to resolve
    anything against the graph.
    """

    __slots__ = ("seq", "edges", "nodes", "t_root", "t_last")

    def __init__(self, seq, edges, nodes, t_root, t_last) -> None:
        self.seq = seq
        self.edges = edges
        self.nodes = nodes
        self.t_root = t_root
        self.t_last = t_last


class _PrefixStore:
    """Live prefixes bucketed by node, scanned from the recent tail only.

    Within a bucket, prefixes are appended in arrival order, so the
    parallel ``t_last`` list is non-decreasing and one bisect finds the
    tail of prefixes an arrival could still extend (any extensible prefix
    has ``t_last`` within ``gap_bound`` — the tightest of ΔC, ΔW and W —
    of the arrival).  Gap-dead prefixes are reclaimed by a sweep whenever
    the stream clock outruns the previous sweep by more than
    ``gap_bound``, which bounds memory to the prefixes of roughly two
    windows without ever touching a still-extensible one.
    """

    __slots__ = ("gap_bound", "entries", "_buckets", "_sweep_clock")

    def __init__(self, gap_bound: float) -> None:
        self.gap_bound = gap_bound
        #: Total bucketed references (one per (prefix, node)), maintained
        #: incrementally — the O(1) memory gauge behind the observability
        #: layer's ``online.prefix_store.entries``, unlike ``__len__``,
        #: which dedups to distinct prefixes and walks every bucket.
        self.entries = 0
        self._buckets: dict[int, tuple[list[float], list[_Prefix]]] = {}
        self._sweep_clock: float | None = None

    def __len__(self) -> int:
        seen: set[int] = set()
        for _times, prefixes in self._buckets.values():
            seen.update(map(id, prefixes))
        return len(seen)

    def add(self, prefix: _Prefix) -> None:
        for node in prefix.nodes:
            bucket = self._buckets.get(node)
            if bucket is None:
                bucket = ([], [])
                self._buckets[node] = bucket
            bucket[0].append(prefix.t_last)
            bucket[1].append(prefix)
        self.entries += len(prefix.nodes)

    def candidates(self, u: int, v: int, now: float) -> list[_Prefix]:
        """Every prefix touching ``u`` or ``v`` still within the gap bound.

        Each prefix appears once (one touching both endpoints sits in
        both buckets).  The tail bound is conservative — exact timing is
        re-checked per extension — and the list is materialized up front
        so callers may grow the store while walking it.
        """
        t_lo = _widen_down(now - self.gap_bound)
        out: list[_Prefix] = []
        for node in (u, v):
            bucket = self._buckets.get(node)
            if bucket is None:
                continue
            times, prefixes = bucket
            start = bisect.bisect_left(times, t_lo)
            if not out:
                out.extend(prefixes[start:])
            else:
                seen = set(map(id, out))
                out.extend(
                    p for p in prefixes[start:] if id(p) not in seen
                )
        return out

    def maybe_sweep(self, now: float) -> None:
        """Reclaim gap-dead prefixes once per ``gap_bound`` of stream time."""
        if self._sweep_clock is None:
            self._sweep_clock = now
            return
        if now - self._sweep_clock <= self.gap_bound:
            return
        self._sweep_clock = now
        keep_from = _widen_down(now - self.gap_bound)
        for node in list(self._buckets):
            times, prefixes = self._buckets[node]
            start = bisect.bisect_left(times, keep_from)
            if start == 0:
                continue
            self.entries -= start
            if start >= len(prefixes):
                del self._buckets[node]
            else:
                self._buckets[node] = (times[start:], prefixes[start:])


class OnlineCensus:
    """Exact motif counts over the trailing window of a live stream.

    Parameters
    ----------
    n_events:
        Events per motif instance (the paper uses 3 and 4).
    constraints:
        ΔC / ΔW timing bounds applied to every instance, exactly as in
        :func:`~repro.algorithms.counting.run_census`.
    window:
        The sliding-window length W: at any time ``t`` the counters cover
        instances whose events all lie in the closed window
        ``[t - window, t]``.
    max_nodes:
        Optional cap on distinct nodes per instance (e.g. 3 for the
        paper's 3n3e family).
    predicate:
        Optional restriction applied to each complete instance *at
        discovery time*, against the live graph.  Counts match a batch
        census of the window slice when the verdict (a) depends only on
        the instance's δ-neighborhood inside the window — the same
        locality contract as :func:`repro.parallel.mark_shard_safe` —
        and (b) is stable under arrivals strictly later than the
        instance's last event.  Tick-boundary-sensitive predicates (the
        consecutive-events restriction counts an event at *exactly* a
        boundary timestamp as an interruption) satisfy (b) only on
        tie-free streams: a same-tick event arriving after discovery
        could flip an already committed verdict.
    backend:
        Storage backend for the internal live graph (``None`` = the
        ``REPRO_STORAGE`` env var, then the library default).
    prune_every:
        Auto-prune period, in pushed events: every that many arrivals the
        engine drops events no future arrival can touch (see
        :meth:`prune`).  ``None`` disables auto-pruning and the internal
        graph retains the full history.

    Notes
    -----
    ``push`` returns the newly counted instances as tuples of *global*
    event indices — indices keep counting across :meth:`prune` rebases,
    so index ``i`` always refers to the ``i``-th pushed event (plus any
    restored history).  Resolve them against :attr:`graph` only before
    the next prune.
    """

    def __init__(
        self,
        n_events: int,
        constraints: TimingConstraints,
        window: float,
        *,
        max_nodes: int | None = None,
        predicate: Predicate | None = None,
        backend: str | None = None,
        prune_every: int | None = None,
    ) -> None:
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        if not (window > 0 and math.isfinite(window)):
            raise ValueError("window must be positive and finite")
        if prune_every is not None and prune_every < 1:
            raise ValueError("prune_every must be a positive event count (or None)")
        self._n_events = n_events
        self._constraints = constraints
        self._window = float(window)
        self._max_nodes = max_nodes
        self._node_cap = n_events + 1 if max_nodes is None else max_nodes
        self._predicate = predicate
        self._prune_every = prune_every
        self._delta = constraints.loose_timespan_bound(n_events) if n_events > 1 else 0.0
        bounds = [
            b
            for b in (constraints.delta_c, constraints.delta_w, self._window)
            if b is not None
        ]
        self._prefixes = _PrefixStore(min(bounds))
        self._graph = TemporalGraph((), backend=backend)
        # The execution engine owns the extension-admission arithmetic:
        # arrivals extend prefixes through the plan's kernel, exactly as
        # the batch enumerator extends its frontier.  (The engine's own
        # predicate stays None — the online predicate needs the offset
        # translation in _count.)
        self._plan = compile_plan(
            n_events, constraints, None, self._graph.storage, max_nodes=max_nodes
        )
        self._bind_kernel()
        self._offset = 0  # global index of the retained graph's event 0
        self._now: float | None = None
        self._code_counts: Counter = Counter()
        self._pair_counts: Counter = Counter()
        self._pair_seq_counts: Counter = Counter()
        self._total = 0
        self._pushed = 0
        self._discovered = 0
        self._expired = 0
        self._since_prune = 0
        self._seq = 0  # heap tiebreaker (payloads are not comparable)
        self._heap: list[tuple[float, int, str, tuple]] = []
        # The observability recorder binds at construction (the null-
        # recorder contract): enable repro.obs before building the engine
        # you want to watch.  Disabled cost: one ``is None`` per push.
        self._obs = _obs.ACTIVE

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The internal live graph (the *retained tail* after pruning)."""
        return self._graph

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def constraints(self) -> TimingConstraints:
        return self._constraints

    @property
    def window(self) -> float:
        return self._window

    @property
    def now(self) -> float | None:
        """The stream clock: the latest pushed (or advanced-to) time."""
        return self._now

    @property
    def pushed(self) -> int:
        """Total events pushed over the engine's lifetime."""
        return self._pushed

    @property
    def discovered(self) -> int:
        """Total instances ever counted (monotone; expiry never lowers it)."""
        return self._discovered

    @property
    def expired(self) -> int:
        """Instances retired because their anchor slid out of the window."""
        return self._expired

    @property
    def live_instances(self) -> int:
        """Instances currently inside the window (== ``census().total``)."""
        return self._total

    @property
    def live_prefixes(self) -> int:
        """Prefixes the store currently retains (a memory gauge)."""
        return len(self._prefixes)

    # ------------------------------------------------------------------
    # the stream interface
    # ------------------------------------------------------------------
    def push(self, event: Event | tuple) -> list[Instance]:
        """Feed one arrival; return the newly counted instances.

        The event must not predate the stream clock (non-decreasing
        arrival times, the storage append contract).  Returned instances
        are tuples of global event indices in chronological order, each
        ending at the arrival; instances that fail the window bound or
        the predicate are neither counted nor returned.
        """
        rec = self._obs
        if rec is None:
            return self._push(event)
        start = time.perf_counter()
        out = self._push(event)
        rec.observe("online.push.seconds", time.perf_counter() - start)
        if out:
            rec.inc("online.push.instances", len(out))
        rec.set_gauge("online.prefix_store.entries", self._prefixes.entries)
        rec.set_gauge("online.expiry_heap.depth", len(self._heap))
        return out

    def _push(self, event: Event | tuple) -> list[Instance]:
        ev = event if isinstance(event, Event) else Event(*event)
        if self._now is not None and ev.t < self._now:
            raise ValueError(
                f"push requires non-decreasing times: got t={ev.t} "
                f"after the stream clock reached t={self._now}"
            )
        local = self._graph.append(ev)
        gidx = local + self._offset
        t_a = ev.t
        self._now = t_a
        self._pushed += 1
        horizon = t_a - self._window
        self._expire(horizon)

        out: list[Instance] = []
        k = self._n_events
        if k == 1:
            if self._count((gidx,), (ev.edge,), t_a):
                out.append((gidx,))
        else:
            u, v = ev.u, ev.v
            completions: list[tuple[Instance, tuple, float]] = []
            candidates = self._prefixes.candidates(u, v, t_a)
            # The engine kernel's event-major admission: strictly later
            # than the prefix's last event, at or before its chained
            # deadline, within the node cap — the exact arithmetic the
            # batch enumerator runs, in its only implementation.
            for pos, _idx, new_nodes in self._kernel.extend_frontier(
                candidates, local, local + 1
            ):
                prefix = candidates[pos]
                if prefix.t_root < horizon:
                    # Anchored before the window: the horizon only moves
                    # forward, so nothing grown from this prefix can ever
                    # be counted.
                    continue
                seq = prefix.seq + (gidx,)
                edges = prefix.edges + (ev.edge,)
                if len(seq) == k:
                    completions.append((seq, edges, prefix.t_root))
                else:
                    self._prefixes.add(
                        _Prefix(seq, edges, new_nodes, prefix.t_root, t_a)
                    )
            completions.sort(key=lambda item: item[0])
            for seq, edges, t_root in completions:
                if self._count(seq, edges, t_root):
                    out.append(seq)
            self._prefixes.add(_Prefix((gidx,), (ev.edge,), (u, v), t_a, t_a))
            self._prefixes.maybe_sweep(t_a)

        self._since_prune += 1
        if self._prune_every is not None and self._since_prune >= self._prune_every:
            self.prune()
        return out

    def _count(self, seq: Instance, edges: tuple, anchor_t: float) -> bool:
        """Run the predicate, then fold one completed instance in."""
        if self._predicate is not None:
            offset = self._offset
            local_inst = tuple(i - offset for i in seq)
            if not self._predicate(self._graph, local_inst):
                return False
        code = canonical_code(edges)
        pair_seq = tuple(
            classify_pair(edges[j], edges[j + 1]) for j in range(len(edges) - 1)
        )
        self._code_counts[code] += 1
        for ptype in pair_seq:
            self._pair_counts[ptype] += 1
        self._pair_seq_counts[pair_seq] += 1
        self._total += 1
        self._discovered += 1
        heapq.heappush(self._heap, (anchor_t, self._seq, code, pair_seq))
        self._seq += 1
        return True

    def drain(self, events: Iterable[Event | tuple]) -> Iterator[tuple[int, list[Instance]]]:
        """Push a whole (time-sorted) stream lazily.

        Yields ``(global_event_index, new_instances)`` per arrival,
        mirroring :func:`repro.algorithms.streaming.match_live`.
        """
        for event in events:
            idx = self._offset + len(self._graph)
            yield idx, self.push(event)

    def advance_to(self, now: float) -> int:
        """Move the stream clock forward without an event; expire instances.

        Returns the number of instances retired.  Subsequent pushes must
        not predate ``now`` (the window never moves backward).
        """
        if self._now is not None and now < self._now:
            raise ValueError(
                f"cannot advance backward: clock is at t={self._now}, got t={now}"
            )
        self._now = now
        before = self._expired
        self._expire(now - self._window)
        return self._expired - before

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """Per-code instance counts for the current window (a copy)."""
        return Counter(self._code_counts)

    def census(self) -> MotifCensus:
        """The window's counters as a :class:`MotifCensus` snapshot.

        Matches ``run_census(graph.slice(now - W, now), ...)`` on
        ``code_counts``, ``pair_counts``, ``pair_sequence_counts`` and
        ``total``.  The per-code sample lists (timespans, intermediate
        positions) are batch-only — their caps depend on enumeration
        order — and stay empty here.
        """
        return MotifCensus(
            n_events=self._n_events,
            constraints=self._constraints,
            code_counts=Counter(self._code_counts),
            pair_counts=Counter(self._pair_counts),
            pair_sequence_counts=Counter(self._pair_seq_counts),
            total=self._total,
        )

    def proportions(self) -> dict[str, float]:
        """Each code's share of the current window's instance count."""
        return self.census().proportions()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Drop retained events no future arrival can touch; return #dropped.

        An event can only matter again if a future arrival (at
        ``t' >= now``) can reach it, i.e. if its timestamp is within
        ``min(W, δ)`` of ``now`` — older events can neither extend a new
        instance (δ bound) nor anchor one inside a future window (W
        bound).  The cutoff is widened by a slack much larger than the
        live prefilters', so pruning can never race discovery at a
        floating-point edge.  Counted instances and live prefixes are
        unaffected (both store timestamps, codes and edges, not graph
        references), and global event indices stay stable via the rebase
        offset.
        """
        rec = self._obs
        if rec is None:
            return self._prune()
        start = time.perf_counter()
        dropped = self._prune()
        rec.observe("online.prune.seconds", time.perf_counter() - start)
        if dropped:
            rec.inc("online.prune.dropped", dropped)
            rec.inc("online.prune.rebases")
        return dropped

    def _prune(self) -> int:
        if self._now is None:
            return 0
        reach = self._delta if self._delta <= self._window else self._window
        cutoff = self._now - reach
        if math.isfinite(cutoff):
            cutoff -= _PRUNE_SLACK * math.ulp(abs(cutoff) + 1.0)
        storage = self._graph.storage
        kept = storage.slice_time(cutoff, math.inf).to_events()
        dropped = len(storage) - len(kept)
        self._since_prune = 0
        if dropped <= 0:
            return 0
        rebuilt = type(storage).from_events(kept, presorted=True)
        self._graph = TemporalGraph._from_storage(rebuilt, name=self._graph.name)
        self._bind_kernel()
        self._offset += dropped
        return dropped

    def _bind_kernel(self) -> None:
        """(Re)bind the plan's extension kernel to the current live graph.

        Called whenever the retained storage object changes: engine
        construction, :meth:`prune` rebases, checkpoint restores.
        """
        self._kernel = self._plan.bind(self._graph.storage)

    # ------------------------------------------------------------------
    # checkpoints (numpy page persistence; see repro.online.checkpoint)
    # ------------------------------------------------------------------
    def snapshot(self, path) -> None:
        """Write a restorable checkpoint directory (prunes first).

        The checkpoint holds the retained graph tail as a ``"numpy"``
        page directory plus a JSON state manifest; requires NumPy.  See
        :func:`repro.online.checkpoint.save_checkpoint`.
        """
        from repro.online.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def restore(
        cls,
        path,
        *,
        backend: str | None = None,
        predicate: Predicate | None = None,
        prune_every: int | None = None,
    ) -> "OnlineCensus":
        """Reopen a :meth:`snapshot` checkpoint and resume the stream.

        ``predicate`` is not serializable and must be re-supplied when
        the original engine used one.  See
        :func:`repro.online.checkpoint.load_checkpoint`.
        """
        from repro.online.checkpoint import load_checkpoint

        return load_checkpoint(
            path, backend=backend, predicate=predicate, prune_every=prune_every
        )

    def _rebuild_prefixes(self) -> None:
        """Regrow the prefix store from the retained tail (restore path).

        A live prefix is nothing but a small instance — a ``j``-event
        instance for ``j < n_events`` — whose chained deadline has not
        passed and whose anchor is still inside the window, so the batch
        enumerator (and therefore the storage contract's
        ``adjacent_events_between`` candidate seam) re-derives the store
        exactly from the graph tail a checkpoint carries.
        """
        if self._n_events == 1 or self._now is None:
            return
        graph = self._graph
        now = self._now
        horizon = now - self._window
        event_at = graph.storage.event_at
        offset = self._offset
        rebuilt: list[_Prefix] = []
        for j in range(1, self._n_events):
            for inst in enumerate_instances(
                graph, j, self._constraints, max_nodes=self._node_cap
            ):
                first = event_at(inst[0])
                last = event_at(inst[-1])
                if first.t < horizon:
                    continue
                if now > self._constraints.next_event_deadline(first.t, last.t):
                    continue
                edges = tuple(event_at(i).edge for i in inst)
                nodes: tuple[int, ...] = ()
                for idx in inst:
                    ev = event_at(idx)
                    for n in (ev.u, ev.v):
                        if n not in nodes:
                            nodes = nodes + (n,)
                rebuilt.append(
                    _Prefix(
                        tuple(i + offset for i in inst),
                        edges,
                        nodes,
                        first.t,
                        last.t,
                    )
                )
        # Buckets bisect on non-decreasing t_last (live insertion is in
        # arrival order); restore must re-install in the same order.
        rebuilt.sort(key=lambda p: (p.t_last, p.seq))
        for prefix in rebuilt:
            self._prefixes.add(prefix)
        self._prefixes._sweep_clock = now

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _expire(self, horizon: float) -> None:
        """Retire every instance whose anchor fell below ``horizon``.

        Strictly-below: an anchor at exactly ``now - W`` is still inside
        the closed window, matching ``slice_time``'s ``bisect_left``.
        """
        heap = self._heap
        retired = 0
        while heap and heap[0][0] < horizon:
            _t, _n, code, pair_seq = heapq.heappop(heap)
            retired += 1
            self._code_counts[code] -= 1
            if not self._code_counts[code]:
                del self._code_counts[code]
            for ptype in pair_seq:
                self._pair_counts[ptype] -= 1
                if not self._pair_counts[ptype]:
                    del self._pair_counts[ptype]
            self._pair_seq_counts[pair_seq] -= 1
            if not self._pair_seq_counts[pair_seq]:
                del self._pair_seq_counts[pair_seq]
            self._total -= 1
            self._expired += 1
        if retired and self._obs is not None:
            self._obs.inc("online.expire.retired", retired)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OnlineCensus {self._n_events}-event "
            f"{self._constraints.describe()} W={self._window:g}: "
            f"{self._total} live instances, {self._pushed} events pushed>"
        )
