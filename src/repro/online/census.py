"""The incremental sliding-window census engine.

:class:`OnlineCensus` maintains, for a live event stream, exactly the
counters a batch :func:`~repro.algorithms.counting.run_census` would
produce over the trailing window ``[now - W, now]``:

* **Arrival.**  Events within one motif instance have strictly increasing
  timestamps, so a new arrival can only ever be the chronologically *last*
  event of an instance — every instance it completes is new, and every
  previously counted instance is untouched.  The engine keeps a
  :class:`_PrefixStore` of live *prefixes* (connected-growth sequences of
  fewer than ``n_events`` events that still satisfy the timing bounds),
  bucketed by node: an arrival extends exactly the prefixes sharing one
  of its endpoints whose chained deadline it meets — completing the
  ``n_events - 1``-long ones into counted instances and storing the
  shorter extensions as new prefixes.  Each prefix is built once, when
  its own last event arrives, so per-event cost is proportional to the
  arrival's local activity, never to history and never to a window
  rescan.
* **Expiry.**  A batch census of ``slice_time(t - W, t)`` keeps exactly
  the instances whose *anchor* (first event) has ``t_anchor >= t - W``
  — the anchor is the instance's earliest timestamp, so anchor-in-window
  means instance-in-window.  Counted instances sit in a min-heap keyed by
  anchor timestamp (the monotone expiry queue); each arrival pops the
  expired prefix of the heap and decrements the counters.  The horizon
  ``now - W`` is computed with the same arithmetic as the slice
  bisection, so the online counts match the batch slice bit-for-bit even
  at floating-point window edges.
* **Pruning.**  Events older than ``now - min(W, δ)`` (δ = the
  constraints' loose timespan bound) can neither join a future instance
  nor re-enter the window, so :meth:`prune` (or the ``prune_every``
  auto-trigger) drops them and rebases the internal graph, bounding
  memory by window activity on an unbounded stream.  Prefixes carry
  their own timestamps and edges, so pruning never invalidates them.

The storage contract stays the substrate: every arrival lands through the
backends' :meth:`~repro.storage.base.GraphStorage.append` tail path, and
checkpoint restore (:mod:`repro.online.checkpoint`) rebuilds the prefix
store by running the batch enumerator — and therefore its
:meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
candidate seam — over the retained tail.

Window-edge conventions mirror the rest of the library: the trailing
window is closed (an anchor at exactly ``now - W`` is still counted,
matching ``slice_time``'s ``bisect_left``), extension admission runs
through the execution engine's kernel
(:meth:`repro.engine.kernels.ExtensionKernel.extend_frontier` — the
batch enumerator's own deadline arithmetic, in its only
implementation), and the store's bucket prefilters are widened by the
same ulp slack the parallel engine's shard planner uses, so
floating-point never loses an instance at a boundary.
"""

from __future__ import annotations

import bisect
import math
import time
from collections import Counter
from typing import Callable, Iterable, Iterator

import repro.obs as _obs
from repro.algorithms.counting import MotifCensus
from repro.algorithms.enumeration import Instance
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.online.multiview import MultiViewCensus

Predicate = Callable[[TemporalGraph, Instance], bool]

#: Ulp multiplier for conservative window widening (mirrors
#: :mod:`repro.parallel.shards`: extra candidates are harmless, the exact
#: per-extension timing checks reject them; missing candidates would lose
#: instances).
_ULP_SLACK = 32.0

#: Pruning uses a much wider slack than the live prefilters so the
#: retained tail always covers everything a live prefix references, even
#: across float binade edges.
_PRUNE_SLACK = 1024.0


def _widen_down(bound: float) -> float:
    """Lower a window start by a few ulps (conservative prefilter bound)."""
    if not math.isfinite(bound):
        return bound
    return bound - _ULP_SLACK * math.ulp(abs(bound) + 1.0)


class _Prefix:
    """One live connected-growth prefix (fewer than ``n_events`` events).

    Self-contained — global event indices, edges, node set, first/last
    timestamps — so extending, counting and pruning never have to resolve
    anything against the graph.
    """

    __slots__ = ("seq", "edges", "nodes", "t_root", "t_last")

    def __init__(self, seq, edges, nodes, t_root, t_last) -> None:
        self.seq = seq
        self.edges = edges
        self.nodes = nodes
        self.t_root = t_root
        self.t_last = t_last


class _PrefixStore:
    """Live prefixes bucketed by node, scanned from the recent tail only.

    Within a bucket, prefixes are appended in arrival order, so the
    parallel ``t_last`` list is non-decreasing and one bisect finds the
    tail of prefixes an arrival could still extend (any extensible prefix
    has ``t_last`` within ``gap_bound`` — the tightest of ΔC, ΔW and W —
    of the arrival).  Gap-dead prefixes are reclaimed by a sweep whenever
    the stream clock outruns the previous sweep by more than
    ``gap_bound``, which bounds memory to the prefixes of roughly two
    windows without ever touching a still-extensible one.
    """

    __slots__ = ("gap_bound", "entries", "_buckets", "_sweep_clock")

    def __init__(self, gap_bound: float) -> None:
        self.gap_bound = gap_bound
        #: Total bucketed references (one per (prefix, node)), maintained
        #: incrementally — the O(1) memory gauge behind the observability
        #: layer's ``online.prefix_store.entries``, unlike ``__len__``,
        #: which dedups to distinct prefixes and walks every bucket.
        self.entries = 0
        self._buckets: dict[int, tuple[list[float], list[_Prefix]]] = {}
        self._sweep_clock: float | None = None

    def __len__(self) -> int:
        seen: set[int] = set()
        for _times, prefixes in self._buckets.values():
            seen.update(map(id, prefixes))
        return len(seen)

    def add(self, prefix: _Prefix) -> None:
        for node in prefix.nodes:
            bucket = self._buckets.get(node)
            if bucket is None:
                bucket = ([], [])
                self._buckets[node] = bucket
            bucket[0].append(prefix.t_last)
            bucket[1].append(prefix)
        self.entries += len(prefix.nodes)

    def candidates(self, u: int, v: int, now: float) -> list[_Prefix]:
        """Every prefix touching ``u`` or ``v`` still within the gap bound.

        Each prefix appears once (one touching both endpoints sits in
        both buckets).  The tail bound is conservative — exact timing is
        re-checked per extension — and the list is materialized up front
        so callers may grow the store while walking it.
        """
        t_lo = _widen_down(now - self.gap_bound)
        out: list[_Prefix] = []
        for node in (u, v):
            bucket = self._buckets.get(node)
            if bucket is None:
                continue
            times, prefixes = bucket
            start = bisect.bisect_left(times, t_lo)
            if not out:
                out.extend(prefixes[start:])
            else:
                seen = set(map(id, out))
                out.extend(
                    p for p in prefixes[start:] if id(p) not in seen
                )
        return out

    def maybe_sweep(self, now: float) -> None:
        """Reclaim gap-dead prefixes once per ``gap_bound`` of stream time."""
        if self._sweep_clock is None:
            self._sweep_clock = now
            return
        if now - self._sweep_clock <= self.gap_bound:
            return
        self._sweep_clock = now
        keep_from = _widen_down(now - self.gap_bound)
        for node in list(self._buckets):
            times, prefixes = self._buckets[node]
            start = bisect.bisect_left(times, keep_from)
            if start == 0:
                continue
            self.entries -= start
            if start >= len(prefixes):
                del self._buckets[node]
            else:
                self._buckets[node] = (times[start:], prefixes[start:])


class OnlineCensus:
    """Exact motif counts over the trailing window of a live stream.

    Parameters
    ----------
    n_events:
        Events per motif instance (the paper uses 3 and 4).
    constraints:
        ΔC / ΔW timing bounds applied to every instance, exactly as in
        :func:`~repro.algorithms.counting.run_census`.
    window:
        The sliding-window length W: at any time ``t`` the counters cover
        instances whose events all lie in the closed window
        ``[t - window, t]``.
    max_nodes:
        Optional cap on distinct nodes per instance (e.g. 3 for the
        paper's 3n3e family).
    predicate:
        Optional restriction applied to each complete instance *at
        discovery time*, against the live graph.  Counts match a batch
        census of the window slice when the verdict (a) depends only on
        the instance's δ-neighborhood inside the window — the same
        locality contract as :func:`repro.parallel.mark_shard_safe` —
        and (b) is stable under arrivals strictly later than the
        instance's last event.  Tick-boundary-sensitive predicates (the
        consecutive-events restriction counts an event at *exactly* a
        boundary timestamp as an interruption) satisfy (b) only on
        tie-free streams: a same-tick event arriving after discovery
        could flip an already committed verdict.  Predicates carrying a
        truthy ``tick_boundary_sensitive`` attribute (the library's own
        restrictions mark themselves) raise a :class:`RuntimeWarning`
        once if the stream actually produces a timestamp tie.
    backend:
        Storage backend for the internal live graph (``None`` = the
        ``REPRO_STORAGE`` env var, then the library default).
    prune_every:
        Auto-prune period, in pushed events: every that many arrivals the
        engine drops events no future arrival can touch (see
        :meth:`prune`).  ``None`` disables auto-pruning and the internal
        graph retains the full history.

    Notes
    -----
    ``push`` returns the newly counted instances as tuples of *global*
    event indices — indices keep counting across :meth:`prune` rebases,
    so index ``i`` always refers to the ``i``-th pushed event (plus any
    restored history).  Resolve them against :attr:`graph` only before
    the next prune.

    Since the multi-view refactor (PR 9) this class is a facade over a
    single-view :class:`repro.online.multiview.MultiViewCensus` with
    ``retention == window`` — there is exactly one implementation of
    the push/expire/prune arithmetic, and the facade's counters are the
    solo view's counters.
    """

    def __init__(
        self,
        n_events: int,
        constraints: TimingConstraints,
        window: float,
        *,
        max_nodes: int | None = None,
        predicate: Predicate | None = None,
        backend: str | None = None,
        prune_every: int | None = None,
    ) -> None:
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        if not (window > 0 and math.isfinite(window)):
            raise ValueError("window must be positive and finite")
        self._n_events = n_events
        self._constraints = constraints
        self._window = float(window)
        self._max_nodes = max_nodes
        self._predicate = predicate
        self._prune_every = prune_every
        self._mv = MultiViewCensus(
            n_events,
            constraints,
            self._window,
            max_nodes=max_nodes,
            backend=backend,
            prune_every=prune_every,
        )
        self._view = self._mv.add_view(
            "__solo__", self._window, predicate=predicate, backfill=False
        )
        # The facade's push returns the solo view's accepted instances,
        # so the view collects them per arrival.
        self._view.collect = True
        self._mv._collecting.append(self._view)
        # The observability recorder binds at construction (the null-
        # recorder contract): enable repro.obs before building the engine
        # you want to watch.  Disabled cost: one ``is None`` per push.
        self._obs = _obs.ACTIVE

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The internal live graph (the *retained tail* after pruning)."""
        return self._mv._graph

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def constraints(self) -> TimingConstraints:
        return self._constraints

    @property
    def window(self) -> float:
        return self._window

    @property
    def now(self) -> float | None:
        """The stream clock: the latest pushed (or advanced-to) time."""
        return self._mv._now

    @property
    def pushed(self) -> int:
        """Total events pushed over the engine's lifetime."""
        return self._mv._pushed

    @property
    def discovered(self) -> int:
        """Total instances ever counted (monotone; expiry never lowers it)."""
        return self._view.discovered

    @property
    def expired(self) -> int:
        """Instances retired because their anchor slid out of the window."""
        return self._view.expired

    @property
    def live_instances(self) -> int:
        """Instances currently inside the window (== ``census().total``)."""
        return self._view.total

    @property
    def live_prefixes(self) -> int:
        """Prefixes the store currently retains (a memory gauge)."""
        return len(self._mv._prefixes)

    # ------------------------------------------------------------------
    # the stream interface
    # ------------------------------------------------------------------
    def push(self, event: Event | tuple) -> list[Instance]:
        """Feed one arrival; return the newly counted instances.

        The event must not predate the stream clock (non-decreasing
        arrival times, the storage append contract).  Returned instances
        are tuples of global event indices in chronological order, each
        ending at the arrival; instances that fail the window bound or
        the predicate are neither counted nor returned.
        """
        rec = self._obs
        mv = self._mv
        view = self._view
        if rec is None:
            mv._push(event)
            return view.just_counted
        start = time.perf_counter()
        mv._push(event)
        out = view.just_counted
        rec.observe("online.push.seconds", time.perf_counter() - start)
        if out:
            rec.inc("online.push.instances", len(out))
        rec.set_gauge("online.prefix_store.entries", mv._prefixes.entries)
        rec.set_gauge("online.expiry_heap.depth", len(view.heap))
        return out

    def drain(self, events: Iterable[Event | tuple]) -> Iterator[tuple[int, list[Instance]]]:
        """Push a whole (time-sorted) stream lazily.

        Yields ``(global_event_index, new_instances)`` per arrival,
        mirroring :func:`repro.algorithms.streaming.match_live`.
        """
        mv = self._mv
        for event in events:
            idx = mv._offset + len(mv._graph)
            yield idx, self.push(event)

    def advance_to(self, now: float) -> int:
        """Move the stream clock forward without an event; expire instances.

        Returns the number of instances retired.  Subsequent pushes must
        not predate ``now`` (the window never moves backward).
        """
        before = self._view.expired
        self._mv.advance_to(now)
        return self._view.expired - before

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """Per-code instance counts for the current window (a copy)."""
        return Counter(self._view.code_counts)

    def census(self) -> MotifCensus:
        """The window's counters as a :class:`MotifCensus` snapshot.

        Matches ``run_census(graph.slice(now - W, now), ...)`` on
        ``code_counts``, ``pair_counts``, ``pair_sequence_counts`` and
        ``total``.  The per-code sample lists (timespans, intermediate
        positions) are batch-only — their caps depend on enumeration
        order — and stay empty here.
        """
        view = self._view
        return MotifCensus(
            n_events=self._n_events,
            constraints=self._constraints,
            code_counts=Counter(view.code_counts),
            pair_counts=Counter(view.pair_counts),
            pair_sequence_counts=Counter(view.pair_seq_counts),
            total=view.total,
        )

    def proportions(self) -> dict[str, float]:
        """Each code's share of the current window's instance count."""
        return self.census().proportions()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Drop retained events no future arrival can touch; return #dropped.

        An event can only matter again if a future arrival (at
        ``t' >= now``) can reach it, i.e. if its timestamp is within
        ``min(W, δ)`` of ``now`` — older events can neither extend a new
        instance (δ bound) nor anchor one inside a future window (W
        bound).  The cutoff is widened by a slack much larger than the
        live prefilters', so pruning can never race discovery at a
        floating-point edge.  Counted instances and live prefixes are
        unaffected (both store timestamps, codes and edges, not graph
        references), and global event indices stay stable via the rebase
        offset.
        """
        return self._mv.prune()

    # ------------------------------------------------------------------
    # checkpoints (numpy page persistence; see repro.online.checkpoint)
    # ------------------------------------------------------------------
    def snapshot(self, path) -> None:
        """Write a restorable checkpoint directory (prunes first).

        The checkpoint holds the retained graph tail as a ``"numpy"``
        page directory plus a JSON state manifest; requires NumPy.  See
        :func:`repro.online.checkpoint.save_checkpoint`.
        """
        from repro.online.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def restore(
        cls,
        path,
        *,
        backend: str | None = None,
        predicate: Predicate | None = None,
        prune_every: int | None = None,
    ) -> "OnlineCensus":
        """Reopen a :meth:`snapshot` checkpoint and resume the stream.

        ``predicate`` is not serializable and must be re-supplied when
        the original engine used one.  See
        :func:`repro.online.checkpoint.load_checkpoint`.
        """
        from repro.online.checkpoint import load_checkpoint

        return load_checkpoint(
            path, backend=backend, predicate=predicate, prune_every=prune_every
        )

    # ------------------------------------------------------------------
    # internals delegated to the shared core (checkpoint + observability
    # helpers reach these; keep their shapes stable)
    # ------------------------------------------------------------------
    @property
    def _graph(self) -> TemporalGraph:
        return self._mv._graph

    @_graph.setter
    def _graph(self, graph: TemporalGraph) -> None:
        self._mv._graph = graph

    @property
    def _prefixes(self) -> _PrefixStore:
        return self._mv._prefixes

    @property
    def _heap(self) -> list:
        return self._view.heap

    @_heap.setter
    def _heap(self, heap: list) -> None:
        view = self._view
        view.heap = heap
        view.wake_t = None
        if heap:
            self._mv._schedule_wake(view)

    @property
    def _offset(self) -> int:
        return self._mv._offset

    @_offset.setter
    def _offset(self, value: int) -> None:
        self._mv._offset = value

    @property
    def _now(self) -> float | None:
        return self._mv._now

    @_now.setter
    def _now(self, value: float | None) -> None:
        self._mv._now = value
        self._mv._last_event_t = value

    @property
    def _pushed(self) -> int:
        return self._mv._pushed

    @_pushed.setter
    def _pushed(self, value: int) -> None:
        self._mv._pushed = value

    @property
    def _discovered(self) -> int:
        return self._view.discovered

    @_discovered.setter
    def _discovered(self, value: int) -> None:
        self._view.discovered = value
        self._mv._discovered = value

    @property
    def _expired(self) -> int:
        return self._view.expired

    @_expired.setter
    def _expired(self, value: int) -> None:
        self._view.expired = value

    @property
    def _total(self) -> int:
        return self._view.total

    @_total.setter
    def _total(self, value: int) -> None:
        self._view.total = value

    @property
    def _seq(self) -> int:
        return self._mv._seq

    @_seq.setter
    def _seq(self, value: int) -> None:
        self._mv._seq = value

    @property
    def _code_counts(self) -> Counter:
        return self._view.code_counts

    @property
    def _pair_counts(self) -> Counter:
        return self._view.pair_counts

    @property
    def _pair_seq_counts(self) -> Counter:
        return self._view.pair_seq_counts

    def _bind_kernel(self) -> None:
        self._mv._bind_kernel()

    def _rebuild_prefixes(self) -> None:
        self._mv._rebuild_prefixes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OnlineCensus {self._n_events}-event "
            f"{self._constraints.describe()} W={self._window:g}: "
            f"{self._view.total} live instances, {self._mv._pushed} events pushed>"
        )
