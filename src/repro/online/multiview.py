"""Multi-view online serving: many trailing windows over one stream.

:class:`MultiViewCensus` generalizes the single-window
:class:`~repro.online.census.OnlineCensus` to *thousands* of concurrent
views over one arrival stream.  The expensive state is paid once,
shared by every view:

* the retained **graph tail** (storage-backend append path + prune
  rebase, exactly as in the single-view engine),
* the node-bucketed **prefix store** of live partial instances,
* the compiled **plan/kernel** pair from :mod:`repro.engine`, and
* the **ledger** — a retention-bounded min-heap of every discovered
  instance (anchor time, canonical code, pair sequence, node set) that
  lets a view registered mid-stream backfill its counters instead of
  starting cold.

Per-view state is deliberately thin: three counters, an anchor-time
expiry heap of *references* into the shared ledger entries, and a
scheduled wake time.  One ``push(event)`` therefore runs discovery once
and fans each completed instance out to the views that accept it:

* **plain window views** differ only in their window length ``W``; they
  are kept sorted by ``W`` descending so the fan-out loop stops at the
  first view whose window no longer reaches the instance's anchor;
* **node-sliced views** (``nodes=``) count only instances whose node
  set lies inside the view's node set; a node -> views index routes
  each instance to the few views watching its nodes, so ten tenants or
  a thousand cost the same when their node sets are disjoint;
* **restricted views** (``predicate=``) apply their restriction at
  discovery time against the shared graph, with the same
  offset-translation and stability caveats as the single-view engine.

Expiry is *scheduled*, not polled: each view with live instances owns
one entry in a global wake heap keyed by the earliest time its oldest
anchor can leave its window, so a push touches only the views that
actually have something to retire — idle views cost nothing per event.
Wake times are widened down by the library's standard ulp slack and the
exact ``anchor < now - W`` comparison is re-run on fire, so the
floating-point shortcut can fire early (a no-op re-check) but never
late; the per-view insert/expire sequence — and therefore the counter
*key order* — stays bit-identical to an independent ``OnlineCensus``.

``retention`` bounds everything: it is the largest window any view may
use, the prefix store's gap bound and the ledger's horizon.  Pass
``math.inf`` for an unbounded ledger (every view added later backfills
to exact from-start parity, at the price of unbounded memory).

Views can be **degraded** under load (:meth:`degrade_view`): a degraded
view leaves the exact fan-out path entirely and answers
:meth:`view_counts` with the PR 5 root-sampling estimator over the
window slice, with per-code Horvitz–Thompson ``stderr`` bars — the same
shape the census service's overflow policy produces for queries.

:class:`~repro.online.census.OnlineCensus` is now a facade over a
single-view ``MultiViewCensus`` with ``retention == window``, so there
is exactly one implementation of the push/expire/prune arithmetic.
"""

from __future__ import annotations

import heapq
import math
import time
import warnings
from collections import Counter
from typing import Callable, Iterable, Iterator

import repro.obs as _obs
from repro.algorithms.counting import MotifCensus
from repro.algorithms.enumeration import Instance, enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import classify_pair
from repro.core.events import Event
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph
from repro.engine import compile_plan

Predicate = Callable[[TemporalGraph, Instance], bool]

__all__ = ["MultiViewCensus"]


class _LedgerEntry:
    """One discovered instance, shared between the ledger and view heaps.

    Self-contained (anchor/last timestamps, canonical code, pair
    sequence, node tuple, global event indices) so views never resolve
    anything against the graph.  Heaps hold ``(anchor_t, seq, entry)``
    triples — the unique ``seq`` tiebreak keeps ordering at C tuple
    speed and the entry itself out of every comparison.
    """

    __slots__ = ("anchor_t", "seq", "code", "pair_seq", "nodes", "t_last", "events")

    def __init__(self, anchor_t, seq, code, pair_seq, nodes, t_last, events) -> None:
        self.anchor_t = anchor_t
        self.seq = seq
        self.code = code
        self.pair_seq = pair_seq
        self.nodes = nodes
        self.t_last = t_last
        self.events = events


#: The heap element shape shared by the ledger and every view's heap.
_HeapItem = tuple[float, int, _LedgerEntry]


class _ViewState:
    """Counters + expiry heap: everything one registered view owns."""

    __slots__ = (
        "name",
        "window",
        "predicate",
        "nodes",
        "vseq",
        "mode",
        "q",
        "seed",
        "code_counts",
        "pair_counts",
        "pair_seq_counts",
        "total",
        "discovered",
        "expired",
        "heap",
        "wake_t",
        "dropped",
        "collect",
        "just_counted",
    )

    def __init__(self, name, window, predicate, nodes, vseq) -> None:
        self.name = name
        self.window = window
        self.predicate = predicate
        self.nodes = nodes
        self.vseq = vseq
        self.mode = "exact"
        self.q: float | None = None
        self.seed: int | None = None
        self.code_counts: Counter = Counter()
        self.pair_counts: Counter = Counter()
        self.pair_seq_counts: Counter = Counter()
        self.total = 0
        self.discovered = 0
        self.expired = 0
        self.heap: list[_HeapItem] = []
        self.wake_t: float | None = None
        self.dropped = False
        self.collect = False
        self.just_counted: list[Instance] = []


class MultiViewCensus:
    """Exact trailing-window motif counts for many views over one stream.

    Parameters
    ----------
    n_events:
        Events per motif instance, shared by every view.
    constraints:
        ΔC / ΔW timing bounds, shared by every view.
    retention:
        The largest window any view may use, and how long discovered
        instances stay in the backfill ledger.  ``math.inf`` keeps the
        ledger unbounded.
    max_nodes:
        Optional distinct-node cap per instance, shared by every view.
    backend / prune_every:
        As on :class:`~repro.online.census.OnlineCensus`; pruning uses
        the reach ``min(δ, retention)``, widened to the largest
        *degraded* view's window — degraded views estimate over the
        retained window slice at read time, so their whole window must
        survive pruning even when the timing bound δ is shorter.
    registry:
        Metrics registry to record into (``None`` = the process-global
        :data:`repro.obs.ACTIVE` recorder at construction time).  The
        census service passes its own server registry here so stream
        metrics surface in ``stats``.

    Notes
    -----
    Views sharing one engine must share ``(n_events, constraints,
    max_nodes)`` — those parameters shape the prefix store and the
    compiled kernel.  Views differ in window length, node slice and
    restriction predicate, and can be added or dropped live
    (:meth:`add_view` / :meth:`drop_view`).
    """

    def __init__(
        self,
        n_events: int,
        constraints: TimingConstraints,
        retention: float,
        *,
        max_nodes: int | None = None,
        backend: str | None = None,
        prune_every: int | None = None,
        registry=None,
    ) -> None:
        # Local import: census.py imports this module's class for the
        # facade, so the store helpers are pulled lazily to keep the
        # module import order a plain DAG at call time.
        from repro.online.census import _PrefixStore

        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        if not (retention > 0) or math.isnan(retention):
            raise ValueError("retention must be positive (math.inf = unbounded)")
        if prune_every is not None and prune_every < 1:
            raise ValueError("prune_every must be a positive event count (or None)")
        self._n_events = n_events
        self._constraints = constraints
        self._retention = float(retention)
        self._max_nodes = max_nodes
        self._node_cap = n_events + 1 if max_nodes is None else max_nodes
        self._prune_every = prune_every
        self._delta = constraints.loose_timespan_bound(n_events) if n_events > 1 else 0.0
        bounds = [
            b
            for b in (constraints.delta_c, constraints.delta_w, self._retention)
            if b is not None and math.isfinite(b)
        ]
        self._prefixes = _PrefixStore(min(bounds) if bounds else math.inf)
        self._graph = TemporalGraph((), backend=backend)
        self._plan = compile_plan(
            n_events, constraints, None, self._graph.storage, max_nodes=max_nodes
        )
        self._bind_kernel()
        self._offset = 0
        self._now: float | None = None
        self._last_event_t: float | None = None
        self._saw_tie = False
        self._pushed = 0
        self._discovered = 0
        self._since_prune = 0
        self._seq = 0
        self._ledger: list[_HeapItem] = []
        self._retired = 0
        self._unwarned_sensitive: list[_ViewState] = []
        # View registries: every view by name, the plain (unsliced)
        # exact views sorted by window descending for the early-exit
        # fan-out loop, and the node -> sliced-views routing index.
        self._views: dict[str, _ViewState] = {}
        self._flat: list[_ViewState] = []
        self._node_index: dict[int, list[_ViewState]] = {}
        self._collecting: list[_ViewState] = []
        self._vseq = 0
        # The global wake heap: (wake_t, view.vseq, view) — one live
        # entry per view with instances, plus harmless stale entries
        # invalidated by the view's own wake_t.
        self._wake: list[tuple[float, int, _ViewState]] = []
        self._obs = registry if registry is not None else _obs.ACTIVE

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalGraph:
        """The shared live graph (the retained tail after pruning)."""
        return self._graph

    @property
    def n_events(self) -> int:
        return self._n_events

    @property
    def constraints(self) -> TimingConstraints:
        return self._constraints

    @property
    def retention(self) -> float:
        """Upper bound on view windows == the ledger horizon."""
        return self._retention

    @property
    def now(self) -> float | None:
        return self._now

    @property
    def pushed(self) -> int:
        return self._pushed

    @property
    def discovered(self) -> int:
        """Instances ever discovered by the shared core (view-independent)."""
        return self._discovered

    @property
    def live_prefixes(self) -> int:
        return len(self._prefixes)

    @property
    def ledger_depth(self) -> int:
        """Discovered instances still inside the retention horizon."""
        return len(self._ledger)

    def view_names(self) -> tuple[str, ...]:
        """Registered view names, in registration order."""
        return tuple(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    # ------------------------------------------------------------------
    # view lifecycle
    # ------------------------------------------------------------------
    def add_view(
        self,
        name: str,
        window: float,
        *,
        predicate: Predicate | None = None,
        nodes: Iterable[int] | None = None,
        backfill: bool = True,
    ) -> _ViewState:
        """Register a view; live on a running stream.

        Parameters
        ----------
        window:
            The view's trailing-window length; must not exceed
            ``retention``.
        predicate:
            Optional restriction, same contract as the single-view
            engine's.  Predicate views cannot backfill (the verdict must
            run at discovery time, against the graph as it then was) —
            pass ``backfill=False`` explicitly to start one cold.
        nodes:
            Optional node slice: the view counts only instances whose
            node set is contained in this set.
        backfill:
            Replay the retained ledger through the new view so its
            counters match an engine that watched the stream from the
            start (exactly, for anchors inside the retention horizon).
            ``False`` starts the view empty, counting only instances
            discovered after registration.

        Returns the view's state record (counters are live references —
        read them through :meth:`counts` / :meth:`view_counts`).
        """
        if not isinstance(name, str) or not name:
            raise ValueError("view name must be a non-empty string")
        if name in self._views:
            raise ValueError(f"view {name!r} already registered")
        if not (window > 0 and math.isfinite(window)):
            raise ValueError("window must be positive and finite")
        if window > self._retention:
            raise ValueError(
                f"view window {window!r} exceeds the engine retention "
                f"{self._retention!r}; raise retention at construction"
            )
        if predicate is not None and backfill:
            raise ValueError(
                "restriction predicates run at discovery time and cannot be "
                "applied to already-discovered ledger entries; pass "
                "backfill=False to start a restricted view cold"
            )
        node_set = None if nodes is None else frozenset(nodes)
        view = _ViewState(name, float(window), predicate, node_set, self._vseq)
        self._vseq += 1
        self._views[name] = view
        if node_set is None:
            self._flat.append(view)
            self._flat.sort(key=lambda v: (-v.window, v.vseq))
        else:
            for node in node_set:
                self._node_index.setdefault(node, []).append(view)
        if predicate is not None and getattr(
            predicate, "tick_boundary_sensitive", False
        ):
            if self._saw_tie:
                self._warn_ties(view)
            else:
                self._unwarned_sensitive.append(view)
        if backfill and self._ledger:
            self._backfill(view)
        rec = self._obs
        if rec is not None:
            rec.inc("online.view.added")
            rec.set_gauge("online.view.live", len(self._views))
        return view

    def drop_view(self, name: str) -> bool:
        """Unregister a view; returns whether it existed."""
        view = self._views.pop(name, None)
        if view is None:
            return False
        view.dropped = True
        self._unroute(view)
        if view in self._collecting:
            self._collecting.remove(view)
        rec = self._obs
        if rec is not None:
            rec.inc("online.view.dropped")
            rec.set_gauge("online.view.live", len(self._views))
        return True

    def degrade_view(self, name: str, *, q: float = 0.25, seed: int | None = None) -> None:
        """Switch a view to sampling-estimate mode (overload degradation).

        The view leaves the exact fan-out path entirely — its counters
        and expiry heap are released — and :meth:`view_counts` answers
        with the root-sampling estimator over the current window slice,
        with per-code Horvitz–Thompson standard errors.  Requires NumPy
        at read time.  A degraded view's restriction predicate (if any)
        is *not* applied to estimates.  Degradation is one-way; drop and
        re-add the view to return to exact counting.
        """
        view = self._require_view(name)
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if view.mode == "estimate":
            view.q = float(q)
            view.seed = seed
            return
        view.mode = "estimate"
        view.q = float(q)
        view.seed = seed
        view.code_counts.clear()
        view.pair_counts.clear()
        view.pair_seq_counts.clear()
        view.total = 0
        view.heap = []
        view.wake_t = None
        self._unroute(view)
        rec = self._obs
        if rec is not None:
            rec.inc("online.view.degraded")

    def _unroute(self, view: _ViewState) -> None:
        """Remove a view from the fan-out structures (drop/degrade)."""
        if view.nodes is None:
            if view in self._flat:
                self._flat.remove(view)
        else:
            # Membership-guarded: drop_view after degrade_view unroutes
            # twice, and a shared node bucket may still hold other views.
            for node in view.nodes:
                routed = self._node_index.get(node)
                if routed is not None and view in routed:
                    routed.remove(view)
                    if not routed:
                        del self._node_index[node]

    def _require_view(self, name: str) -> _ViewState:
        view = self._views.get(name)
        if view is None:
            raise KeyError(f"no view named {name!r} (have: {list(self._views)})")
        return view

    def _backfill(self, view: _ViewState) -> None:
        """Replay the retained ledger through a newly registered view.

        Entries are replayed in discovery order with the expiry horizon
        interleaved at each entry's completion time — the exact
        insert/expire sequence a from-start engine would have run over
        these entries, so counts (and, when no live code's history
        predates the retention horizon, counter key order too) match an
        independent :class:`OnlineCensus` of the same window.
        """
        window = view.window
        nodes = view.nodes
        for _t, _s, entry in sorted(self._ledger, key=lambda item: item[1]):
            if nodes is not None and not nodes.issuperset(entry.nodes):
                continue
            horizon = entry.t_last - window
            self._expire_view(view, horizon)
            if entry.anchor_t < horizon:
                continue
            self._fold(view, entry)
        if self._now is not None:
            self._expire_view(view, self._now - window)
        if view.heap:
            self._schedule_wake(view)

    # ------------------------------------------------------------------
    # the stream interface
    # ------------------------------------------------------------------
    def push(self, event: Event | tuple) -> list[Instance]:
        """Feed one arrival to every view; return the new core instances.

        The returned instances are global event-index tuples of every
        instance the shared core discovered (before any per-view window
        /slice/predicate filtering); per-view acceptance shows up in the
        views' counters.
        """
        rec = self._obs
        if rec is None:
            return self._push(event)
        start = time.perf_counter()
        out = self._push(event)
        rec.observe("online.multiview.push.seconds", time.perf_counter() - start)
        if out:
            rec.inc("online.multiview.push.instances", len(out))
        rec.set_gauge("online.prefix_store.entries", self._prefixes.entries)
        rec.set_gauge("online.multiview.ledger.depth", len(self._ledger))
        return out

    def _push(self, event: Event | tuple) -> list[Instance]:
        ev = event if isinstance(event, Event) else Event(*event)
        if self._now is not None and ev.t < self._now:
            raise ValueError(
                f"push requires non-decreasing times: got t={ev.t} "
                f"after the stream clock reached t={self._now}"
            )
        local = self._graph.append(ev)
        gidx = local + self._offset
        t_a = ev.t
        if t_a == self._last_event_t:
            self._note_tie()
        self._last_event_t = t_a
        self._now = t_a
        self._pushed += 1
        self._retire_ledger(t_a - self._retention)
        self._run_wakes(t_a)
        for view in self._collecting:
            view.just_counted = []

        out: list[Instance] = []
        k = self._n_events
        core_horizon = t_a - self._retention
        completions: list[tuple[Instance, tuple, float, tuple]] = []
        if k == 1:
            completions.append(((gidx,), (ev.edge,), t_a, (ev.u, ev.v)))
        else:
            u, v = ev.u, ev.v
            from repro.online.census import _Prefix

            candidates = self._prefixes.candidates(u, v, t_a)
            for pos, _idx, new_nodes in self._kernel.extend_frontier(
                candidates, local, local + 1
            ):
                prefix = candidates[pos]
                if prefix.t_root < core_horizon:
                    # Anchored before every window any view may hold:
                    # nothing grown from this prefix can ever be counted.
                    continue
                seq = prefix.seq + (gidx,)
                edges = prefix.edges + (ev.edge,)
                if len(seq) == k:
                    completions.append((seq, edges, prefix.t_root, new_nodes))
                else:
                    self._prefixes.add(
                        _Prefix(seq, edges, new_nodes, prefix.t_root, t_a)
                    )
            completions.sort(key=lambda item: item[0])
        if completions:
            self._count_completions(completions, t_a, out)
        if k > 1:
            from repro.online.census import _Prefix

            self._prefixes.add(
                _Prefix((gidx,), (ev.edge,), (ev.u, ev.v), t_a, t_a)
            )
            self._prefixes.maybe_sweep(t_a)

        self._since_prune += 1
        if self._prune_every is not None and self._since_prune >= self._prune_every:
            self.prune()
        return out

    def _count_completions(self, completions, t_a: float, out: list) -> None:
        """Build ledger entries for this push's completions and fan out."""
        flat = self._flat
        # One horizon per plain view, computed once per completing push
        # with the same ``now - W`` subtraction the expiry path uses.
        horizons = [t_a - view.window for view in flat]
        node_index = self._node_index
        ledger = self._ledger
        for seq, edges, t_root, nodes in completions:
            code = canonical_code(edges)
            pair_seq = tuple(
                classify_pair(edges[j], edges[j + 1]) for j in range(len(edges) - 1)
            )
            entry = _LedgerEntry(t_root, self._seq, code, pair_seq, nodes, t_a, seq)
            self._seq += 1
            self._discovered += 1
            heapq.heappush(ledger, (t_root, entry.seq, entry))
            out.append(seq)
            for i, view in enumerate(flat):
                if t_root < horizons[i]:
                    # Views are sorted by window descending, so every
                    # remaining window is shorter and rejects too.
                    break
                self._fold(view, entry)
            if node_index:
                routed = self._route_sliced(nodes)
                for view in routed:
                    if t_root < t_a - view.window:
                        continue
                    self._fold(view, entry)

    def _route_sliced(self, nodes: tuple) -> list[_ViewState]:
        """Sliced views whose node set covers every node of the instance."""
        index = self._node_index
        candidates = index.get(nodes[0])
        if not candidates:
            return ()
        if len(nodes) == 1:
            return candidates
        out = [
            view
            for view in candidates
            if view.nodes.issuperset(nodes)
        ]
        return out

    def _fold(self, view: _ViewState, entry: _LedgerEntry) -> None:
        """Count one accepted instance into one view."""
        if view.predicate is not None:
            offset = self._offset
            local_inst = tuple(i - offset for i in entry.events)
            if not view.predicate(self._graph, local_inst):
                return
        view.code_counts[entry.code] += 1
        pair_counts = view.pair_counts
        for ptype in entry.pair_seq:
            pair_counts[ptype] += 1
        view.pair_seq_counts[entry.pair_seq] += 1
        view.total += 1
        view.discovered += 1
        item = (entry.anchor_t, entry.seq, entry)
        heapq.heappush(view.heap, item)
        if view.heap[0] is item or view.wake_t is None:
            self._schedule_wake(view)
        if view.collect:
            view.just_counted.append(entry.events)

    def advance_to(self, now: float) -> int:
        """Move the stream clock forward without an event; expire views.

        Returns the total instances retired across all views.
        """
        if self._now is not None and now < self._now:
            raise ValueError(
                f"cannot advance backward: clock is at t={self._now}, got t={now}"
            )
        self._now = now
        before = sum(view.expired for view in self._views.values())
        self._retire_ledger(now - self._retention)
        self._run_wakes(now)
        return sum(view.expired for view in self._views.values()) - before

    def drain(
        self, events: Iterable[Event | tuple]
    ) -> Iterator[tuple[int, list[Instance]]]:
        """Push a whole (time-sorted) stream lazily, as ``(index, new)``."""
        for event in events:
            idx = self._offset + len(self._graph)
            yield idx, self.push(event)

    # ------------------------------------------------------------------
    # expiry: the scheduled wake heap
    # ------------------------------------------------------------------
    def _schedule_wake(self, view: _ViewState) -> None:
        """(Re)arm the view's wake at its oldest anchor's earliest exit.

        The wake time is widened *down* by the library's ulp slack so
        floating point can only make a wake early (a cheap no-op
        re-check), never late — lateness would reorder the per-view
        insert/expire sequence against a single-view engine.
        """
        from repro.online.census import _widen_down

        wake = _widen_down(view.heap[0][0] + view.window)
        if view.wake_t is not None and view.wake_t <= wake:
            return
        view.wake_t = wake
        heapq.heappush(self._wake, (wake, view.vseq, view))

    def _run_wakes(self, now: float) -> None:
        """Expire every view whose scheduled wake has come due."""
        wake_heap = self._wake
        if not wake_heap or wake_heap[0][0] > now:
            return
        resched: list[_ViewState] = []
        while wake_heap and wake_heap[0][0] <= now:
            wake, _vseq, view = heapq.heappop(wake_heap)
            if view.dropped or view.wake_t != wake:
                continue
            view.wake_t = None
            self._expire_view(view, now - view.window)
            if view.heap:
                resched.append(view)
        for view in resched:
            if not view.dropped and view.heap:
                self._schedule_wake(view)

    def _expire_view(self, view: _ViewState, horizon: float) -> None:
        """Retire the view's instances anchored strictly below ``horizon``."""
        heap = view.heap
        retired = 0
        code_counts = view.code_counts
        pair_counts = view.pair_counts
        pair_seq_counts = view.pair_seq_counts
        while heap and heap[0][0] < horizon:
            entry = heapq.heappop(heap)[2]
            retired += 1
            code_counts[entry.code] -= 1
            if not code_counts[entry.code]:
                del code_counts[entry.code]
            for ptype in entry.pair_seq:
                pair_counts[ptype] -= 1
                if not pair_counts[ptype]:
                    del pair_counts[ptype]
            pair_seq_counts[entry.pair_seq] -= 1
            if not pair_seq_counts[entry.pair_seq]:
                del pair_seq_counts[entry.pair_seq]
            view.total -= 1
            view.expired += 1
        if retired and self._obs is not None:
            self._obs.inc("online.expire.retired", retired)

    def _retire_ledger(self, horizon: float) -> None:
        """Drop ledger entries anchored below the retention horizon.

        Every view's window is at most ``retention``, so a retired entry
        has already expired from (or was never counted by) every view —
        the ledger only serves :meth:`add_view` backfill.
        """
        ledger = self._ledger
        retired = 0
        while ledger and ledger[0][0] < horizon:
            heapq.heappop(ledger)
            retired += 1
        self._retired += retired

    # ------------------------------------------------------------------
    # tick-boundary-sensitive restrictions
    # ------------------------------------------------------------------
    def _note_tie(self) -> None:
        """Record a timestamp tie; warn any pending tick-sensitive views."""
        self._saw_tie = True
        pending = self._unwarned_sensitive
        if pending:
            self._unwarned_sensitive = []
            for view in pending:
                if not view.dropped:
                    self._warn_ties(view)

    def _warn_ties(self, view: _ViewState) -> None:
        """Warn once when a tick-sensitive predicate meets timestamp ties.

        Predicates marked ``tick_boundary_sensitive`` (the consecutive-
        events and CDG restrictions) can flip an already committed
        verdict when a *later* arrival shares the boundary timestamp, so
        their online counts may diverge from a batch recount on streams
        with ties.  The engine surfaces that loudly instead of silently
        diverging.
        """
        predicate = view.predicate
        warnings.warn(
            f"view {view.name!r} uses a tick-boundary-sensitive restriction "
            f"({getattr(predicate, '__name__', predicate)!r}) on a stream "
            "with timestamp ties: a same-tick arrival after discovery can "
            "flip a committed verdict, so online counts may diverge from a "
            "batch recount of the window (see the OnlineCensus predicate "
            "contract)",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counts(self, name: str) -> Counter:
        """Per-code counts of one exact view (a copy)."""
        view = self._require_view(name)
        if view.mode != "exact":
            raise ValueError(
                f"view {name!r} is degraded to estimate mode and keeps no "
                "exact counters; use view_counts()"
            )
        if self._now is not None:
            self._run_wakes(self._now)
        return Counter(view.code_counts)

    def census(self, name: str) -> MotifCensus:
        """One exact view's counters as a :class:`MotifCensus` snapshot."""
        view = self._require_view(name)
        if view.mode != "exact":
            raise ValueError(
                f"view {name!r} is degraded to estimate mode; use view_counts()"
            )
        if self._now is not None:
            self._run_wakes(self._now)
        return MotifCensus(
            n_events=self._n_events,
            constraints=self._constraints,
            code_counts=Counter(view.code_counts),
            pair_counts=Counter(view.pair_counts),
            pair_sequence_counts=Counter(view.pair_seq_counts),
            total=view.total,
        )

    def proportions(self, name: str) -> dict[str, float]:
        return self.census(name).proportions()

    def view_counts(self, name: str) -> dict:
        """One view's counts as a wire-ready dict (exact or estimated).

        Exact views return ``{"exact": True, "codes": {...}, "total": n,
        ...}``; degraded views return ``{"exact": False, "codes":
        {code: estimate}, "stderr": {...}, "q": q, "method":
        "root_sampling"}`` computed on demand over the current window
        slice (requires NumPy).
        """
        view = self._require_view(name)
        base = {
            "view": name,
            "window": view.window,
            "mode": view.mode,
            "discovered": view.discovered,
            "expired": view.expired,
        }
        if view.mode == "exact":
            if self._now is not None:
                self._run_wakes(self._now)
            base.update(
                exact=True, codes=dict(view.code_counts), total=view.total
            )
            return base
        codes, stderr = self._estimate_view(view)
        base.update(
            exact=False,
            codes=codes,
            stderr=stderr,
            q=view.q,
            method="root_sampling",
        )
        return base

    def _estimate_view(self, view: _ViewState) -> tuple[dict, dict]:
        """Root-sampling estimate over the view's current window slice."""
        from repro.core._optional import import_numpy

        np = import_numpy()
        if not np:
            raise RuntimeError(
                "degraded views estimate via root sampling, which requires NumPy"
            )
        if self._now is None:
            return {}, {}
        from repro.algorithms.sampling import estimate_counts_root_sampling

        window_graph = self._graph.slice(self._now - view.window, self._now)
        if view.nodes is not None:
            nodes = view.nodes
            kept = tuple(
                ev
                for ev in window_graph.events
                if ev.u in nodes and ev.v in nodes
            )
            window_graph = TemporalGraph(kept)
        q = view.q or 0.25
        estimates = estimate_counts_root_sampling(
            window_graph,
            self._n_events,
            self._constraints,
            q,
            max_nodes=self._max_nodes,
            rng=np.random.default_rng(view.seed),
        )
        # Horvitz–Thompson per-code standard error: raw sampled count n
        # has variance n(1-q)/q^2 around the estimate n/q.
        stderr = {
            code: (max(est * q, 0.0) * (1.0 - q)) ** 0.5 / q
            for code, est in estimates.items()
        }
        return estimates, stderr

    def describe(self) -> dict:
        """Engine + per-view summary (what the service's ``stats`` shows)."""
        return {
            "retention": self._retention,
            "now": self._now,
            "pushed": self._pushed,
            "discovered": self._discovered,
            "ledger": len(self._ledger),
            "prefixes": len(self._prefixes),
            "views": {
                name: {
                    "window": view.window,
                    "mode": view.mode,
                    "live": view.total,
                    "discovered": view.discovered,
                    "expired": view.expired,
                    "sliced": view.nodes is not None,
                    "restricted": view.predicate is not None,
                }
                for name, view in self._views.items()
            },
        }

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Drop retained events no future arrival or view can touch."""
        rec = self._obs
        if rec is None:
            return self._prune()
        start = time.perf_counter()
        dropped = self._prune()
        rec.observe("online.prune.seconds", time.perf_counter() - start)
        if dropped:
            rec.inc("online.prune.dropped", dropped)
            rec.inc("online.prune.rebases")
        return dropped

    def _prune(self) -> int:
        from repro.online.census import _PRUNE_SLACK

        if self._now is None:
            return 0
        # Exact views only need the timing bound δ of tail (completed
        # instances live in their heaps), but degraded views re-read
        # graph.slice(now - window, now) at estimate time — keep the
        # largest degraded window's worth of events alive.
        reach = self._delta
        for view in self._views.values():
            if view.mode == "estimate" and view.window > reach:
                reach = view.window
        if reach > self._retention:
            reach = self._retention
        cutoff = self._now - reach
        if math.isfinite(cutoff):
            cutoff -= _PRUNE_SLACK * math.ulp(abs(cutoff) + 1.0)
        storage = self._graph.storage
        kept = storage.slice_time(cutoff, math.inf).to_events()
        dropped = len(storage) - len(kept)
        self._since_prune = 0
        if dropped <= 0:
            return 0
        rebuilt = type(storage).from_events(kept, presorted=True)
        self._graph = TemporalGraph._from_storage(rebuilt, name=self._graph.name)
        self._bind_kernel()
        self._offset += dropped
        return dropped

    def _bind_kernel(self) -> None:
        """(Re)bind the plan's kernel to the current retained storage."""
        self._kernel = self._plan.bind(self._graph.storage)

    def _rebuild_prefixes(self) -> None:
        """Regrow the prefix store from the retained tail (restore path)."""
        from repro.online.census import _Prefix

        if self._n_events == 1 or self._now is None:
            return
        graph = self._graph
        now = self._now
        horizon = now - self._retention
        event_at = graph.storage.event_at
        offset = self._offset
        rebuilt: list[_Prefix] = []
        for j in range(1, self._n_events):
            for inst in enumerate_instances(
                graph, j, self._constraints, max_nodes=self._node_cap
            ):
                first = event_at(inst[0])
                last = event_at(inst[-1])
                if first.t < horizon:
                    continue
                if now > self._constraints.next_event_deadline(first.t, last.t):
                    continue
                edges = tuple(event_at(i).edge for i in inst)
                nodes: tuple[int, ...] = ()
                for idx in inst:
                    ev = event_at(idx)
                    for n in (ev.u, ev.v):
                        if n not in nodes:
                            nodes = nodes + (n,)
                rebuilt.append(
                    _Prefix(
                        tuple(i + offset for i in inst),
                        edges,
                        nodes,
                        first.t,
                        last.t,
                    )
                )
        rebuilt.sort(key=lambda p: (p.t_last, p.seq))
        for prefix in rebuilt:
            self._prefixes.add(prefix)
        self._prefixes._sweep_clock = now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MultiViewCensus {self._n_events}-event "
            f"{self._constraints.describe()} retention={self._retention:g}: "
            f"{len(self._views)} views, {self._pushed} events pushed, "
            f"{len(self._ledger)} ledger entries>"
        )
