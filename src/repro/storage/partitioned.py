"""Out-of-core, time-partitioned page directories (PR 8).

A *partitioned* graph directory holds one PR 3 page set
(:meth:`~repro.storage.numpy_backend.NumpyStorage.save` layout) per time
interval under ``part-00000/``, ``part-00001/``, ... plus a top-level
``manifest.json``::

    {
      "format": "repro-numpy-pages-partitioned",
      "version": 1,
      "name": "<graph name>",
      "n_events": 123456,
      "partition_events": 65536,
      "partitions": [
        {"dir": "part-00000", "ev_lo": 0, "n_events": 65531,
         "t_min": 0.0, "t_max": 812.0},
        ...
      ]
    }

Three invariants make the layout queryable without touching the pages:

* ``ev_lo`` offsets are contiguous (``ev_lo[p] + n_events[p] ==
  ev_lo[p+1]``), so a global event index maps to a partition by one
  bisect over the manifest;
* partitions are time-ordered and **tick-aligned** — ``t_max[p] <
  t_min[p+1]`` strictly, i.e. all events sharing a timestamp live in one
  partition — so a closed time window maps to a contiguous partition
  range by two bisects over the manifest bounds;
* each partition is a self-contained flat page set, so opening one is a
  plain :func:`~repro.storage.numpy_backend.load_pages` mmap.

:func:`write_partitioned` produces the layout from an event *stream*
with bounded memory (it never holds more than roughly one partition of
events), in the chunked-merge idiom: buffer, sort/validate the buffer,
hold back the trailing same-timestamp run so ticks never straddle a
partition edge, flush the rest as one partition.  A tick larger than
``partition_events`` simply grows its partition until the tick ends.

:class:`PartitionedStorage` opens partitions lazily (``mmap_mode="r"``)
and keeps at most ``max_resident`` of them open in an LRU, so the
resident set stays bounded no matter how large the directory is.  It is
**read-only** (:meth:`append` raises); the hot windowed queries touch
only the partitions overlapping the window, while the whole-stream
materialized views (``events``, ``times``, the adjacency dicts) remain
available as O(m) correctness fallbacks.  Census execution over a
partitioned graph routes through the sharded engine even at ``jobs=1``
(see :attr:`~repro.storage.base.GraphStorage.prefers_sharded_execution`):
each shard rebuilds an in-memory numpy storage covering just its
δ-overlapped window, so peak memory follows the largest shard, not the
stream.
"""

from __future__ import annotations

import bisect
import json
import os
import shutil
import tempfile
import weakref
from collections import OrderedDict
from typing import ClassVar, Iterable, Iterator, Mapping, Sequence

import repro.obs as _obs
from repro.core.events import Event, validate_events
from repro.storage.base import GraphStorage
from repro.storage.numpy_backend import NumpyStorage, available, load_pages

try:  # optional dependency — mirrors numpy_backend's guard
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Format tag of the top-level ``manifest.json``.
PARTITIONED_FORMAT = "repro-numpy-pages-partitioned"

#: Layout version this build reads and writes.
PARTITIONED_VERSION = 1

#: File name of the top-level manifest inside a partitioned directory.
MANIFEST_NAME = "manifest.json"

#: Default events per partition for :func:`write_partitioned`.
DEFAULT_PARTITION_EVENTS = 65536

#: Default bound on simultaneously open (mmap-resident) partitions.
DEFAULT_MAX_RESIDENT = 4

#: ``shard_payload`` marker: workers rebuild the range from the manifest.
_SHARD_KIND = PARTITIONED_FORMAT + "-range"


# ----------------------------------------------------------------------
# streaming writer
# ----------------------------------------------------------------------
def write_partitioned(
    events: Iterable[Event],
    path: str | os.PathLike,
    *,
    partition_events: int = DEFAULT_PARTITION_EVENTS,
    name: str = "",
) -> dict:
    """Write ``events`` as a partitioned page directory; return the manifest.

    The input may be any iterable of :class:`Event` or plain 3-tuples.
    Memory stays bounded by roughly one partition: events are buffered
    up to ``partition_events``, each buffer is validated and
    ``(t, u, v)``-sorted on its own, and the trailing run sharing the
    buffer's final timestamp is held back for the next buffer so no tick
    ever straddles a partition boundary.  Consequently the input may
    arrive in any order *within* a buffer, but an event whose timestamp
    is at or before an already-flushed partition raises
    :class:`ValueError` — streams far from time order need an external
    sort first.
    """
    if not available():  # pragma: no cover - numpy-less builds
        raise RuntimeError("writing partitioned page graphs requires NumPy")
    partition_events = int(partition_events)
    if partition_events < 1:
        raise ValueError(f"partition_events must be >= 1, got {partition_events}")
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)

    partitions: list[dict] = []
    n_total = 0
    watermark: float | None = None  # t_max of the last flushed partition

    def flush(chunk: Sequence[Event]) -> None:
        nonlocal n_total, watermark
        sub = f"part-{len(partitions):05d}"
        NumpyStorage.from_events(chunk, presorted=True).save(os.path.join(path, sub))
        partitions.append(
            {
                "dir": sub,
                "ev_lo": n_total,
                "n_events": len(chunk),
                "t_min": chunk[0].t,
                "t_max": chunk[-1].t,
            }
        )
        n_total += len(chunk)
        watermark = chunk[-1].t

    def sealed(buf: list[Event]) -> list[Event]:
        chunk = validate_events(buf)
        if watermark is not None and chunk and chunk[0].t <= watermark:
            raise ValueError(
                f"event at t={chunk[0].t!r} arrived after partition covering "
                f"up to t={watermark!r} was flushed; write_partitioned needs "
                "input within one buffer of time order (pre-sort the stream)"
            )
        return chunk

    buf: list[Event] = []
    for ev in events:
        buf.append(ev if isinstance(ev, Event) else Event(*ev[:3]))
        if len(buf) < partition_events:
            continue
        chunk = sealed(buf)
        # Hold back the (possibly still growing) trailing tick.
        cut = bisect.bisect_left([e.t for e in chunk], chunk[-1].t)
        if cut == 0:
            buf = chunk  # one giant tick — keep buffering until it ends
            continue
        flush(chunk[:cut])
        buf = chunk[cut:]
    if buf:
        flush(sealed(buf))

    manifest = {
        "format": PARTITIONED_FORMAT,
        "version": PARTITIONED_VERSION,
        "name": name,
        "n_events": n_total,
        "partition_events": partition_events,
        "partitions": partitions,
    }
    with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest


# ----------------------------------------------------------------------
# manifest access
# ----------------------------------------------------------------------
def is_partitioned(path: str | os.PathLike) -> bool:
    """True when ``path`` is a directory holding a partitioned manifest."""
    return os.path.exists(os.path.join(os.fspath(path), MANIFEST_NAME))


def partitioned_meta(path: str | os.PathLike) -> dict:
    """Read and sanity-check a partitioned directory's ``manifest.json``.

    Beyond the format/version tags this validates the two structural
    invariants every query relies on: contiguous ``ev_lo`` offsets and
    strictly increasing, tick-aligned time bounds.
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(
            f"{path!r} is not a partitioned page graph directory (no manifest.json)"
        )
    with open(manifest_path) as fh:
        meta = json.load(fh)
    if meta.get("format") != PARTITIONED_FORMAT:
        raise ValueError(
            f"{path!r}: unrecognized partitioned format {meta.get('format')!r}"
        )
    if meta.get("version") != PARTITIONED_VERSION:
        raise ValueError(
            f"{path!r}: partitioned layout version {meta.get('version')!r} is "
            f"not supported (this build reads version {PARTITIONED_VERSION})"
        )
    offset = 0
    prev_t_max: float | None = None
    for part in meta.get("partitions", ()):
        if part["ev_lo"] != offset:
            raise ValueError(
                f"{path!r}: partition {part['dir']!r} starts at event "
                f"{part['ev_lo']} but {offset} events precede it"
            )
        if part["n_events"] < 1:
            raise ValueError(f"{path!r}: partition {part['dir']!r} is empty")
        if prev_t_max is not None and part["t_min"] <= prev_t_max:
            raise ValueError(
                f"{path!r}: partition {part['dir']!r} opens at t={part['t_min']!r}, "
                f"inside or before the previous partition (t_max={prev_t_max!r}); "
                "partitions must be tick-aligned and time-ordered"
            )
        offset += part["n_events"]
        prev_t_max = part["t_max"]
    if offset != meta.get("n_events"):
        raise ValueError(
            f"{path!r}: partitions hold {offset} events but the manifest "
            f"records {meta.get('n_events')}"
        )
    return meta


def load_partitioned(
    path: str | os.PathLike,
    *,
    mmap: bool = True,
    max_resident: int = DEFAULT_MAX_RESIDENT,
) -> tuple["PartitionedStorage", dict]:
    """Open a partitioned directory; return the storage and its manifest.

    The partitioned counterpart of
    :func:`~repro.storage.numpy_backend.load_pages` — only the manifest
    is read here; partitions open lazily as queries touch them.
    """
    storage = PartitionedStorage(path, mmap=mmap, max_resident=max_resident)
    return storage, storage.meta


# ----------------------------------------------------------------------
# the storage engine
# ----------------------------------------------------------------------
class PartitionedStorage(GraphStorage):
    """Lazy, bounded-residency view over a partitioned page directory.

    Partitions open on demand via
    :func:`~repro.storage.numpy_backend.load_pages` (memory-mapped by
    default) and are evicted least-recently-used once more than
    ``max_resident`` are open.  All whole-stream index arithmetic
    (event-index -> partition, time -> event-index) happens against the
    manifest, so queries touch only the partitions they need.

    The backend advertises the ``"native"`` extension kernel (demoting
    to ``"numpy"`` without numba): censuses route through the sharded
    engine (``prefers_sharded_execution``) whose workers rebuild plain
    in-memory :class:`NumpyStorage` shards, where the array kernels
    apply.  Binding a plan directly to this storage stays correct — the
    array kernels fall back to the generic per-node bisection path
    partition-locally.
    """

    backend_name: ClassVar[str] = "partitioned"
    extension_kernel: ClassVar[str] = "native"
    prefers_sharded_execution: ClassVar[bool] = True
    supports_append: ClassVar[bool] = False

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        mmap: bool = True,
        max_resident: int = DEFAULT_MAX_RESIDENT,
    ) -> None:
        self._path = os.fspath(path)
        self._meta = partitioned_meta(self._path)
        self._mmap = bool(mmap)
        self._max_resident = max(1, int(max_resident))
        parts = self._meta["partitions"]
        self._dirs: list[str] = [p["dir"] for p in parts]
        self._ev_lo: list[int] = [p["ev_lo"] for p in parts]
        self._n_part: list[int] = [p["n_events"] for p in parts]
        self._t_min: list[float] = [p["t_min"] for p in parts]
        self._t_max: list[float] = [p["t_max"] for p in parts]
        self._n: int = self._meta["n_events"]
        self._resident: OrderedDict[int, NumpyStorage] = OrderedDict()
        # Whole-stream materialized views (correctness fallbacks, O(m)).
        self._events_cache: tuple[Event, ...] | None = None
        self._times_cache: list[float] | None = None
        self._node_maps: tuple[dict, dict] | None = None
        self._edge_maps: tuple[dict, dict] | None = None

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[Event],
        *,
        presorted: bool = False,
        partition_events: int = DEFAULT_PARTITION_EVENTS,
        name: str = "",
    ) -> "PartitionedStorage":
        """Write ``events`` to a managed temporary directory and open it.

        Exists to satisfy the storage contract (and to make the backend
        constructible through the registry); real out-of-core use writes
        a durable directory with :func:`write_partitioned` and opens it
        with :class:`PartitionedStorage` / ``TemporalGraph.load``.  The
        temporary directory is removed when the storage is garbage
        collected.
        """
        stream = events if presorted else validate_events(events)
        tmp = tempfile.mkdtemp(prefix="repro-partitioned-")
        try:
            write_partitioned(
                stream, tmp, partition_events=partition_events, name=name
            )
            storage = cls(tmp)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        storage._owned_tmp = weakref.finalize(
            storage, shutil.rmtree, tmp, ignore_errors=True
        )
        return storage

    # ------------------------------------------------------------------
    # manifest / residency introspection
    # ------------------------------------------------------------------
    @property
    def meta(self) -> dict:
        """The parsed top-level manifest."""
        return self._meta

    @property
    def path(self) -> str:
        """The partitioned directory this storage reads from."""
        return self._path

    @property
    def n_partitions(self) -> int:
        return len(self._dirs)

    @property
    def resident_partitions(self) -> tuple[int, ...]:
        """Indices of currently open partitions, LRU-oldest first."""
        return tuple(self._resident)

    def partition(self, p: int) -> NumpyStorage:
        """The (lazily opened) flat storage of partition ``p``.

        Opening may evict the least-recently-used resident partition;
        callers must not hold references across other partition calls if
        they rely on the residency bound.
        """
        storage = self._resident.get(p)
        rec = _obs.ACTIVE
        if storage is not None:
            self._resident.move_to_end(p)
            if rec is not None:
                rec.inc("storage.partition.hits")
            return storage
        storage, _meta = load_pages(
            os.path.join(self._path, self._dirs[p]), mmap=self._mmap
        )
        self._resident[p] = storage
        if rec is not None:
            rec.inc("storage.partition.opens")
        while len(self._resident) > self._max_resident:
            self._resident.popitem(last=False)
            if rec is not None:
                rec.inc("storage.partition.evictions")
        return storage

    # ------------------------------------------------------------------
    # manifest arithmetic
    # ------------------------------------------------------------------
    def _locate(self, idx: int) -> tuple[int, int]:
        """Map a global event index to ``(partition, local index)``."""
        if idx < 0:
            idx += self._n
        if not 0 <= idx < self._n:
            raise IndexError(f"event index {idx} out of range [0, {self._n})")
        p = bisect.bisect_right(self._ev_lo, idx) - 1
        return p, idx - self._ev_lo[p]

    def _parts_in(self, t_lo: float, t_hi: float) -> range:
        """Partitions possibly intersecting the closed window."""
        first = bisect.bisect_left(self._t_max, t_lo)
        last = bisect.bisect_right(self._t_min, t_hi)
        return range(first, last)

    # ------------------------------------------------------------------
    # materialized views (O(m) correctness fallbacks)
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        if self._events_cache is None:
            out: list[Event] = []
            for p in range(self.n_partitions):
                out.extend(self.partition(p).events)
            self._events_cache = tuple(out)
        return self._events_cache

    @property
    def times(self) -> list[float]:
        if self._times_cache is None:
            out: list[float] = []
            for p in range(self.n_partitions):
                out.extend(self.partition(p).times)
            self._times_cache = out
        return self._times_cache

    def _node_views(self) -> tuple[dict, dict]:
        if self._node_maps is None:
            idxs: dict[int, list[int]] = {}
            ts: dict[int, list[float]] = {}
            for p in range(self.n_partitions):
                off = self._ev_lo[p]
                part = self.partition(p)
                for node, local in part.node_events.items():
                    idxs.setdefault(node, []).extend(i + off for i in local)
                for node, local_t in part.node_times.items():
                    ts.setdefault(node, []).extend(local_t)
            self._node_maps = (idxs, ts)
        return self._node_maps

    def _edge_views(self) -> tuple[dict, dict]:
        if self._edge_maps is None:
            idxs: dict[tuple[int, int], list[int]] = {}
            ts: dict[tuple[int, int], list[float]] = {}
            for p in range(self.n_partitions):
                off = self._ev_lo[p]
                part = self.partition(p)
                for edge, local in part.edge_events.items():
                    idxs.setdefault(edge, []).extend(i + off for i in local)
                for edge, local_t in part.edge_times.items():
                    ts.setdefault(edge, []).extend(local_t)
            self._edge_maps = (idxs, ts)
        return self._edge_maps

    @property
    def node_events(self) -> Mapping[int, list[int]]:
        return self._node_views()[0]

    @property
    def node_times(self) -> Mapping[int, list[float]]:
        return self._node_views()[1]

    @property
    def edge_events(self) -> Mapping[tuple[int, int], list[int]]:
        return self._edge_views()[0]

    @property
    def edge_times(self) -> Mapping[tuple[int, int], list[float]]:
        return self._edge_views()[1]

    # ------------------------------------------------------------------
    # scalar views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def nodes(self) -> set[int]:
        # Partition slot dicts (same package) give the key sets without
        # materializing the global adjacency views.
        out: set[int] = set()
        for p in range(self.n_partitions):
            out.update(self.partition(p)._node_index()[0])
        return out

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        seen: set[tuple[int, int]] = set()
        for p in range(self.n_partitions):
            seen.update(self.partition(p)._edge_index()[0])
        return len(seen)

    @property
    def start_time(self) -> float | None:
        return self._t_min[0] if self._dirs else None

    @property
    def end_time(self) -> float | None:
        return self._t_max[-1] if self._dirs else None

    def event_at(self, idx: int) -> Event:
        p, loc = self._locate(idx)
        return self.partition(p).event_at(loc)

    def iter_uvt(self) -> Iterator[tuple[int, int, float]]:
        for p in range(self.n_partitions):
            yield from self.partition(p).iter_uvt()

    # ------------------------------------------------------------------
    # shard-planning seams (manifest-resolution time index)
    # ------------------------------------------------------------------
    def time_at(self, idx: int) -> float:
        p, loc = self._locate(idx)
        return self.partition(p).time_at(loc)

    def bisect_time_left(self, t: float) -> int:
        # Partitions strictly before the first with t_max >= t lie
        # entirely below t; one in-partition bisect finishes the job.
        p = bisect.bisect_left(self._t_max, t)
        if p == self.n_partitions:
            return self._n
        return self._ev_lo[p] + self.partition(p).bisect_time_left(t)

    def bisect_time_right(self, t: float) -> int:
        # Mirror image: partitions after the last with t_min <= t lie
        # entirely above t (bounds are tick-aligned and disjoint).
        p = bisect.bisect_right(self._t_min, t) - 1
        if p < 0:
            return 0
        return self._ev_lo[p] + self.partition(p).bisect_time_right(t)

    def shard_count_hint(self) -> int:
        return self.n_partitions

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def node_event_indices(self, node: int) -> list[int]:
        out: list[int] = []
        for p in range(self.n_partitions):
            off = self._ev_lo[p]
            out.extend(i + off for i in self.partition(p).node_event_indices(node))
        return out

    def edge_event_indices(self, edge: tuple[int, int]) -> list[int]:
        out: list[int] = []
        for p in range(self.n_partitions):
            off = self._ev_lo[p]
            out.extend(i + off for i in self.partition(p).edge_event_indices(edge))
        return out

    # ------------------------------------------------------------------
    # windowed queries (partition-pruned: only overlapping partitions open)
    # ------------------------------------------------------------------
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        out: list[int] = []
        for p in self._parts_in(t_lo, t_hi):
            off = self._ev_lo[p]
            out.extend(i + off for i in self.partition(p).node_events_in(node, t_lo, t_hi))
        return out

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        return sum(
            self.partition(p).count_node_events_in(node, t_lo, t_hi)
            for p in self._parts_in(t_lo, t_hi)
        )

    def edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> list[int]:
        out: list[int] = []
        for p in self._parts_in(t_lo, t_hi):
            off = self._ev_lo[p]
            out.extend(i + off for i in self.partition(p).edge_events_in(edge, t_lo, t_hi))
        return out

    def count_edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> int:
        return sum(
            self.partition(p).count_edge_events_in(edge, t_lo, t_hi)
            for p in self._parts_in(t_lo, t_hi)
        )

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        lo = self.bisect_time_left(t_lo)
        hi = self.bisect_time_right(t_hi)
        return list(range(lo, hi))

    def count_events_in(self, t_lo: float, t_hi: float) -> int:
        return self.bisect_time_right(t_hi) - self.bisect_time_left(t_lo)

    def node_events_between(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        # The closed-window partition range is a superset of the
        # half-open one; out-of-window partitions contribute nothing.
        out: list[int] = []
        for p in self._parts_in(t_lo, t_hi):
            off = self._ev_lo[p]
            out.extend(
                i + off
                for i in self.partition(p).node_events_between(node, t_lo, t_hi)
            )
        return out

    def adjacent_events_between(
        self, nodes: Sequence[int], t_lo: float, t_hi: float
    ) -> list[int]:
        # Per-partition results are sorted/deduplicated and index ranges
        # across partitions are disjoint and increasing, so plain
        # concatenation preserves the contract.
        out: list[int] = []
        for p in self._parts_in(t_lo, t_hi):
            off = self._ev_lo[p]
            out.extend(
                i + off
                for i in self.partition(p).adjacent_events_between(nodes, t_lo, t_hi)
            )
        return out

    # ------------------------------------------------------------------
    # slicing / sharding
    # ------------------------------------------------------------------
    def slice_range(self, lo: int, hi: int) -> NumpyStorage:
        """Materialize ``[lo, hi)`` as one in-memory flat storage.

        Memory follows the slice, not the stream: covered partitions are
        opened one at a time (respecting the residency bound) and their
        column slices concatenated.  A single-partition slice stays a
        zero-copy view of the mmap'd columns.
        """
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_range.calls")
        lo = max(0, min(lo, self._n))
        hi = max(lo, min(hi, self._n))
        if hi == lo:
            return NumpyStorage.from_events((), presorted=True)
        p_lo, _ = self._locate(lo)
        p_hi, _ = self._locate(hi - 1)
        if p_lo == p_hi:
            part = self.partition(p_lo)
            a, b = lo - self._ev_lo[p_lo], hi - self._ev_lo[p_lo]
            return NumpyStorage.from_arrays(part._u[a:b], part._v[a:b], part._t[a:b])
        us, vs, ts = [], [], []
        for p in range(p_lo, p_hi + 1):
            part = self.partition(p)
            a = max(0, lo - self._ev_lo[p])
            b = min(self._n_part[p], hi - self._ev_lo[p])
            us.append(np.asarray(part._u[a:b]))
            vs.append(np.asarray(part._v[a:b]))
            ts.append(np.asarray(part._t[a:b]))
        return NumpyStorage.from_arrays(
            np.concatenate(us), np.concatenate(vs), np.concatenate(ts)
        )

    def slice_time(self, t_lo: float, t_hi: float) -> NumpyStorage:
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_time.calls")
        return self.slice_range(self.bisect_time_left(t_lo), self.bisect_time_right(t_hi))

    def shard_payload(self, lo: int, hi: int) -> dict:
        """A constant-size payload: workers re-open the directory themselves.

        Shipping ``(path, lo, hi)`` instead of event data keeps the
        parent's task list O(shards) regardless of stream size — the
        essence of out-of-core execution.
        """
        return {
            "kind": _SHARD_KIND,
            "path": self._path,
            "lo": int(lo),
            "hi": int(hi),
            "mmap": self._mmap,
        }

    @classmethod
    def from_shard_payload(cls, payload) -> GraphStorage:
        if isinstance(payload, dict) and payload.get("kind") == _SHARD_KIND:
            source = cls(payload["path"], mmap=payload.get("mmap", True), max_resident=2)
            return source.slice_range(payload["lo"], payload["hi"])
        return super().from_shard_payload(payload)

    # ------------------------------------------------------------------
    # mutation (unsupported: the directory is the source of truth)
    # ------------------------------------------------------------------
    def append(self, event: Event) -> int:
        raise NotImplementedError(
            "PartitionedStorage is read-only; append to an in-memory backend "
            "and re-save with TemporalGraph.save(path, partition_events=...)"
        )
