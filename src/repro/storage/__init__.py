"""Pluggable temporal-graph storage engines.

:class:`~repro.storage.base.GraphStorage` defines the index/query contract
:class:`~repro.core.temporal_graph.TemporalGraph` delegates to; concrete
backends register themselves here under a short name:

* ``"list"`` — :class:`~repro.storage.list_backend.ListStorage`, the
  original dict-of-lists representation (default, reference semantics);
* ``"columnar"`` — :class:`~repro.storage.columnar.ColumnarStorage`, flat
  ``array('q')``/``array('d')`` columns with CSR offsets: faster to build,
  lighter in memory, same answers;
* ``"numpy"`` — :class:`~repro.storage.numpy_backend.NumpyStorage`,
  contiguous ``ndarray`` columns with lazy CSR indices: vectorized
  ``searchsorted`` window kernels, batched queries, zero-copy time
  slices, and memory-mapped persistence
  (:meth:`~repro.storage.numpy_backend.NumpyStorage.save` /
  :meth:`~repro.storage.numpy_backend.NumpyStorage.load` over an
  ``.npy`` page directory).  Registered only when NumPy is importable.
* ``"partitioned"`` — :class:`~repro.storage.partitioned.PartitionedStorage`,
  the out-of-core engine: one flat page set per time interval under a
  top-level ``manifest.json``, partitions opened lazily (``mmap_mode="r"``)
  with an LRU-bounded resident set, and censuses routed through the
  sharded engine so peak memory follows the largest δ-overlapped shard
  rather than the stream.  Registered only when NumPy is importable.

Selection order: an explicit ``backend=`` argument wins, then the
``REPRO_STORAGE`` environment variable (``REPRO_STORAGE=numpy`` turns the
tensor engine on globally), then :data:`DEFAULT_BACKEND`.

Adding a backend is three steps: subclass ``GraphStorage`` (implement the
abstract constructors/queries; the base class supplies generic slices,
coarsening and batch ``update``), call :func:`register_backend`, and run
the parity suite in ``tests/test_storage.py`` — it holds every registered
backend to answer-identical behavior against ``ListStorage``.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.core.events import Event
from repro.storage.base import GraphStorage
from repro.storage.columnar import ColumnarStorage
from repro.storage.list_backend import ListStorage
from repro.storage.numpy_backend import NumpyStorage
from repro.storage import numpy_backend as _numpy_backend
from repro.storage.partitioned import PartitionedStorage, write_partitioned

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_STORAGE"

#: Backend used when neither an argument nor the environment chooses one.
DEFAULT_BACKEND = "list"

_BACKENDS: dict[str, type[GraphStorage]] = {}


def register_backend(name: str, cls: type[GraphStorage]) -> None:
    """Register a storage engine class under ``name`` (overwrites)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKENDS[name] = cls


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> type[GraphStorage]:
    """Resolve a backend class from a name, the environment, or the default."""
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown storage backend {name!r}; available: {known} "
            f"(set via backend= or the {ENV_VAR} environment variable)"
        ) from None


def make_storage(
    events: Iterable[Event],
    *,
    backend: str | None = None,
    presorted: bool = False,
) -> GraphStorage:
    """Build a storage engine of the selected backend from events."""
    return get_backend(backend).from_events(events, presorted=presorted)


register_backend(ListStorage.backend_name, ListStorage)
register_backend(ColumnarStorage.backend_name, ColumnarStorage)
if _numpy_backend.available():
    register_backend(NumpyStorage.backend_name, NumpyStorage)
    register_backend(PartitionedStorage.backend_name, PartitionedStorage)

__all__ = [
    "ColumnarStorage",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "GraphStorage",
    "ListStorage",
    "NumpyStorage",
    "PartitionedStorage",
    "write_partitioned",
    "available_backends",
    "get_backend",
    "make_storage",
    "register_backend",
]
