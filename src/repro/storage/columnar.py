"""Columnar storage backend: flat ``array`` columns with CSR offset indices.

Layout
------

The event stream is stored as three flat columns — ``u`` and ``v`` in
``array('q')`` (int64) and ``t`` in ``array('d')`` (float64) — instead of
per-event Python objects: the ``events`` tuple (and the per-node/per-edge
dict views) are materialized from the columns on first access and cached,
so query-only workloads never box an event, and :meth:`event_at` resolves
a single index in O(1) without snapshotting the stream.  The per-node and
per-edge indices are CSR-style:
one flat ``array('q')`` of event indices grouped by node (edge), one
parallel ``array('d')`` of timestamps, and an offsets list mapping each
node (edge) *slot* to its ``[start, end)`` range.  A window query is then a
slot lookup plus a :mod:`bisect` over a bounded range of the flat timestamp
array — no per-node list objects, no boxed floats, ~4× less index memory
than dict-of-lists.

Construction is vectorized through NumPy when available (one ``lexsort``
per index instead of millions of interpreter-level ``append`` calls) with
a pure-Python counting-sort fallback, so the backend works — just slower —
on interpreters without NumPy.

Appends land in a small *tail* (plain dict-of-lists delta) so a live graph
never rebuilds its columns per event; the tail is folded into the columns
once it exceeds :attr:`ColumnarStorage.compact_threshold`.  Because
:meth:`append` requires non-decreasing timestamps, every merged query is a
cheap concatenation of a CSR range and a tail range.

Node ids must fit in a signed 64-bit integer (the ``'q'`` typecode);
anything wider raises at construction.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Iterable, Iterator

import repro.obs as _obs
from repro.core.events import Event, validate_events
from repro.storage.base import GraphStorage

try:  # NumPy accelerates construction only; queries never need it.
    import numpy as _np
except Exception:  # pragma: no cover - the image bakes numpy in
    _np = None


class ColumnarStorage(GraphStorage):
    """Flat-column event store with CSR per-node / per-edge indices."""

    backend_name = "columnar"

    #: Tail appends tolerated before the columns are rebuilt in one pass.
    compact_threshold = 4096

    def __init__(self, events: Iterable[Event], *, presorted: bool = False) -> None:
        validated = (
            list(events) if presorted else validate_events(events)
        )
        self._build(tuple(validated))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Event], *, presorted: bool = False
    ) -> "ColumnarStorage":
        return cls(events, presorted=presorted)

    def _build(self, events: tuple[Event, ...]) -> None:
        """(Re)build columns and CSR indices from a validated event tuple.

        The event *objects* are not retained — only the columns are.  The
        :attr:`events` tuple is rebuilt from the columns on first access
        (and cached), so query-only workloads never hold boxed events.
        """
        self._m = len(events)
        self._main_cache: tuple[Event, ...] | None = None
        # Tail delta for appends: events, per-node/edge index+time lists.
        self._tail: list[Event] = []
        self._tail_node_events: dict[int, list[int]] = {}
        self._tail_node_times: dict[int, list[float]] = {}
        self._tail_edge_events: dict[tuple[int, int], list[int]] = {}
        self._tail_edge_times: dict[tuple[int, int], list[float]] = {}
        self._invalidate_views()

        m = len(events)
        self._col_u = array("q")
        self._col_v = array("q")
        self._col_t = array("d")
        if m == 0:
            self._node_slot: dict[int, int] = {}
            self._node_off: list[int] = [0]
            self._node_idx = array("q")
            self._node_t = array("d")
            self._edge_slot: dict[tuple[int, int], int] = {}
            self._edge_off: list[int] = [0]
            self._edge_idx = array("q")
            self._edge_t = array("d")
            return
        built = False
        if _np is not None:
            built = self._build_numpy(events)
        if not built:
            self._build_python(events)

    def _build_numpy(self, events: tuple[Event, ...]) -> bool:
        """Vectorized index construction; returns False to request fallback."""
        np = _np
        m = len(events)
        try:
            # The columns are built straight from the event fields — much
            # cheaper than np.array(events) — and NumPy works on zero-copy
            # views of their buffers.
            self._col_u = array("q", [ev[0] for ev in events])
            self._col_v = array("q", [ev[1] for ev in events])
            self._col_t = array("d", [ev[2] for ev in events])
        except (TypeError, ValueError, OverflowError):
            # e.g. node ids wider than int64: let the pure-Python path try
            # (its array() calls will raise a clear error if truly unfit).
            self._col_u = array("q")
            self._col_v = array("q")
            self._col_t = array("d")
            return False
        u = np.frombuffer(self._col_u, dtype=np.int64)
        v = np.frombuffer(self._col_v, dtype=np.int64)
        t = np.frombuffer(self._col_t, dtype=np.float64)

        # --- node CSR ---------------------------------------------------
        # Each event contributes its index under both endpoints.  Position
        # keys 2i (source) / 2i+1 (target) reproduce the seed's insertion
        # order: within a node by event index, across nodes by first touch.
        ar = np.arange(m, dtype=np.int64)
        endpoints = np.concatenate((u, v))
        pos = np.concatenate((2 * ar, 2 * ar + 1))
        loops = u == v
        if loops.any():
            keep = np.concatenate((np.ones(m, dtype=bool), ~loops))
            endpoints = endpoints[keep]
            pos = pos[keep]
        order = np.lexsort((pos, endpoints))
        s_nodes = endpoints[order]
        s_pos = pos[order]
        s_eidx = s_pos >> 1
        starts = np.flatnonzero(np.diff(s_nodes)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), starts))
        # ``starts`` doubles as the offsets table; the slot stored per node
        # is its group index in this sorted layout, while dict insertion
        # follows first appearance for seed-order iteration parity.
        appearance = np.argsort(s_pos[starts], kind="stable")
        self._node_slot = dict(
            zip(s_nodes[starts][appearance].tolist(), appearance.tolist())
        )
        self._node_off = starts.tolist() + [len(s_nodes)]
        self._node_idx = array("q")
        self._node_idx.frombytes(np.ascontiguousarray(s_eidx).tobytes())
        self._node_t = array("d")
        self._node_t.frombytes(np.ascontiguousarray(t[s_eidx]).tobytes())

        # --- edge CSR ---------------------------------------------------
        eorder = np.lexsort((v, u))  # stable: ties keep event (time) order
        su, sv = u[eorder], v[eorder]
        estarts = np.flatnonzero((np.diff(su) != 0) | (np.diff(sv) != 0)) + 1
        estarts = np.concatenate((np.zeros(1, dtype=np.int64), estarts))
        eappearance = np.argsort(eorder[estarts], kind="stable")
        self._edge_slot = dict(
            zip(
                zip(
                    su[estarts][eappearance].tolist(),
                    sv[estarts][eappearance].tolist(),
                ),
                eappearance.tolist(),
            )
        )
        self._edge_off = estarts.tolist() + [m]
        self._edge_idx = array("q")
        self._edge_idx.frombytes(np.ascontiguousarray(eorder).tobytes())
        self._edge_t = array("d")
        self._edge_t.frombytes(np.ascontiguousarray(t[eorder]).tobytes())
        return True

    def _build_python(self, events: tuple[Event, ...]) -> None:
        """Counting-sort fallback used when NumPy is absent or ids overflow."""
        self._col_u = array("q", (ev.u for ev in events))
        self._col_v = array("q", (ev.v for ev in events))
        self._col_t = array("d", (ev.t for ev in events))

        node_slot: dict[int, int] = {}
        node_counts: list[int] = []
        edge_slot: dict[tuple[int, int], int] = {}
        edge_counts: list[int] = []
        for ev in events:
            for node in (ev.u, ev.v) if ev.u != ev.v else (ev.u,):
                slot = node_slot.setdefault(node, len(node_slot))
                if slot == len(node_counts):
                    node_counts.append(0)
                node_counts[slot] += 1
            eslot = edge_slot.setdefault(ev.edge, len(edge_slot))
            if eslot == len(edge_counts):
                edge_counts.append(0)
            edge_counts[eslot] += 1

        node_off = _prefix_sum(node_counts)
        edge_off = _prefix_sum(edge_counts)
        node_idx = array("q", bytes(8 * node_off[-1]))
        node_t = array("d", bytes(8 * node_off[-1]))
        edge_idx = array("q", bytes(8 * edge_off[-1]))
        edge_t = array("d", bytes(8 * edge_off[-1]))
        ncursor = list(node_off[:-1])
        ecursor = list(edge_off[:-1])
        for idx, ev in enumerate(events):
            for node in (ev.u, ev.v) if ev.u != ev.v else (ev.u,):
                c = ncursor[node_slot[node]]
                node_idx[c] = idx
                node_t[c] = ev.t
                ncursor[node_slot[node]] = c + 1
            c = ecursor[edge_slot[ev.edge]]
            edge_idx[c] = idx
            edge_t[c] = ev.t
            ecursor[edge_slot[ev.edge]] = c + 1

        self._node_slot = node_slot
        self._node_off = node_off
        self._node_idx = node_idx
        self._node_t = node_t
        self._edge_slot = edge_slot
        self._edge_off = edge_off
        self._edge_idx = edge_idx
        self._edge_t = edge_t

    # ------------------------------------------------------------------
    # cached materialized views
    # ------------------------------------------------------------------
    def _invalidate_views(self) -> None:
        self._events_cache: tuple[Event, ...] | None = None
        self._times_cache: list[float] | None = None
        self._node_events_cache: dict[int, list[int]] | None = None
        self._node_times_cache: dict[int, list[float]] | None = None
        self._edge_events_cache: dict[tuple[int, int], list[int]] | None = None
        self._edge_times_cache: dict[tuple[int, int], list[float]] | None = None

    @property
    def events(self) -> tuple[Event, ...]:
        if self._events_cache is None:
            main = self._main_cache
            if main is None:
                main = self._main_cache = tuple(
                    map(Event, self._col_u, self._col_v, self._col_t)
                )
            self._events_cache = main + tuple(self._tail) if self._tail else main
        return self._events_cache

    @property
    def times(self) -> list[float]:
        if self._times_cache is None:
            times = self._col_t.tolist()
            times.extend(ev.t for ev in self._tail)
            self._times_cache = times
        return self._times_cache

    @property
    def node_events(self) -> dict[int, list[int]]:
        if self._node_events_cache is None:
            out = {
                node: self._node_idx[
                    self._node_off[slot] : self._node_off[slot + 1]
                ].tolist()
                for node, slot in self._node_slot.items()
            }
            for node, idxs in self._tail_node_events.items():
                out.setdefault(node, []).extend(idxs)
            self._node_events_cache = out
        return self._node_events_cache

    @property
    def node_times(self) -> dict[int, list[float]]:
        if self._node_times_cache is None:
            times = self.times
            self._node_times_cache = {
                node: [times[i] for i in idxs]
                for node, idxs in self.node_events.items()
            }
        return self._node_times_cache

    @property
    def edge_events(self) -> dict[tuple[int, int], list[int]]:
        if self._edge_events_cache is None:
            out = {
                edge: self._edge_idx[
                    self._edge_off[slot] : self._edge_off[slot + 1]
                ].tolist()
                for edge, slot in self._edge_slot.items()
            }
            for edge, idxs in self._tail_edge_events.items():
                out.setdefault(edge, []).extend(idxs)
            self._edge_events_cache = out
        return self._edge_events_cache

    @property
    def edge_times(self) -> dict[tuple[int, int], list[float]]:
        if self._edge_times_cache is None:
            times = self.times
            self._edge_times_cache = {
                edge: [times[i] for i in idxs]
                for edge, idxs in self.edge_events.items()
            }
        return self._edge_times_cache

    # ------------------------------------------------------------------
    # scalar views (avoid materializing the dict caches)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> set[int]:
        out = set(self._node_slot)
        out.update(self._tail_node_events)
        return out

    @property
    def num_nodes(self) -> int:
        extra = sum(1 for n in self._tail_node_events if n not in self._node_slot)
        return len(self._node_slot) + extra

    @property
    def num_edges(self) -> int:
        extra = sum(1 for e in self._tail_edge_events if e not in self._edge_slot)
        return len(self._edge_slot) + extra

    @property
    def start_time(self) -> float | None:
        if len(self._col_t):
            return self._col_t[0]
        return self._tail[0].t if self._tail else None

    @property
    def end_time(self) -> float | None:
        if self._tail:
            return self._tail[-1].t
        return self._col_t[-1] if len(self._col_t) else None

    def __len__(self) -> int:
        return self._m + len(self._tail)

    def event_at(self, idx: int) -> Event:
        """O(1) event lookup straight from the columns (or the tail)."""
        if idx < 0:
            idx += len(self)
        if idx >= self._m:
            return self._tail[idx - self._m]
        if self._main_cache is not None:
            return self._main_cache[idx]
        return Event(self._col_u[idx], self._col_v[idx], self._col_t[idx])

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def _node_range(self, node: int) -> tuple[int, int]:
        slot = self._node_slot.get(node)
        if slot is None:
            return (0, 0)
        return self._node_off[slot], self._node_off[slot + 1]

    def _edge_range(self, edge: tuple[int, int]) -> tuple[int, int]:
        slot = self._edge_slot.get(edge)
        if slot is None:
            return (0, 0)
        return self._edge_off[slot], self._edge_off[slot + 1]

    def node_event_indices(self, node: int) -> list[int]:
        lo, hi = self._node_range(node)
        out = self._node_idx[lo:hi].tolist()
        tail = self._tail_node_events.get(node)
        if tail:
            out.extend(tail)
        return out

    def edge_event_indices(self, edge: tuple[int, int]) -> list[int]:
        lo, hi = self._edge_range(edge)
        out = self._edge_idx[lo:hi].tolist()
        tail = self._tail_edge_events.get(edge)
        if tail:
            out.extend(tail)
        return out

    def neighbors(self, node: int) -> set[int]:
        out: set[int] = set()
        col_u, col_v = self._col_u, self._col_v
        lo, hi = self._node_range(node)
        for pos in range(lo, hi):
            i = self._node_idx[pos]
            u = col_u[i]
            out.add(col_v[i] if u == node else u)
        if self._tail:
            m = self._m
            for i in self._tail_node_events.get(node, ()):
                ev = self._tail[i - m]
                out.add(ev.v if ev.u == node else ev.u)
        out.discard(node)
        return out

    def iter_uvt(self) -> Iterator[tuple[int, int, float]]:
        yield from zip(self._col_u, self._col_v, self._col_t)
        for ev in self._tail:
            yield (ev.u, ev.v, ev.t)

    # ------------------------------------------------------------------
    # windowed queries
    # ------------------------------------------------------------------
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        lo, hi = self._node_range(node)
        a = bisect.bisect_left(self._node_t, t_lo, lo, hi)
        b = bisect.bisect_right(self._node_t, t_hi, lo, hi)
        out = self._node_idx[a:b].tolist()
        if self._tail:
            out.extend(self._tail_window(self._tail_node_times.get(node),
                                         self._tail_node_events.get(node),
                                         t_lo, t_hi))
        return out

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        lo, hi = self._node_range(node)
        n = bisect.bisect_right(self._node_t, t_hi, lo, hi) - bisect.bisect_left(
            self._node_t, t_lo, lo, hi
        )
        if self._tail:
            times = self._tail_node_times.get(node)
            if times:
                n += bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)
        return n

    def edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> list[int]:
        lo, hi = self._edge_range(edge)
        a = bisect.bisect_left(self._edge_t, t_lo, lo, hi)
        b = bisect.bisect_right(self._edge_t, t_hi, lo, hi)
        out = self._edge_idx[a:b].tolist()
        if self._tail:
            out.extend(self._tail_window(self._tail_edge_times.get(edge),
                                         self._tail_edge_events.get(edge),
                                         t_lo, t_hi))
        return out

    def count_edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> int:
        lo, hi = self._edge_range(edge)
        n = bisect.bisect_right(self._edge_t, t_hi, lo, hi) - bisect.bisect_left(
            self._edge_t, t_lo, lo, hi
        )
        if self._tail:
            times = self._tail_edge_times.get(edge)
            if times:
                n += bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)
        return n

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        lo = bisect.bisect_left(self._col_t, t_lo)
        hi = bisect.bisect_right(self._col_t, t_hi)
        if not self._tail:
            return list(range(lo, hi))
        m = self._m
        tail_times = [ev.t for ev in self._tail]
        tlo = bisect.bisect_left(tail_times, t_lo)
        thi = bisect.bisect_right(tail_times, t_hi)
        return list(range(lo, hi)) + list(range(m + tlo, m + thi))

    def count_events_in(self, t_lo: float, t_hi: float) -> int:
        n = bisect.bisect_right(self._col_t, t_hi) - bisect.bisect_left(
            self._col_t, t_lo
        )
        if self._tail:
            tail_times = [ev.t for ev in self._tail]
            n += bisect.bisect_right(tail_times, t_hi) - bisect.bisect_left(
                tail_times, t_lo
            )
        return n

    def node_events_between(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        lo, hi = self._node_range(node)
        a = bisect.bisect_right(self._node_t, t_lo, lo, hi)
        b = bisect.bisect_right(self._node_t, t_hi, lo, hi)
        out = self._node_idx[a:b].tolist()
        if self._tail:
            times = self._tail_node_times.get(node)
            if times:
                idxs = self._tail_node_events[node]
                a = bisect.bisect_right(times, t_lo)
                b = bisect.bisect_right(times, t_hi)
                out.extend(idxs[a:b])
        return out

    @staticmethod
    def _tail_window(
        times: list[float] | None, idxs: list[int] | None, t_lo: float, t_hi: float
    ) -> list[int]:
        if not times:
            return []
        a = bisect.bisect_left(times, t_lo)
        b = bisect.bisect_right(times, t_hi)
        return idxs[a:b]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, event: Event) -> int:
        ev = self._check_appendable(event)
        idx = self._m + len(self._tail)
        self._tail.append(ev)
        for node in (ev.u, ev.v):
            self._tail_node_events.setdefault(node, []).append(idx)
            self._tail_node_times.setdefault(node, []).append(ev.t)
        self._tail_edge_events.setdefault(ev.edge, []).append(idx)
        self._tail_edge_times.setdefault(ev.edge, []).append(ev.t)
        self._invalidate_views()
        if len(self._tail) >= self.compact_threshold:
            self.compact()
        return idx

    def compact(self) -> None:
        """Fold tail appends into the flat columns (one vectorized rebuild)."""
        if self._tail:
            rec = _obs.ACTIVE
            if rec is not None:
                rec.inc("storage.compact.calls")
                rec.observe("storage.compact.tail_events", len(self._tail))
            self._build(self.events)


def _prefix_sum(counts: list[int]) -> list[int]:
    out = [0] * (len(counts) + 1)
    total = 0
    for i, c in enumerate(counts):
        total += c
        out[i + 1] = total
    return out
