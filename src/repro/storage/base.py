"""The storage-engine contract behind :class:`~repro.core.temporal_graph.TemporalGraph`.

A :class:`GraphStorage` owns the time-sorted event list of one temporal
network plus whatever indices it needs to answer the library's windowed
queries.  The facade (:class:`~repro.core.temporal_graph.TemporalGraph`)
delegates *all* index maintenance and window bisection here, so backends
can evolve independently of the motif models: a backend may keep plain
Python lists (:class:`~repro.storage.list_backend.ListStorage`), flat
columns with CSR offsets
(:class:`~repro.storage.columnar.ColumnarStorage`), or NumPy/mmap pages
(:class:`~repro.storage.numpy_backend.NumpyStorage`), without touching
enumeration or restriction code.

Contract invariants every backend must uphold
---------------------------------------------

* Events are stored sorted by ``(t, u, v)`` and addressed by their
  position (*event index*), the universal handle of the library.
* ``node_events`` / ``edge_events`` map each node (directed edge) to the
  time-sorted list of indices of events touching it; ``node_times`` /
  ``edge_times`` are the parallel timestamp lists used as bisect keys.
  Mapping iteration follows **first-appearance order** (the order a seed
  ``dict`` would have been filled in one pass over the events) so that
  seeded randomized consumers — e.g. the link-shuffling null model — are
  reproducible across backends.
* All window queries treat ``[t_lo, t_hi]`` as a **closed** interval;
  :meth:`node_events_between` alone is half-open ``(t_lo, t_hi]``, which
  is the enumeration engine's strict-ordering window.
* :meth:`append` only accepts events at or after :attr:`end_time`
  (non-decreasing time), which is what keeps event indices stable on a
  live, growing graph.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import ClassVar, Iterable, Iterator, Mapping, Sequence

import repro.obs as _obs
from repro.core.events import Event, validate_events


class GraphStorage(ABC):
    """Abstract index/query engine for one temporal event list."""

    #: Registry key of the backend (``"list"``, ``"columnar"``, ...).
    backend_name: ClassVar[str] = ""

    #: Extension-kernel capability this backend advertises to the
    #: execution engine (:func:`repro.engine.compile_plan`): the name of
    #: a :class:`repro.engine.kernels.ExtensionKernel` able to run the
    #: frontier-extension primitive natively over this backend's layout.
    #: ``"generic"`` — per-node bisection through
    #: :meth:`adjacent_events_between` — is always correct; array
    #: backends override it (the numpy backend advertises ``"numpy"``).
    #: Unknown names demote to generic at plan-compile time, so a
    #: backend may advertise a kernel that only some builds provide.
    extension_kernel: ClassVar[str] = "generic"

    #: When True, whole-graph census entry points route through the
    #: sharded engine even at ``jobs=1``: the backend would rather run a
    #: sequence of bounded shard rebuilds than let the serial loop
    #: materialize its full event stream.  Out-of-core backends (the
    #: partitioned page directory) set this; in-memory backends keep the
    #: cheaper direct loop.
    prefers_sharded_execution: ClassVar[bool] = False

    #: Whether :meth:`append` is implemented.  Read-only engines (the
    #: partitioned directory view, whose source of truth is on disk)
    #: set this False; mutation-contract consumers (the online engine,
    #: the append parity suite) skip them.
    supports_append: ClassVar[bool] = True

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def from_events(
        cls, events: Iterable[Event], *, presorted: bool = False
    ) -> "GraphStorage":
        """Build a storage engine from events.

        ``presorted=True`` promises the input is already validated and
        ``(t, u, v)``-sorted (e.g. a slice of another storage), letting
        backends skip re-validation.
        """

    def to_events(self) -> tuple[Event, ...]:
        """The stored events as an immutable time-sorted tuple."""
        return self.events

    # ------------------------------------------------------------------
    # materialized views (source-compatible with the pre-storage graph)
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def events(self) -> tuple[Event, ...]:
        """Time-sorted events; position in this tuple is the event index."""

    @property
    @abstractmethod
    def times(self) -> list[float]:
        """Timestamps parallel to :attr:`events`."""

    @property
    @abstractmethod
    def node_events(self) -> Mapping[int, list[int]]:
        """node -> time-sorted event indices touching the node."""

    @property
    @abstractmethod
    def node_times(self) -> Mapping[int, list[float]]:
        """node -> timestamps parallel to :attr:`node_events`."""

    @property
    @abstractmethod
    def edge_events(self) -> Mapping[tuple[int, int], list[int]]:
        """directed edge -> time-sorted event indices on that edge."""

    @property
    @abstractmethod
    def edge_times(self) -> Mapping[tuple[int, int], list[float]]:
        """directed edge -> timestamps parallel to :attr:`edge_events`."""

    # ------------------------------------------------------------------
    # scalar views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def nodes(self) -> set[int]:
        """The set of nodes appearing in at least one event."""
        return set(self.node_events)

    @property
    def num_nodes(self) -> int:
        return len(self.node_events)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed static edges."""
        return len(self.edge_events)

    @property
    def start_time(self) -> float | None:
        """Timestamp of the earliest event (``None`` when empty)."""
        times = self.times
        return times[0] if times else None

    @property
    def end_time(self) -> float | None:
        """Timestamp of the latest event (``None`` when empty)."""
        times = self.times
        return times[-1] if times else None

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    @abstractmethod
    def node_event_indices(self, node: int) -> list[int]:
        """All event indices touching ``node`` (empty list if unknown)."""

    @abstractmethod
    def edge_event_indices(self, edge: tuple[int, int]) -> list[int]:
        """All event indices on directed ``edge`` (empty list if unknown)."""

    def neighbors(self, node: int) -> set[int]:
        """Nodes adjacent to ``node`` in the directed static projection."""
        events = self.events
        out: set[int] = set()
        for idx in self.node_event_indices(node):
            ev = events[idx]
            out.add(ev.v if ev.u == node else ev.u)
        out.discard(node)
        return out

    def get_nbrs(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        """Sorted static neighbor lists for each requested node."""
        return {node: sorted(self.neighbors(node)) for node in nodes}

    def event_at(self, idx: int) -> Event:
        """The event at one index, in O(1) without snapshotting the stream.

        Equivalent to ``storage.events[idx]`` but — on backends whose
        :attr:`events` tuple is materialized on demand — without paying an
        O(m) rebuild per access on a mutating (live) graph.
        """
        return self.events[idx]

    def iter_uvt(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, t)`` triples in event-index order.

        Columnar backends override this to stream straight from their
        columns; the default unpacks the event records.
        """
        return iter(self.events)

    # ------------------------------------------------------------------
    # shard-planning seams (partition-aware planners go through these
    # instead of materializing ``times``; the defaults delegate to the
    # cached timestamp list, so in-memory backends behave as before)
    # ------------------------------------------------------------------
    def time_at(self, idx: int) -> float:
        """Timestamp of the event at ``idx`` (supports negative indices)."""
        return self.times[idx]

    def bisect_time_left(self, t: float) -> int:
        """First event index with timestamp ``>= t``."""
        return bisect.bisect_left(self.times, t)

    def bisect_time_right(self, t: float) -> int:
        """First event index with timestamp ``> t``."""
        return bisect.bisect_right(self.times, t)

    def shard_count_hint(self) -> int:
        """Minimum shard count this backend wants from the planner.

        Zero means "no preference" (in-memory backends: one shard per
        worker is ideal).  Partitioned storages return their partition
        count so that each shard's δ-overlapped window stays roughly one
        partition wide — the knob that bounds worker peak memory.
        """
        return 0

    # ------------------------------------------------------------------
    # windowed queries (the hot path of every restriction checker)
    # ------------------------------------------------------------------
    @abstractmethod
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        """Indices of events touching ``node`` with ``t_lo <= t <= t_hi``."""

    @abstractmethod
    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        """Number of events touching ``node`` in the closed window."""

    @abstractmethod
    def edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> list[int]:
        """Indices of events on directed ``edge`` with ``t_lo <= t <= t_hi``."""

    @abstractmethod
    def count_edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> int:
        """Number of events on directed ``edge`` in the closed window."""

    @abstractmethod
    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        """Indices of all events with ``t_lo <= t <= t_hi``."""

    def count_events_in(self, t_lo: float, t_hi: float) -> int:
        """Number of events in the closed window."""
        return len(self.events_in(t_lo, t_hi))

    @abstractmethod
    def node_events_between(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        """Indices of events touching ``node`` with ``t_lo < t <= t_hi``.

        The half-open window of connected-growth candidate generation:
        strictly-later events only (total ordering), up to a deadline.
        """

    # ------------------------------------------------------------------
    # batched windowed queries (vectorizable backends override these)
    # ------------------------------------------------------------------
    def count_node_events_in_batch(
        self,
        nodes: Sequence[int],
        t_los: Sequence[float],
        t_his: Sequence[float],
    ) -> list[int]:
        """Closed-window counts for many ``(node, t_lo, t_hi)`` queries.

        The generic implementation loops the scalar query; array-backed
        engines answer the whole batch with a constant number of
        vectorized probes.  All three sequences must share one length.
        """
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.window_batch.calls")
            rec.observe("storage.window_batch.queries", len(nodes))
        return [
            self.count_node_events_in(node, t_lo, t_hi)
            for node, t_lo, t_hi in zip(nodes, t_los, t_his, strict=True)
        ]

    def adjacent_events_between(
        self, nodes: Sequence[int], t_lo: float, t_hi: float
    ) -> list[int]:
        """Sorted, deduplicated union of :meth:`node_events_between` over ``nodes``.

        The enumeration engine's candidate-generation primitive: events
        adjacent to *any* motif node in the half-open ``(t_lo, t_hi]``
        window, each index once (an event touching two motif nodes appears
        in two adjacency lists), sorted for determinism.
        """
        found: set[int] = set()
        for node in nodes:
            found.update(self.node_events_between(node, t_lo, t_hi))
        out = sorted(found)
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.adjacent_events_between.calls")
            rec.observe("storage.adjacent_events_between.candidates", len(out))
        return out

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def slice_time(self, t_lo: float, t_hi: float) -> "GraphStorage":
        """A new storage holding only events in the closed window."""
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_time.calls")
        times = self.times
        lo = bisect.bisect_left(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return type(self).from_events(self.events[lo:hi], presorted=True)

    def slice_range(self, lo: int, hi: int) -> "GraphStorage":
        """A new storage over the contiguous event-index range ``[lo, hi)``.

        The slice of a time-sorted stream is itself time-sorted, so no
        re-validation happens; local index ``i`` of the result corresponds
        to index ``lo + i`` of this storage.  Array-backed engines override
        this with zero-copy column views.
        """
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_range.calls")
        return type(self).from_events(self.events[lo:hi], presorted=True)

    def shard_payload(self, lo: int, hi: int):
        """A picklable payload representing ``events[lo:hi]`` for workers.

        Whatever this returns must round-trip through
        :meth:`from_shard_payload` on the same backend class.  The generic
        payload is the event tuple; array-backed engines ship column
        slices instead, skipping the per-event boxing on both sides.
        """
        return self.events[lo:hi]

    @classmethod
    def from_shard_payload(cls, payload) -> "GraphStorage":
        """Rebuild a worker-side storage from :meth:`shard_payload` output."""
        return cls.from_events(payload, presorted=True)

    def slice_nodes(self, nodes: Iterable[int]) -> "GraphStorage":
        """A new storage with only events whose endpoints both lie in ``nodes``."""
        node_set = set(nodes)
        kept = [
            ev for ev in self.events if ev.u in node_set and ev.v in node_set
        ]
        return type(self).from_events(kept, presorted=True)

    def coarsen(self, resolution: float) -> "GraphStorage":
        """A new storage with timestamps snapped down to ``resolution`` multiples.

        Snapping can merge previously distinct timestamps, so events are
        re-sorted under the ``(t, u, v)`` key — matching what rebuilding a
        graph from the snapped events has always done.
        """
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        snapped = (
            Event(ev.u, ev.v, (ev.t // resolution) * resolution)
            for ev in self.events
        )
        return type(self).from_events(validate_events(snapped), presorted=True)

    # ------------------------------------------------------------------
    # mutation (live/streaming graphs)
    # ------------------------------------------------------------------
    @abstractmethod
    def append(self, event: Event) -> int:
        """Add one event at the end of the stream; return its index.

        The event's timestamp must be ``>= end_time`` so existing indices
        stay stable.  Backends should call :meth:`_check_appendable`.
        """

    def update(self, events: Event | Iterable[Event]) -> list[int]:
        """Append one event or a time-sorted batch; return the new indices.

        The whole batch is validated *before* any event is committed, so a
        rejected batch leaves the storage untouched — callers may fix the
        input and retry without duplicating a partially applied prefix.
        """
        if isinstance(events, Event):
            return [self.append(events)]
        batch = [ev if isinstance(ev, Event) else Event(*ev) for ev in events]
        last = self.end_time
        for ev in batch:
            last = _validate_arrival(ev, last)
        return [self.append(ev) for ev in batch]

    def _check_appendable(self, event: Event) -> Event:
        """Validate one incoming event for the append path."""
        ev = event if isinstance(event, Event) else Event(*event)
        _validate_arrival(ev, self.end_time)
        return ev


def _validate_arrival(ev: Event, last: float | None) -> float:
    """Check one arriving event against the stream tail; return its time."""
    if ev.t < 0:
        raise ValueError(f"event {ev} has a negative timestamp")
    if ev.is_loop():
        raise ValueError(f"event {ev} is a self-loop; motif models exclude loops")
    if last is not None and ev.t < last:
        raise ValueError(
            f"append requires non-decreasing timestamps: got t={ev.t} "
            f"after t={last} (indices must stay stable)"
        )
    return ev.t
