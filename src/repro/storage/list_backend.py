"""The plain-list storage backend (the library's original representation).

This is the index layout :class:`~repro.core.temporal_graph.TemporalGraph`
was born with, extracted verbatim so behavior is bit-identical: per-node
and per-edge indices are Python lists of integers with parallel timestamp
lists, and every window query is a :mod:`bisect` over one of them.  It is
the default backend and the reference implementation the parity tests
hold every other backend against.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterable

from repro.core.events import Event, validate_events
from repro.storage.base import GraphStorage


class ListStorage(GraphStorage):
    """Dict-of-lists indices over a Python event list."""

    backend_name = "list"

    def __init__(self, events: Iterable[Event], *, presorted: bool = False) -> None:
        validated = list(events) if presorted else validate_events(events)
        self._events: list[Event] = validated
        self._events_tuple: tuple[Event, ...] | None = None
        self._times: list[float] = [ev.t for ev in validated]

        node_events: dict[int, list[int]] = defaultdict(list)
        edge_events: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, ev in enumerate(validated):
            node_events[ev.u].append(idx)
            if ev.v != ev.u:
                node_events[ev.v].append(idx)
            edge_events[ev.edge].append(idx)

        times = self._times
        self._node_events: dict[int, list[int]] = dict(node_events)
        self._node_times: dict[int, list[float]] = {
            node: [times[i] for i in idxs] for node, idxs in node_events.items()
        }
        self._edge_events: dict[tuple[int, int], list[int]] = dict(edge_events)
        self._edge_times: dict[tuple[int, int], list[float]] = {
            edge: [times[i] for i in idxs] for edge, idxs in edge_events.items()
        }

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Event], *, presorted: bool = False
    ) -> "ListStorage":
        return cls(events, presorted=presorted)

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        if self._events_tuple is None:
            self._events_tuple = tuple(self._events)
        return self._events_tuple

    @property
    def times(self) -> list[float]:
        return self._times

    @property
    def node_events(self) -> dict[int, list[int]]:
        return self._node_events

    @property
    def node_times(self) -> dict[int, list[float]]:
        return self._node_times

    @property
    def edge_events(self) -> dict[tuple[int, int], list[int]]:
        return self._edge_events

    @property
    def edge_times(self) -> dict[tuple[int, int], list[float]]:
        return self._edge_times

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def event_at(self, idx: int) -> Event:
        return self._events[idx]

    def node_event_indices(self, node: int) -> list[int]:
        return self._node_events.get(node, [])

    def edge_event_indices(self, edge: tuple[int, int]) -> list[int]:
        return self._edge_events.get(edge, [])

    # ------------------------------------------------------------------
    # windowed queries
    # ------------------------------------------------------------------
    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        times = self._node_times.get(node)
        if times is None:
            return []
        lo = bisect.bisect_left(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return self._node_events[node][lo:hi]

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        times = self._node_times.get(node)
        if times is None:
            return 0
        return bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)

    def edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> list[int]:
        times = self._edge_times.get(edge)
        if times is None:
            return []
        lo = bisect.bisect_left(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return self._edge_events[edge][lo:hi]

    def count_edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> int:
        times = self._edge_times.get(edge)
        if times is None:
            return 0
        return bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        lo = bisect.bisect_left(self._times, t_lo)
        hi = bisect.bisect_right(self._times, t_hi)
        return list(range(lo, hi))

    def count_events_in(self, t_lo: float, t_hi: float) -> int:
        return bisect.bisect_right(self._times, t_hi) - bisect.bisect_left(
            self._times, t_lo
        )

    def node_events_between(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        times = self._node_times.get(node)
        if not times:
            return []
        lo = bisect.bisect_right(times, t_lo)
        hi = bisect.bisect_right(times, t_hi)
        return self._node_events[node][lo:hi]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, event: Event) -> int:
        ev = self._check_appendable(event)
        idx = len(self._events)
        self._events.append(ev)
        self._events_tuple = None
        self._times.append(ev.t)
        for node in (ev.u, ev.v):
            self._node_events.setdefault(node, []).append(idx)
            self._node_times.setdefault(node, []).append(ev.t)
        self._edge_events.setdefault(ev.edge, []).append(idx)
        self._edge_times.setdefault(ev.edge, []).append(ev.t)
        return idx
