"""NumPy page storage backend: contiguous columns, ``searchsorted`` kernels, mmap pages.

Layout
------

The event stream lives in three contiguous ``ndarray`` columns — ``u`` and
``v`` as int64, ``t`` as float64 — and the per-node / per-edge indices are
CSR-style: one flat int64 array of event indices grouped by node (edge)
slot plus an offsets array mapping each slot to its ``[start, end)`` range.
Because the global event order is the time order, the event indices inside
one slot are *strictly increasing*, so every window query reduces to pure
index arithmetic:

1. two ``np.searchsorted`` probes over the global timestamp column turn the
   time window into a half-open global index range ``[L, R)``, and
2. two more probes over the slot's index segment count/slice the events of
   that node (edge) falling inside ``[L, R)``.

Batched variants (:meth:`NumpyStorage.count_node_events_in_batch`,
:meth:`NumpyStorage.adjacent_events_between`) answer *many* window queries
with a constant number of vectorized ``searchsorted`` calls by shifting
each slot's segment into a disjoint band (``index + slot * m``), which
keeps the concatenated CSR array globally sorted.  These are the kernels
behind the enumeration engine's candidate-pruning fast path and the
benchmark's batched window sweep.

CSR indices are built lazily (first per-node/per-edge query) and
vectorized through one ``np.lexsort`` per index, so :meth:`slice_time` and
:meth:`slice_range` are zero-copy column views with deferred index cost.

Persistence
-----------

:meth:`save` writes an ``.npz``-style *page directory*: one ``.npy`` file
per column and per CSR page plus a ``meta.json`` manifest.
:meth:`load` (and the :meth:`TemporalGraph.load
<repro.core.temporal_graph.TemporalGraph.load>` facade) reopens every page
with ``np.load(..., mmap_mode="r")`` by default, so a multi-million-event
stream is queryable without materializing anything beyond the touched
pages.  Appends after a load land in a small tail delta (the columns —
possibly read-only maps — are never written); compaction folds the tail
into fresh in-memory arrays.

Node ids must fit in int64; anything wider raises at construction (use the
``"list"`` backend for exotic ids).
"""

from __future__ import annotations

import bisect
import json
import os
from typing import Any, Iterable, Iterator, Sequence

import repro.obs as _obs
from repro.core.events import Event, validate_events
from repro.storage.base import GraphStorage

try:  # The whole backend requires NumPy; registration is gated on this.
    import numpy as np
except Exception:  # pragma: no cover - the image bakes numpy in
    np = None

#: ``meta.json`` manifest identifier of the page directory layout.
PAGE_FORMAT = "repro-numpy-pages"

#: Version stamp written to (and checked against) ``meta.json``.
PAGE_VERSION = 1

#: Column pages: (file stem, attribute, dtype).
_COLUMN_PAGES = (("u", "_u", "int64"), ("v", "_v", "int64"), ("t", "_t", "float64"))


def available() -> bool:
    """Whether the backend can run (NumPy importable)."""
    return np is not None


class NumpyStorage(GraphStorage):
    """Contiguous-``ndarray`` event store with vectorized window kernels."""

    backend_name = "numpy"

    #: Frontier-extension capability for the execution engine: the JIT
    #: tier (:class:`repro.engine.native.NativeExtensionKernel`) when
    #: numba is installed, demoting down the fallback chain to the
    #: vectorized :class:`repro.engine.kernels.NumpyExtensionKernel`
    #: otherwise — both fed by :meth:`extension_arrays`.
    extension_kernel = "native"

    #: Tail appends tolerated before the columns are rebuilt in one pass.
    compact_threshold = 4096

    def __init__(self, events: Iterable[Event] = (), *, presorted: bool = False) -> None:
        if np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("the 'numpy' storage backend requires NumPy")
        validated = list(events) if presorted else validate_events(events)
        m = len(validated)
        try:
            u = np.fromiter((ev[0] for ev in validated), dtype=np.int64, count=m)
            v = np.fromiter((ev[1] for ev in validated), dtype=np.int64, count=m)
        except OverflowError:
            raise ValueError(
                "the 'numpy' storage backend requires int64 node ids; "
                "use the 'list' backend for wider identifiers"
            ) from None
        t = np.fromiter((ev[2] for ev in validated), dtype=np.float64, count=m)
        self._set_columns(u, v, t)

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Event], *, presorted: bool = False
    ) -> "NumpyStorage":
        return cls(events, presorted=presorted)

    @classmethod
    def from_arrays(cls, u, v, t) -> "NumpyStorage":
        """Wrap pre-sorted column arrays without copying when possible.

        The arrays must describe a valid ``(t, u, v)``-sorted, loop-free
        event stream (e.g. a slice of another :class:`NumpyStorage` or
        pages read back from :meth:`save`); no re-validation happens here.
        """
        if np is None:  # pragma: no cover
            raise RuntimeError("the 'numpy' storage backend requires NumPy")
        storage = cls.__new__(cls)
        storage._set_columns(
            _as_column(u, np.int64), _as_column(v, np.int64), _as_column(t, np.float64)
        )
        return storage

    def _set_columns(self, u, v, t) -> None:
        """Install the three columns and reset every derived structure."""
        self._u = u
        self._v = v
        self._t = t
        self._m = len(t)
        # Lazy CSR indices: (slot dict, offsets, flat indices).
        self._node_csr: tuple | None = None
        self._edge_csr: tuple | None = None
        # Lazy flat timestamp arrays parallel to the CSR index arrays
        # (scalar window queries probe these directly: two searchsorted
        # calls per query instead of four).
        self._node_t: Any | None = None
        self._edge_t: Any | None = None
        # Lazy banded copy of the node CSR (batch kernels only).
        self._node_banded: Any | None = None
        # Lazy sorted node-id array (vectorized node -> slot resolution).
        self._node_keys_sorted: Any | None = None
        # Tail delta for appends (mirrors the columnar backend's layout).
        self._tail: list[Event] = []
        self._tail_node_events: dict[int, list[int]] = {}
        self._tail_node_times: dict[int, list[float]] = {}
        self._tail_edge_events: dict[tuple[int, int], list[int]] = {}
        self._tail_edge_times: dict[tuple[int, int], list[float]] = {}
        self._invalidate_views()

    def _invalidate_views(self) -> None:
        self._events_cache: tuple[Event, ...] | None = None
        self._times_cache: list[float] | None = None
        self._node_events_cache: dict[int, list[int]] | None = None
        self._node_times_cache: dict[int, list[float]] | None = None
        self._edge_events_cache: dict[tuple[int, int], list[int]] | None = None
        self._edge_times_cache: dict[tuple[int, int], list[float]] | None = None

    # ------------------------------------------------------------------
    # lazy CSR indices
    # ------------------------------------------------------------------
    def _node_index(self) -> tuple:
        """``(slot, off, idx)`` of the per-node CSR index.

        ``slot`` maps node -> group position in the sorted layout, with
        dict insertion following first appearance (seed iteration order);
        ``idx[off[s]:off[s+1]]`` is the node's strictly increasing event
        indices.
        """
        if self._node_csr is None:
            m = self._m
            if m == 0:
                empty = np.empty(0, dtype=np.int64)
                self._node_csr = ({}, np.zeros(1, dtype=np.int64), empty)
                return self._node_csr
            u, v = self._u, self._v
            ar = np.arange(m, dtype=np.int64)
            # Each event is indexed under both endpoints; position keys
            # 2i / 2i+1 reproduce the seed's insertion order (within a
            # node by event index, across nodes by first touch).
            endpoints = np.concatenate((u, v))
            pos = np.concatenate((2 * ar, 2 * ar + 1))
            loops = u == v
            if loops.any():
                keep = np.concatenate((np.ones(m, dtype=bool), ~loops))
                endpoints = endpoints[keep]
                pos = pos[keep]
            order = np.lexsort((pos, endpoints))
            grouped_nodes = endpoints[order]
            grouped_pos = pos[order]
            idx = np.ascontiguousarray(grouped_pos >> 1)
            starts = np.flatnonzero(np.diff(grouped_nodes)) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), starts))
            appearance = np.argsort(grouped_pos[starts], kind="stable")
            slot = dict(
                zip(grouped_nodes[starts][appearance].tolist(), appearance.tolist())
            )
            off = np.concatenate((starts, np.array([len(idx)], dtype=np.int64)))
            self._node_csr = (slot, off, idx)
        return self._node_csr

    def _node_banded_index(self):
        """``idx + slot_of_position * m``: the node CSR shifted so each
        slot occupies a disjoint band, making the flat array globally
        sorted — one ``searchsorted`` then answers a probe for any node.
        Built on first batched query (mmap loads stay lazy until then).
        """
        if self._node_banded is None:
            _slot, off, idx = self._node_index()
            counts = np.diff(off)
            self._node_banded = idx + np.repeat(
                np.arange(len(counts), dtype=np.int64), counts
            ) * np.int64(self._m)
        return self._node_banded

    def _node_keys(self):
        """Distinct node ids, ascending — position in this array == slot."""
        if self._node_keys_sorted is None:
            slot = self._node_index()[0]
            keys = np.fromiter(slot.keys(), dtype=np.int64, count=len(slot))
            order = np.fromiter(slot.values(), dtype=np.int64, count=len(slot))
            # Slots enumerate the value-sorted group layout, so scattering
            # the keys by slot yields them in ascending order.
            out = np.empty_like(keys)
            out[order] = keys
            self._node_keys_sorted = out
        return self._node_keys_sorted

    def _node_times_flat(self):
        """Timestamps parallel to the node CSR index array (lazy gather)."""
        if self._node_t is None:
            idx = self._node_index()[2]
            self._node_t = np.ascontiguousarray(self._t[idx])
        return self._node_t

    def _edge_times_flat(self):
        """Timestamps parallel to the edge CSR index array (lazy gather)."""
        if self._edge_t is None:
            idx = self._edge_index()[2]
            self._edge_t = np.ascontiguousarray(self._t[idx])
        return self._edge_t

    def _edge_index(self) -> tuple:
        """``(slot, off, idx)`` of the per-edge CSR index."""
        if self._edge_csr is None:
            m = self._m
            if m == 0:
                self._edge_csr = (
                    {},
                    np.zeros(1, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
                return self._edge_csr
            u, v = self._u, self._v
            # Stable sort by (u, v): ties keep event (time) order.
            order = np.ascontiguousarray(np.lexsort((v, u)))
            su, sv = u[order], v[order]
            starts = np.flatnonzero((np.diff(su) != 0) | (np.diff(sv) != 0)) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), starts))
            appearance = np.argsort(order[starts], kind="stable")
            slot = dict(
                zip(
                    zip(
                        su[starts][appearance].tolist(),
                        sv[starts][appearance].tolist(),
                    ),
                    appearance.tolist(),
                )
            )
            off = np.concatenate((starts, np.array([m], dtype=np.int64)))
            self._edge_csr = (slot, off, order)
        return self._edge_csr

    def _node_segment(self, node: int):
        slot, off, idx = self._node_index()
        s = slot.get(node)
        if s is None:
            return idx[:0]
        return idx[off[s] : off[s + 1]]

    def _node_span(self, node: int) -> tuple[int, int]:
        """The node's ``[start, end)`` range in the flat CSR arrays."""
        slot, off, _idx = self._node_index()
        s = slot.get(node)
        if s is None:
            return (0, 0)
        return int(off[s]), int(off[s + 1])

    def _edge_span(self, edge: tuple[int, int]) -> tuple[int, int]:
        """The edge's ``[start, end)`` range in the flat CSR arrays."""
        slot, off, _idx = self._edge_index()
        s = slot.get(edge)
        if s is None:
            return (0, 0)
        return int(off[s]), int(off[s + 1])

    def _edge_segment(self, edge: tuple[int, int]):
        slot, off, idx = self._edge_index()
        s = slot.get(edge)
        if s is None:
            return idx[:0]
        return idx[off[s] : off[s + 1]]

    # ------------------------------------------------------------------
    # global window -> index-range translation
    # ------------------------------------------------------------------
    def _closed_range(self, t_lo: float, t_hi: float) -> tuple[int, int]:
        """Global index range ``[L, R)`` of events with ``t_lo <= t <= t_hi``."""
        t = self._t
        return (
            int(np.searchsorted(t, t_lo, side="left")),
            int(np.searchsorted(t, t_hi, side="right")),
        )

    # ------------------------------------------------------------------
    # materialized views
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        if self._events_cache is None:
            main = tuple(
                map(Event, self._u.tolist(), self._v.tolist(), self._t.tolist())
            )
            self._events_cache = main + tuple(self._tail) if self._tail else main
        return self._events_cache

    @property
    def times(self) -> list[float]:
        if self._times_cache is None:
            times = self._t.tolist()
            times.extend(ev.t for ev in self._tail)
            self._times_cache = times
        return self._times_cache

    @property
    def node_events(self) -> dict[int, list[int]]:
        if self._node_events_cache is None:
            slot, off, idx = self._node_index()
            out = {
                node: idx[off[s] : off[s + 1]].tolist() for node, s in slot.items()
            }
            for node, idxs in self._tail_node_events.items():
                out.setdefault(node, []).extend(idxs)
            self._node_events_cache = out
        return self._node_events_cache

    @property
    def node_times(self) -> dict[int, list[float]]:
        if self._node_times_cache is None:
            times = self.times
            self._node_times_cache = {
                node: [times[i] for i in idxs]
                for node, idxs in self.node_events.items()
            }
        return self._node_times_cache

    @property
    def edge_events(self) -> dict[tuple[int, int], list[int]]:
        if self._edge_events_cache is None:
            slot, off, idx = self._edge_index()
            out = {
                edge: idx[off[s] : off[s + 1]].tolist() for edge, s in slot.items()
            }
            for edge, idxs in self._tail_edge_events.items():
                out.setdefault(edge, []).extend(idxs)
            self._edge_events_cache = out
        return self._edge_events_cache

    @property
    def edge_times(self) -> dict[tuple[int, int], list[float]]:
        if self._edge_times_cache is None:
            times = self.times
            self._edge_times_cache = {
                edge: [times[i] for i in idxs]
                for edge, idxs in self.edge_events.items()
            }
        return self._edge_times_cache

    # ------------------------------------------------------------------
    # scalar views (avoid materializing the dict caches)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> set[int]:
        slot = self._node_index()[0]
        out = set(slot)
        out.update(self._tail_node_events)
        return out

    @property
    def num_nodes(self) -> int:
        slot = self._node_index()[0]
        extra = sum(1 for n in self._tail_node_events if n not in slot)
        return len(slot) + extra

    @property
    def num_edges(self) -> int:
        slot = self._edge_index()[0]
        extra = sum(1 for e in self._tail_edge_events if e not in slot)
        return len(slot) + extra

    @property
    def start_time(self) -> float | None:
        if self._m:
            return float(self._t[0])
        return self._tail[0].t if self._tail else None

    @property
    def end_time(self) -> float | None:
        if self._tail:
            return self._tail[-1].t
        return float(self._t[-1]) if self._m else None

    def __len__(self) -> int:
        return self._m + len(self._tail)

    def event_at(self, idx: int) -> Event:
        """O(1) event lookup straight from the columns (or the tail)."""
        if idx < 0:
            idx += len(self)
        if idx >= self._m:
            return self._tail[idx - self._m]
        if self._events_cache is not None:
            return self._events_cache[idx]
        return Event(int(self._u[idx]), int(self._v[idx]), float(self._t[idx]))

    def iter_uvt(self) -> Iterator[tuple[int, int, float]]:
        yield from zip(self._u.tolist(), self._v.tolist(), self._t.tolist())
        for ev in self._tail:
            yield (ev.u, ev.v, ev.t)

    # ------------------------------------------------------------------
    # shard-planning seams (column-native: no ``times`` list needed)
    # ------------------------------------------------------------------
    def time_at(self, idx: int) -> float:
        if idx < 0:
            idx += len(self)
        if idx >= self._m:
            return self._tail[idx - self._m].t
        return float(self._t[idx])

    def bisect_time_left(self, t: float) -> int:
        lo = int(np.searchsorted(self._t, t, side="left"))
        if lo == self._m and self._tail:
            lo += bisect.bisect_left([ev.t for ev in self._tail], t)
        return lo

    def bisect_time_right(self, t: float) -> int:
        hi = int(np.searchsorted(self._t, t, side="right"))
        if hi == self._m and self._tail:
            hi += bisect.bisect_right([ev.t for ev in self._tail], t)
        return hi

    # ------------------------------------------------------------------
    # point lookups
    # ------------------------------------------------------------------
    def node_event_indices(self, node: int) -> list[int]:
        out = self._node_segment(node).tolist()
        tail = self._tail_node_events.get(node)
        if tail:
            out.extend(tail)
        return out

    def edge_event_indices(self, edge: tuple[int, int]) -> list[int]:
        out = self._edge_segment(edge).tolist()
        tail = self._tail_edge_events.get(edge)
        if tail:
            out.extend(tail)
        return out

    def neighbors(self, node: int) -> set[int]:
        out = set(self._other_endpoints(node).tolist())
        if self._tail:
            m = self._m
            for i in self._tail_node_events.get(node, ()):
                ev = self._tail[i - m]
                out.add(ev.v if ev.u == node else ev.u)
        out.discard(node)
        return out

    def get_nbrs(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        """Sorted static neighbor lists, one array gather per node."""
        out: dict[int, list[int]] = {}
        for node in nodes:
            others = np.unique(self._other_endpoints(node))
            nbrs = others[others != node].tolist()
            if self._tail and node in self._tail_node_events:
                merged = set(nbrs)
                m = self._m
                for i in self._tail_node_events[node]:
                    ev = self._tail[i - m]
                    merged.add(ev.v if ev.u == node else ev.u)
                merged.discard(node)
                nbrs = sorted(merged)
            out[node] = nbrs
        return out

    def _other_endpoints(self, node: int):
        """For each main-column event touching ``node``, the other endpoint."""
        segment = self._node_segment(node)
        if not len(segment):
            return segment
        us = self._u[segment]
        return np.where(us == node, self._v[segment], us)

    # ------------------------------------------------------------------
    # windowed queries (scalar)
    # ------------------------------------------------------------------
    def _node_window(
        self, node: int, t_lo: float, t_hi: float, lo_side: str
    ) -> tuple[int, int]:
        """Flat-array range of the node's events in the time window."""
        lo_p, hi_p = self._node_span(node)
        if lo_p == hi_p:
            return (0, 0)
        seg_t = self._node_times_flat()[lo_p:hi_p]
        a = lo_p + int(seg_t.searchsorted(t_lo, side=lo_side))
        b = lo_p + int(seg_t.searchsorted(t_hi, side="right"))
        return (a, b)

    def node_events_in(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        a, b = self._node_window(node, t_lo, t_hi, "left")
        out = self._node_index()[2][a:b].tolist()
        if self._tail:
            out.extend(
                self._tail_window(
                    self._tail_node_times.get(node),
                    self._tail_node_events.get(node),
                    t_lo,
                    t_hi,
                )
            )
        return out

    def count_node_events_in(self, node: int, t_lo: float, t_hi: float) -> int:
        a, b = self._node_window(node, t_lo, t_hi, "left")
        n = b - a
        if self._tail:
            times = self._tail_node_times.get(node)
            if times:
                n += bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)
        return n

    def edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> list[int]:
        lo_p, hi_p = self._edge_span(edge)
        out = []
        if lo_p != hi_p:
            seg_t = self._edge_times_flat()[lo_p:hi_p]
            a = lo_p + int(seg_t.searchsorted(t_lo, side="left"))
            b = lo_p + int(seg_t.searchsorted(t_hi, side="right"))
            out = self._edge_index()[2][a:b].tolist()
        if self._tail:
            out.extend(
                self._tail_window(
                    self._tail_edge_times.get(edge),
                    self._tail_edge_events.get(edge),
                    t_lo,
                    t_hi,
                )
            )
        return out

    def count_edge_events_in(
        self, edge: tuple[int, int], t_lo: float, t_hi: float
    ) -> int:
        lo_p, hi_p = self._edge_span(edge)
        n = 0
        if lo_p != hi_p:
            seg_t = self._edge_times_flat()[lo_p:hi_p]
            n = int(seg_t.searchsorted(t_hi, side="right")) - int(
                seg_t.searchsorted(t_lo, side="left")
            )
        if self._tail:
            times = self._tail_edge_times.get(edge)
            if times:
                n += bisect.bisect_right(times, t_hi) - bisect.bisect_left(times, t_lo)
        return n

    def events_in(self, t_lo: float, t_hi: float) -> list[int]:
        lo, hi = self._closed_range(t_lo, t_hi)
        if not self._tail:
            return list(range(lo, hi))
        m = self._m
        tail_times = [ev.t for ev in self._tail]
        tlo = bisect.bisect_left(tail_times, t_lo)
        thi = bisect.bisect_right(tail_times, t_hi)
        return list(range(lo, hi)) + list(range(m + tlo, m + thi))

    def count_events_in(self, t_lo: float, t_hi: float) -> int:
        lo, hi = self._closed_range(t_lo, t_hi)
        n = hi - lo
        if self._tail:
            tail_times = [ev.t for ev in self._tail]
            n += bisect.bisect_right(tail_times, t_hi) - bisect.bisect_left(
                tail_times, t_lo
            )
        return n

    def node_events_between(self, node: int, t_lo: float, t_hi: float) -> list[int]:
        a, b = self._node_window(node, t_lo, t_hi, "right")
        out = self._node_index()[2][a:b].tolist()
        if self._tail:
            times = self._tail_node_times.get(node)
            if times:
                idxs = self._tail_node_events[node]
                a = bisect.bisect_right(times, t_lo)
                b = bisect.bisect_right(times, t_hi)
                out.extend(idxs[a:b])
        return out

    @staticmethod
    def _tail_window(
        times: list[float] | None, idxs: list[int] | None, t_lo: float, t_hi: float
    ) -> list[int]:
        if not times:
            return []
        a = bisect.bisect_left(times, t_lo)
        b = bisect.bisect_right(times, t_hi)
        return idxs[a:b]

    # ------------------------------------------------------------------
    # windowed queries (batched / vectorized)
    # ------------------------------------------------------------------
    def count_node_events_in_batch(
        self,
        nodes: Sequence[int],
        t_los: Sequence[float],
        t_his: Sequence[float],
    ) -> list[int]:
        """Closed-window per-node counts, vectorized across all queries.

        The banded CSR array answers every query with six ``searchsorted``
        calls total: two map the time windows to global index ranges, four
        locate the range boundaries inside each node's band.
        """
        if self._tail or self._m == 0:
            # The tail path is rare and small; the generic loop is exact.
            return super().count_node_events_in_batch(nodes, t_los, t_his)
        try:
            q = np.asarray(nodes, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            return super().count_node_events_in_batch(nodes, t_los, t_his)
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.window_batch.calls")
            rec.observe("storage.window_batch.queries", len(nodes))
        keys = self._node_keys()
        banded = self._node_banded_index()
        slots = np.minimum(keys.searchsorted(q), len(keys) - 1)
        known = keys[slots] == q
        t = self._t
        lo = t.searchsorted(np.asarray(t_los, dtype=np.float64), side="left")
        hi = t.searchsorted(np.asarray(t_his, dtype=np.float64), side="right")
        base = slots * np.int64(self._m)
        counts = banded.searchsorted(base + hi, side="left") - banded.searchsorted(
            base + lo, side="left"
        )
        counts[~known] = 0
        return counts.tolist()

    def extension_arrays(self) -> dict[str, Any] | None:
        """Kernel hook: the flat arrays the vectorized extension kernel probes.

        Returns the timestamp/endpoint columns plus the node CSR in its
        banded form (``idx + slot*m``, globally sorted — the same
        machinery as :meth:`count_node_events_in_batch`), with ``keys``
        the ascending node ids whose position equals the CSR slot.
        Returns ``None`` while tail appends are pending: the tail lists
        are not banded, so the engine's generic per-node path (which
        reads the tail through :meth:`node_events_between`) is the exact
        one.
        """
        if self._tail:
            return None
        return {
            "t": self._t,
            "u": self._u,
            "v": self._v,
            "keys": self._node_keys(),
            "banded": self._node_banded_index(),
            "idx": self._node_index()[2],
            "m": self._m,
        }

    def adjacent_events_between(
        self, nodes: Sequence[int], t_lo: float, t_hi: float
    ) -> list[int]:
        """Deduplicated half-open window union over several nodes.

        The enumeration engine's candidate-generation fast path: one global
        window translation shared by every node, per-node segment slicing,
        and an array-level merge instead of a Python set union.
        """
        if self._tail:
            return super().adjacent_events_between(nodes, t_lo, t_hi)
        idx = self._node_index()[2]
        parts = []
        for node in nodes:
            a, b = self._node_window(node, t_lo, t_hi, "right")
            if a < b:
                parts.append(idx[a:b])
        if not parts:
            out: list[int] = []
        elif len(parts) == 1:
            out = parts[0].tolist()
        else:
            out = np.unique(np.concatenate(parts)).tolist()
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.adjacent_events_between.calls")
            rec.observe("storage.adjacent_events_between.candidates", len(out))
        return out

    # ------------------------------------------------------------------
    # transformations / shard plumbing
    # ------------------------------------------------------------------
    def slice_time(self, t_lo: float, t_hi: float) -> "NumpyStorage":
        """Zero-copy column views over the closed window (lazy indices)."""
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_time.calls")
        if self._tail:
            self.compact()
        lo, hi = self._closed_range(t_lo, t_hi)
        return self.slice_range(lo, hi)

    def slice_range(self, lo: int, hi: int) -> "NumpyStorage":
        """A new storage over ``events[lo:hi]`` as zero-copy column views."""
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.slice_range.calls")
        if self._tail:
            self.compact()
        return type(self).from_arrays(
            self._u[lo:hi], self._v[lo:hi], self._t[lo:hi]
        )

    def shard_payload(self, lo: int, hi: int) -> dict[str, Any]:
        """Column slices as a picklable payload (no event-tuple round-trip)."""
        if self._tail:
            self.compact()
        return {
            "kind": PAGE_FORMAT,
            "u": self._u[lo:hi],
            "v": self._v[lo:hi],
            "t": self._t[lo:hi],
        }

    @classmethod
    def from_shard_payload(cls, payload) -> "NumpyStorage":
        if isinstance(payload, dict) and payload.get("kind") == PAGE_FORMAT:
            return cls.from_arrays(payload["u"], payload["v"], payload["t"])
        return super().from_shard_payload(payload)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, event: Event) -> int:
        ev = self._check_appendable(event)
        idx = self._m + len(self._tail)
        self._tail.append(ev)
        for node in (ev.u, ev.v):
            self._tail_node_events.setdefault(node, []).append(idx)
            self._tail_node_times.setdefault(node, []).append(ev.t)
        self._tail_edge_events.setdefault(ev.edge, []).append(idx)
        self._tail_edge_times.setdefault(ev.edge, []).append(ev.t)
        self._invalidate_views()
        if len(self._tail) >= self.compact_threshold:
            self.compact()
        return idx

    def compact(self) -> None:
        """Fold tail appends into fresh in-memory columns.

        Also the escape hatch from read-only memory-mapped pages: the
        rebuilt columns are ordinary arrays, so a loaded graph keeps
        accepting appends without ever writing to its backing files.
        """
        if not self._tail:
            return
        rec = _obs.ACTIVE
        if rec is not None:
            rec.inc("storage.compact.calls")
            rec.observe("storage.compact.tail_events", len(self._tail))
        tail = self._tail
        u = np.concatenate(
            (np.asarray(self._u), np.fromiter((ev.u for ev in tail), dtype=np.int64))
        )
        v = np.concatenate(
            (np.asarray(self._v), np.fromiter((ev.v for ev in tail), dtype=np.int64))
        )
        t = np.concatenate(
            (np.asarray(self._t), np.fromiter((ev.t for ev in tail), dtype=np.float64))
        )
        self._set_columns(u, v, t)

    # ------------------------------------------------------------------
    # persistence (mmap page directory)
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike, *, name: str = "") -> None:
        """Write the columns and CSR index pages under directory ``path``.

        The layout is one ``.npy`` page per array plus a ``meta.json``
        manifest, so :meth:`load` can reopen each page memory-mapped.
        Index pages are saved too (forcing their lazy build), which keeps
        a subsequent mmap load free of any O(events) index pass.
        """
        if self._tail:
            self.compact()
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        for stem, attr, _dtype in _COLUMN_PAGES:
            np.save(os.path.join(path, f"{stem}.npy"), np.asarray(getattr(self, attr)))
        node_slot, node_off, node_idx = self._node_index()
        edge_slot, edge_off, edge_idx = self._edge_index()
        # Slot dicts serialize as two parallel arrays in first-appearance
        # order, preserving the seed iteration order across a round-trip.
        np.save(
            os.path.join(path, "node_keys.npy"),
            np.fromiter(node_slot.keys(), dtype=np.int64, count=len(node_slot)),
        )
        np.save(
            os.path.join(path, "node_slots.npy"),
            np.fromiter(node_slot.values(), dtype=np.int64, count=len(node_slot)),
        )
        np.save(os.path.join(path, "node_off.npy"), node_off)
        np.save(os.path.join(path, "node_idx.npy"), node_idx)
        np.save(os.path.join(path, "node_t.npy"), self._node_times_flat())
        edge_keys = np.empty((len(edge_slot), 2), dtype=np.int64)
        for row, (eu, ev) in enumerate(edge_slot):
            edge_keys[row, 0] = eu
            edge_keys[row, 1] = ev
        np.save(os.path.join(path, "edge_keys.npy"), edge_keys)
        np.save(
            os.path.join(path, "edge_slots.npy"),
            np.fromiter(edge_slot.values(), dtype=np.int64, count=len(edge_slot)),
        )
        np.save(os.path.join(path, "edge_off.npy"), edge_off)
        np.save(os.path.join(path, "edge_idx.npy"), edge_idx)
        np.save(os.path.join(path, "edge_t.npy"), self._edge_times_flat())
        meta = {
            "format": PAGE_FORMAT,
            "version": PAGE_VERSION,
            "n_events": self._m,
            "name": name,
        }
        with open(os.path.join(path, "meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2)

    @classmethod
    def load(cls, path: str | os.PathLike, *, mmap: bool = True) -> "NumpyStorage":
        """Reopen a :meth:`save` page directory (memory-mapped by default)."""
        storage, _meta = load_pages(path, mmap=mmap)
        return storage


def _as_column(a, dtype):
    """Coerce to ``dtype`` without copying (or retyping) when already right.

    ``np.asanyarray`` keeps ``np.memmap`` instances as memmaps, so columns
    opened from disk stay visibly memory-mapped.
    """
    a = np.asanyarray(a)
    return a if a.dtype == dtype else a.astype(dtype)


def page_meta(path: str | os.PathLike) -> dict:
    """Read and sanity-check a page directory's ``meta.json`` manifest."""
    path = os.fspath(path)
    meta_path = os.path.join(path, "meta.json")
    if not os.path.exists(meta_path):
        raise FileNotFoundError(
            f"{path!r} is not a numpy-page graph directory (no meta.json)"
        )
    with open(meta_path) as fh:
        meta = json.load(fh)
    if meta.get("format") != PAGE_FORMAT:
        raise ValueError(f"{path!r}: unrecognized page format {meta.get('format')!r}")
    if meta.get("version") != PAGE_VERSION:
        raise ValueError(
            f"{path!r}: page layout version {meta.get('version')!r} is not "
            f"supported (this build reads version {PAGE_VERSION})"
        )
    return meta


def load_pages(
    path: str | os.PathLike, *, mmap: bool = True
) -> tuple[NumpyStorage, dict]:
    """Open a page directory; return the storage and its manifest.

    With ``mmap=True`` every page is an ``np.load(..., mmap_mode="r")``
    read-only map: opening a multi-million-event stream touches only the
    manifest and the page headers, and queries fault in just the pages
    they probe.  Appends remain possible — they land in the in-memory
    tail, never in the backing files.
    """
    if np is None:  # pragma: no cover
        raise RuntimeError("loading numpy-page graphs requires NumPy")
    meta = page_meta(path)
    path = os.fspath(path)
    mode = "r" if mmap else None

    def page(stem: str):
        return np.load(os.path.join(path, f"{stem}.npy"), mmap_mode=mode)

    storage = NumpyStorage.from_arrays(page("u"), page("v"), page("t"))
    if len(storage) != meta["n_events"]:
        raise ValueError(
            f"{path!r}: column pages hold {len(storage)} events but the "
            f"manifest records {meta['n_events']}"
        )
    try:
        node_keys = page("node_keys")
        node_slots = page("node_slots")
        node_off = page("node_off")
        node_idx = page("node_idx")
        node_t = page("node_t")
        edge_keys = page("edge_keys")
        edge_slots = page("edge_slots")
        edge_off = page("edge_off")
        edge_idx = page("edge_idx")
        edge_t = page("edge_t")
    except FileNotFoundError:
        # Index pages are optional: the lazy CSR build recreates them.
        return storage, meta
    storage._node_csr = (
        dict(zip(node_keys.tolist(), node_slots.tolist())),
        node_off,
        node_idx,
    )
    storage._node_t = node_t
    storage._edge_csr = (
        dict(zip(map(tuple, edge_keys.tolist()), edge_slots.tolist())),
        edge_off,
        edge_idx,
    )
    storage._edge_t = edge_t
    return storage, meta
