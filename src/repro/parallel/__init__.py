"""Work-sharding parallel execution engine.

The event stream is split into overlapping time shards
(:func:`plan_shards`; overlap = the motif window δ, so no instance is
lost at a boundary), shards fan out over a process pool
(:class:`ParallelExecutor`, with a serial fallback and the ``REPRO_JOBS``
environment variable), and per-shard results reduce deterministically
(:func:`merge_counts` / :func:`merge_instances` / :func:`merge_censuses`
— first-appearance ordering preserved, so seeded runs stay
reproducible and ``jobs=4`` output is bit-identical to ``jobs=1``).

Most callers never touch this package directly: pass ``jobs=`` to the
counting entry points (:mod:`repro.algorithms.counting`), to
:func:`repro.algorithms.enumeration.enumerate_instances`, or use the
experiments CLI's ``--jobs`` flag.
"""

from repro.parallel.engine import (
    is_shard_safe,
    mark_shard_safe,
    parallel_count_event_pairs,
    parallel_count_motifs,
    parallel_enumerate,
    parallel_map,
    parallel_run_census,
    parallel_total_instances,
)
from repro.parallel.executor import (
    ENV_JOBS,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    get_default_jobs,
    get_executor,
    resolve_jobs,
    set_default_jobs,
)
from repro.parallel.merge import merge_censuses, merge_counts, merge_instances
from repro.parallel.shards import Shard, plan_root_shards, plan_shards, shard_graph

__all__ = [
    "ENV_JOBS",
    "ParallelExecutor",
    "SerialExecutor",
    "Shard",
    "default_jobs",
    "get_default_jobs",
    "get_executor",
    "is_shard_safe",
    "mark_shard_safe",
    "merge_censuses",
    "merge_counts",
    "merge_instances",
    "parallel_count_event_pairs",
    "parallel_count_motifs",
    "parallel_enumerate",
    "parallel_map",
    "parallel_run_census",
    "parallel_total_instances",
    "plan_root_shards",
    "plan_shards",
    "resolve_jobs",
    "set_default_jobs",
    "shard_graph",
]
