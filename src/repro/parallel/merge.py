"""Deterministic reduction of per-shard enumeration results.

Shards merge **in plan order** (ascending anchor ranges), which makes the
concatenated result stream identical to the serial enumeration: counters
come out with the same first-appearance key order a single pass would
have produced (mapping iteration order is part of the storage contract —
seeded randomized consumers depend on it), and sample lists are the same
prefix a single capped pass would have kept.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.counting import MotifCensus, merge_counters
from repro.parallel.shards import Shard

Instance = tuple[int, ...]

#: Sum counters, preserving first-appearance key order across shards.
#: One implementation serves both the chunked and the sharded reducers:
#: this is :func:`repro.algorithms.counting.merge_counters`, re-exported
#: under the name the parallel engine has always used.
merge_counts = merge_counters


def merge_instances(
    shards: Sequence[Shard],
    instance_lists: Sequence[Sequence[Instance]],
) -> list[Instance]:
    """Concatenate per-shard instance lists (global indices) in shard order.

    Deduplication is by **anchor-event index**: an instance is kept only
    when its first event lies in the yielding shard's owned anchor range.
    Shard workers already restrict enumeration roots to owned anchors, so
    this is normally a no-op filter — it exists to make double-counting
    across overlapping shard windows structurally impossible, e.g. for
    externally produced shard results.
    """
    if len(shards) != len(instance_lists):
        raise ValueError("need exactly one instance list per shard")
    merged: list[Instance] = []
    for shard, instances in zip(shards, instance_lists):
        for inst in instances:
            if shard.owns_anchor(inst[0]):
                merged.append(inst)
    return merged


def merge_censuses(
    censuses: Sequence[MotifCensus],
    *,
    sample_cap: int | None = None,
) -> MotifCensus:
    """Fold per-shard censuses into one, in shard order.

    Counters merge with :func:`merge_counts`; the per-code sample lists
    (timespans, intermediate positions) concatenate and are re-capped at
    ``sample_cap``.  Because each shard capped its own list at the same
    bound and list concatenation keeps prefixes, the merged result is
    entry-for-entry identical to what the serial single pass collects.
    """
    if not censuses:
        raise ValueError("need at least one shard census to merge")
    first = censuses[0]
    merged = MotifCensus(n_events=first.n_events, constraints=first.constraints)
    merged.code_counts = merge_counts(c.code_counts for c in censuses)
    merged.pair_counts = merge_counts(c.pair_counts for c in censuses)
    merged.pair_sequence_counts = merge_counts(c.pair_sequence_counts for c in censuses)
    merged.total = sum(c.total for c in censuses)
    for census in censuses:
        _extend_samples(merged.timespans, census.timespans, sample_cap)
        _extend_samples(
            merged.intermediate_positions,
            census.intermediate_positions,
            sample_cap,
        )
    return merged


def _extend_samples(target: dict, source: dict, sample_cap: int | None) -> None:
    for code, values in source.items():
        bucket = target.setdefault(code, [])
        if sample_cap is None:
            bucket.extend(values)
        else:
            room = sample_cap - len(bucket)
            if room > 0:
                bucket.extend(values[:room])
