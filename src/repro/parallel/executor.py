"""Process-pool execution with a serial fallback and ``REPRO_JOBS`` control.

Job-count resolution, in priority order:

1. an explicit ``jobs=`` argument (``None`` means "not specified"),
2. the session default installed by :func:`set_default_jobs` /
   :func:`default_jobs` (how the ``--jobs`` CLI flag reaches every
   experiment without threading a parameter through each one),
3. the ``REPRO_JOBS`` environment variable,
4. serial (1).

A resolved value ``<= 0`` means "one worker per CPU".  Inside a pool
worker (a daemonic process) resolution always yields 1, so sharded calls
nested under a parallel ancestor run serially instead of attempting a
forbidden grandchild pool.

:class:`ParallelExecutor` fans work out over a ``multiprocessing`` pool
(fork start method where available, so workers inherit loaded modules
and the parent's graph pages copy-on-write).  If the pool cannot be
created, or the workload fails a picklability probe (the function and
the first payload — representative because shard payloads are
homogeneous), it degrades to in-process serial execution with a
:class:`RuntimeWarning` — parallelism is an optimization, never a
requirement.  Exceptions raised *inside* workers are real errors and
propagate with their original type.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when neither an argument nor the
#: session default specifies a job count.
ENV_JOBS = "REPRO_JOBS"

_default_jobs: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Install (or clear, with ``None``) the session-wide default job count."""
    global _default_jobs
    _default_jobs = None if jobs is None else int(jobs)


def get_default_jobs() -> int | None:
    """The session-wide default job count, if one is installed."""
    return _default_jobs


@contextmanager
def default_jobs(jobs: int | None) -> Iterator[None]:
    """Temporarily install a session default job count."""
    previous = _default_jobs
    set_default_jobs(jobs)
    try:
        yield
    finally:
        set_default_jobs(previous)


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a job count per the priority order in the module docstring."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring non-integer {ENV_JOBS}={raw!r}; running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
                jobs = 1
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and multiprocessing.current_process().daemon:
        return 1
    return jobs


class SerialExecutor:
    """In-process execution: the reference semantics every pool must match."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ParallelExecutor:
    """Order-preserving fan-out over a process pool.

    ``map`` submits one task per item (``chunksize=1`` — shard workloads
    are few and coarse) and returns results in submission order, which is
    what keeps merged outputs deterministic.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ParallelExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = int(jobs)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        work: Sequence[T] = list(items)
        if len(work) <= 1:
            return [fn(item) for item in work]
        # Probe picklability (the function and the first payload — shard
        # payloads are homogeneous, so it stands in for the rest) and pool
        # creation up front, so the only exceptions escaping the pooled
        # map below are real worker errors — which must propagate with
        # their original type, never trigger a silent serial re-run.
        try:
            pickle.dumps(fn)
            pickle.dumps(work[0])
        except Exception as exc:
            warnings.warn(
                f"payload not picklable ({exc!r}); running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in work]
        try:
            context = _pool_context()
            pool = context.Pool(processes=min(self.jobs, len(work)))
        except (ImportError, OSError, PermissionError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in work]
        with pool:
            return pool.map(fn, work, chunksize=1)


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def get_executor(jobs: int | None = None) -> SerialExecutor | ParallelExecutor:
    """The executor matching the resolved job count."""
    resolved = resolve_jobs(jobs)
    return SerialExecutor() if resolved <= 1 else ParallelExecutor(resolved)
