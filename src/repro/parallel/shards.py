"""Time-sharding of an event stream for parallel motif enumeration.

A *shard* is a contiguous run of the time-sorted event stream together
with the range of **anchor** (root) event indices it owns.  Every motif
instance has exactly one anchor — its chronologically first event — so
partitioning the anchors partitions the instances: each shard enumerates
only instances rooted in its owned range, and the union over shards is
exactly the serial enumeration, each instance appearing once.

Two planning strategies exist:

* :func:`plan_shards` — **time shards**.  Each shard's event window is
  extended forward by the motif window δ (the loose timespan bound of the
  census's timing constraints) so that every instance rooted in the shard
  is fully contained: no instance is lost at a boundary.  The window is
  also extended *backward* to the start of the first owned anchor's
  timestamp tick, so that window-local restriction predicates (e.g. the
  consecutive-events check) see every same-timestamp event they would see
  on the full graph.
* :func:`plan_root_shards` — **root shards**.  Every shard sees the whole
  event stream and only the owned anchor range differs.  This is the
  always-correct fallback for predicates that consult global context
  (e.g. static inducedness over the whole projection) and for
  unconstrained searches where δ is infinite.

Both strategies produce :class:`Shard` records whose ``ev_lo`` offset
maps shard-local event indices back to global ones, which is what
:func:`Shard.to_global` and the merge helpers rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class Shard:
    """One unit of sharded enumeration work.

    Attributes
    ----------
    index:
        Position of the shard in the plan (shards merge in this order).
    root_lo / root_hi:
        Global half-open range ``[root_lo, root_hi)`` of anchor event
        indices this shard *owns*: only instances whose first event lies
        in this range belong to the shard.
    ev_lo / ev_hi:
        Global half-open range of events the shard's subgraph contains.
        ``ev_lo <= root_lo`` and ``ev_hi >= root_hi``; the slack is the
        boundary overlap that keeps instances and window predicates
        complete.
    """

    index: int
    root_lo: int
    root_hi: int
    ev_lo: int
    ev_hi: int

    @property
    def n_roots(self) -> int:
        return self.root_hi - self.root_lo

    @property
    def n_events(self) -> int:
        return self.ev_hi - self.ev_lo

    @property
    def local_roots(self) -> range:
        """Owned anchors as local indices into the shard subgraph."""
        return range(self.root_lo - self.ev_lo, self.root_hi - self.ev_lo)

    def owns_anchor(self, global_idx: int) -> bool:
        """Whether an instance anchored at ``global_idx`` belongs here."""
        return self.root_lo <= global_idx < self.root_hi

    def to_global(self, instance: Sequence[int]) -> tuple[int, ...]:
        """Map a shard-local instance back to global event indices."""
        offset = self.ev_lo
        return tuple(offset + i for i in instance)


def plan_shards(graph: TemporalGraph, delta: float, n_shards: int) -> list[Shard]:
    """Split ``graph`` into up to ``n_shards`` overlapping time shards.

    ``delta`` is the maximum timespan of any instance to be enumerated
    (use :meth:`TimingConstraints.loose_timespan_bound`).  Each shard's
    event window runs from the first event sharing its first anchor's
    timestamp through the last event within ``delta`` of its last
    anchor — so an instance rooted at any owned anchor, and every event a
    window-local predicate may consult about it, is fully contained.

    A non-finite ``delta`` cannot bound the overlap, so the plan degrades
    to a single full shard (use :func:`plan_root_shards` to still
    parallelize such searches).
    """
    m = len(graph)
    if m == 0:
        return [Shard(0, 0, 0, 0, 0)]
    if delta < 0:
        raise ValueError("delta must be non-negative")
    n = max(1, min(int(n_shards), m))
    if n == 1 or not math.isfinite(delta):
        return [Shard(0, 0, m, 0, m)]
    # The δ-overlap rule runs against the storage's time-index seams
    # (time_at / bisect_time_*): in-memory backends answer from their
    # cached timestamp list exactly as before, while the partitioned
    # backend answers at manifest resolution without ever materializing
    # the stream — the same rule plans both layouts.
    storage = graph.storage
    shards: list[Shard] = []
    for k in range(n):
        root_lo = (m * k) // n
        root_hi = (m * (k + 1)) // n
        if root_hi <= root_lo:
            continue
        ev_lo = storage.bisect_time_left(storage.time_at(root_lo))
        # The serial enumerator chains per-step float deadlines
        # (t_last + delta_c at every extension), which can exceed the
        # single-sum bound t_root + delta by a few ulps of accumulated
        # rounding.  Widen the window by a generous ulp slack: extra
        # events in a shard are always harmless (anchors partition the
        # instances), missing events lose instances.
        bound = storage.time_at(root_hi - 1) + delta
        bound += 32 * math.ulp(bound)
        ev_hi = max(root_hi, storage.bisect_time_right(bound))
        shards.append(Shard(len(shards), root_lo, root_hi, ev_lo, ev_hi))
    return shards


def plan_root_shards(graph: TemporalGraph, n_shards: int) -> list[Shard]:
    """Split only the anchor range; every shard sees the full stream.

    Correct for any predicate (workers reconstruct the whole graph), at
    the cost of shipping the full event list to each worker.
    """
    m = len(graph)
    if m == 0:
        return [Shard(0, 0, 0, 0, 0)]
    n = max(1, min(int(n_shards), m))
    shards: list[Shard] = []
    for k in range(n):
        root_lo = (m * k) // n
        root_hi = (m * (k + 1)) // n
        if root_hi <= root_lo:
            continue
        shards.append(Shard(len(shards), root_lo, root_hi, 0, m))
    return shards


def shard_graph(graph: TemporalGraph, shard: Shard) -> TemporalGraph:
    """Materialize one shard's subgraph under the parent graph's backend.

    Routed through :meth:`~repro.storage.base.GraphStorage.slice_range`:
    the slice of a time-sorted stream is itself time-sorted, so no
    re-validation happens (array-backed engines hand out zero-copy column
    views) and event index ``i`` of the result corresponds to global index
    ``shard.ev_lo + i``.
    """
    storage = graph.storage.slice_range(shard.ev_lo, shard.ev_hi)
    return TemporalGraph._from_storage(storage, name=graph.name)
