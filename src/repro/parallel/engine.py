"""The sharded execution engine behind ``jobs=`` throughout the library.

Each entry point plans shards for the graph (time shards when the
predicate is shard-safe and the constraints bound the motif window; root
shards otherwise), ships one self-contained :class:`_ShardTask` per shard
to the executor, and reduces the per-shard results with the merge helpers
— in shard order, so every output is bit-identical to the serial run.

Shard-safety of predicates
--------------------------

A restriction predicate runs against the *shard subgraph*, so it may only
consult events inside the instance's time window (which the shard is
guaranteed to contain, including same-timestamp boundary events).  The
bundled window-local restrictions are pre-marked; mark your own with
:func:`mark_shard_safe`.  Unmarked predicates are automatically routed to
root shards — every worker then reconstructs the full graph, trading
memory for unconditional correctness.
"""

from __future__ import annotations

import bisect
import math
import pickle
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

import repro.obs as _obs
from repro.core.constraints import TimingConstraints
from repro.obs import MetricsRegistry
from repro.core.temporal_graph import TemporalGraph
from repro.engine import ExecutionPlan, compile_plan
from repro.engine import is_shard_safe as is_shard_safe  # re-export (one copy)
from repro.parallel.executor import get_executor, resolve_jobs
from repro.parallel.merge import merge_censuses, merge_counts, merge_instances
from repro.parallel.shards import Shard, plan_root_shards, plan_shards, shard_graph
from repro.storage import get_backend

T = TypeVar("T")
R = TypeVar("R")

Instance = tuple[int, ...]
Predicate = Callable[[TemporalGraph, Instance], bool]


def mark_shard_safe(predicate: Predicate) -> Predicate:
    """Declare that a predicate only consults the instance's time window.

    Shard-safe predicates answer identically on a time shard and on the
    full graph, so the engine may use the cheaper time-sharded plan
    (:func:`repro.engine.is_shard_safe` reads the mark at plan-compile
    time).
    """
    predicate.shard_safe = True  # type: ignore[attr-defined]
    return predicate


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs, picklable and self-contained.

    ``payload`` is whatever the parent storage's
    :meth:`~repro.storage.base.GraphStorage.shard_payload` produced for
    the shard's event range — an event tuple on the generic path, column
    array slices on array-backed engines — and the worker rebuilds its
    subgraph through ``from_shard_payload`` on the same backend class,
    skipping the per-event boxing round-trip.  ``plan`` is the parent's
    compiled :class:`~repro.engine.plan.ExecutionPlan`: workers bind it
    to the shard storage instead of re-deriving deadlines, node caps and
    kernel capability per shard.  ``local_roots`` overrides the shard's
    owned anchor range when the caller restricted the search to explicit
    roots (the sampling estimators).
    """

    kind: str
    payload: Any
    backend: str
    name: str
    shard: Shard
    n_events: int
    constraints: TimingConstraints
    max_nodes: int | None
    predicate: Predicate | None
    plan: ExecutionPlan | None = None
    local_roots: Sequence[int] | None = None
    options: dict = field(default_factory=dict)
    #: Observability handshake: when the parent's registry is active the
    #: worker runs under a fresh local registry and ships its snapshot
    #: back alongside the shard result (merged by ``_execute`` exactly
    #: like ``merge_counts`` folds shard counters).  ``submitted`` is the
    #: parent's ``time.monotonic()`` at task construction — comparable
    #: across fork workers on the same host — from which the worker
    #: derives its queue wait.
    obs: bool = False
    submitted: float | None = None


def _run_shard(task: _ShardTask):
    if not task.obs:
        return _run_shard_inner(task)
    queue_wait = 0.0 if task.submitted is None else time.monotonic() - task.submitted
    parent = _obs.ACTIVE
    local = MetricsRegistry()
    _obs.ACTIVE = local
    try:
        start = time.perf_counter()
        result = _run_shard_inner(task)
        elapsed = time.perf_counter() - start
    finally:
        _obs.ACTIVE = parent
    local.observe("parallel.shard.seconds", elapsed)
    local.observe("parallel.shard.queue_wait_seconds", max(queue_wait, 0.0))
    local.observe("parallel.shard.events", task.shard.ev_hi - task.shard.ev_lo)
    return result, local.snapshot()


def _run_shard_inner(task: _ShardTask):
    # Deferred import: counting/enumeration lazily import this package on
    # their jobs= paths, so the engine must not import them at module level.
    from repro.algorithms import counting, enumeration

    storage = get_backend(task.backend).from_shard_payload(task.payload)
    graph = TemporalGraph._from_storage(storage, name=task.name)
    roots = task.local_roots if task.local_roots is not None else task.shard.local_roots
    common: dict[str, Any] = {
        "max_nodes": task.max_nodes,
        "predicate": task.predicate,
        "roots": roots,
        "plan": task.plan,
        "jobs": 1,  # never nest pools inside a worker
    }
    if task.kind == "census":
        return counting.run_census(
            graph,
            task.n_events,
            task.constraints,
            **common,
            **task.options,
        )
    if task.kind == "counts":
        return counting.count_motifs(
            graph,
            task.n_events,
            task.constraints,
            **common,
            **task.options,
        )
    if task.kind == "pairs":
        return counting.count_event_pairs(
            graph,
            task.n_events,
            task.constraints,
            **common,
        )
    if task.kind == "total":
        return counting.total_instances(
            graph,
            task.n_events,
            task.constraints,
            **common,
        )
    if task.kind == "instances":
        common.pop("jobs")  # enumerate_instances parallelizes via this engine
        instances = enumeration.enumerate_instances(
            graph,
            task.n_events,
            task.constraints,
            **common,
        )
        return [task.shard.to_global(inst) for inst in instances]
    raise ValueError(f"unknown shard task kind {task.kind!r}")


def _execute(
    kind: str,
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None,
    max_nodes: int | None,
    predicate: Predicate | None,
    roots: Sequence[int] | None = None,
    plan: ExecutionPlan | None = None,
    options: dict | None = None,
) -> tuple[list[Shard], list]:
    n_jobs = resolve_jobs(jobs)
    if roots is not None and any(a > b for a, b in zip(roots, roots[1:])):
        raise ValueError(
            "sharded enumeration requires non-decreasing roots (anchors "
            "partition by shard order); sort them or run serially"
        )
    # One compiled plan for the whole run: deadlines, node cap, shard
    # safety and kernel capability resolve here, then ship to workers.
    # A caller-supplied plan (forced kernels, precompiled reuse) is
    # shipped as-is instead of recompiled.
    if plan is None:
        plan = compile_plan(
            n_events, constraints, predicate, graph.storage, max_nodes=max_nodes
        )
    # Out-of-core backends ask for at least one shard per partition
    # (shard_count_hint) so each worker's rebuilt subgraph stays roughly
    # one δ-overlapped partition wide; in-memory backends hint 0 and get
    # the one-shard-per-worker plan as before.
    n_shards = max(n_jobs, graph.storage.shard_count_hint())
    if plan.shard_safe and math.isfinite(plan.delta):
        shards = plan_shards(graph, plan.delta, n_shards)
    else:
        shards = plan_root_shards(graph, n_shards)
    storage = graph.storage
    rec = _obs.ACTIVE
    submitted = time.monotonic() if rec is not None else None
    tasks = [
        _ShardTask(
            kind=kind,
            payload=storage.shard_payload(shard.ev_lo, shard.ev_hi),
            backend=graph.backend,
            name=graph.name,
            shard=shard,
            n_events=n_events,
            constraints=constraints,
            max_nodes=max_nodes,
            predicate=predicate,
            plan=plan,
            local_roots=_owned_roots(shard, roots),
            options=options or {},
            obs=rec is not None,
            submitted=submitted,
        )
        for shard in shards
    ]
    if rec is not None:
        rec.inc(_obs.labeled("parallel.execute.calls", kind=kind))
        rec.set_gauge("parallel.jobs", n_jobs)
        rec.set_gauge("parallel.shards", len(tasks))
        for task in tasks:
            rec.observe(
                "parallel.shard.payload_bytes",
                len(pickle.dumps(task.payload, pickle.HIGHEST_PROTOCOL)),
            )
    results = get_executor(n_jobs).map(_run_shard, tasks)
    if rec is not None:
        unwrapped = []
        for result, snapshot in results:
            rec.merge_snapshot(snapshot)
            unwrapped.append(result)
        results = unwrapped
    return shards, results


def _owned_roots(shard: Shard, roots: Sequence[int] | None) -> list[int] | None:
    """Shard-local indices of the explicitly requested roots it owns.

    ``roots`` must be non-decreasing (the counting entry points only
    route sorted roots here), so each shard's slice is one bisection and
    the shard-order concatenation reproduces the serial root order.
    """
    if roots is None:
        return None
    lo = bisect.bisect_left(roots, shard.root_lo)
    hi = bisect.bisect_left(roots, shard.root_hi)
    ev_lo = shard.ev_lo
    return [r - ev_lo for r in roots[lo:hi]]


def parallel_count_motifs(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None = None,
    max_nodes: int | None = None,
    node_counts: Iterable[int] | None = None,
    predicate: Predicate | None = None,
    roots: Sequence[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> Counter:
    """Sharded :func:`repro.algorithms.counting.count_motifs`.

    ``roots`` (non-decreasing event indices) restricts the count to
    instances anchored there — each shard enumerates only the owned
    roots it is handed, so a sampled census shards exactly like a full
    one.
    """
    options = {"node_counts": set(node_counts) if node_counts is not None else None}
    _shards, results = _execute(
        "counts",
        graph,
        n_events,
        constraints,
        jobs=jobs,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        plan=plan,
        options=options,
    )
    return merge_counts(results)


def parallel_count_event_pairs(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None = None,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    roots: Sequence[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> Counter:
    """Sharded :func:`repro.algorithms.counting.count_event_pairs`."""
    _shards, results = _execute(
        "pairs",
        graph,
        n_events,
        constraints,
        jobs=jobs,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        plan=plan,
    )
    return merge_counts(results)


def parallel_total_instances(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None = None,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    roots: Sequence[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> int:
    """Sharded :func:`repro.algorithms.counting.total_instances`."""
    _shards, results = _execute(
        "total",
        graph,
        n_events,
        constraints,
        jobs=jobs,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        plan=plan,
    )
    return sum(results)


def parallel_run_census(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None = None,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    collect_timespans: bool = False,
    collect_positions: bool = False,
    timespan_codes: Sequence[str] | None = None,
    position_codes: Sequence[str] | None = None,
    sample_cap: int,
    roots: Sequence[int] | None = None,
    plan: ExecutionPlan | None = None,
):
    """Sharded :func:`repro.algorithms.counting.run_census`.

    Each shard caps its sample lists at the same ``sample_cap``; the merge
    re-caps the concatenation, which reproduces the serial pass exactly
    (capped lists are prefixes, and concatenation preserves prefixes).
    """
    options = {
        "collect_timespans": collect_timespans,
        "collect_positions": collect_positions,
        "timespan_codes": timespan_codes,
        "position_codes": position_codes,
        "sample_cap": sample_cap,
    }
    _shards, results = _execute(
        "census",
        graph,
        n_events,
        constraints,
        jobs=jobs,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        plan=plan,
        options=options,
    )
    return merge_censuses(results, sample_cap=sample_cap)


def parallel_enumerate(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    jobs: int | None = None,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    plan: ExecutionPlan | None = None,
) -> list[Instance]:
    """Sharded instance enumeration, in the exact serial yield order.

    Returns a list (not a generator): all shards must complete before the
    merged, anchor-deduplicated sequence is known to be serial-identical.
    """
    shards, results = _execute(
        "instances",
        graph,
        n_events,
        constraints,
        jobs=jobs,
        max_nodes=max_nodes,
        predicate=predicate,
        plan=plan,
    )
    return merge_instances(shards, results)


def parallel_map(
    fn: Callable[[T], R],
    payloads: Iterable[T],
    *,
    jobs: int | None = None,
) -> list[R]:
    """Order-preserving fan-out of arbitrary picklable payloads.

    The generic escape hatch for embarrassingly parallel work that is not
    a shard census — e.g. null-model shuffle-ensemble replicas, where each
    payload carries a graph's events and a seed.
    """
    return get_executor(jobs).map(fn, payloads)


__all__ = [
    "is_shard_safe",
    "mark_shard_safe",
    "parallel_count_event_pairs",
    "parallel_count_motifs",
    "parallel_enumerate",
    "parallel_map",
    "parallel_run_census",
    "parallel_total_instances",
    "shard_graph",
]
