"""The census service wire protocol: newline-delimited JSON frames.

One request per line, one response per line, UTF-8 JSON — chosen so the
service is reachable from ``netcat``, a five-line client in any
language, and the stdlib-only :mod:`repro.service.client`, with no
dependency beyond ``asyncio`` streams on the server side.

Requests
--------

Every request is an object with an ``op`` and an optional ``id`` (echoed
verbatim on the response so clients may pipeline)::

    {"id": 7, "op": "census", "n_events": 3, "delta_w": 3000.0}

Compute ops (dispatched to the worker pool; all accept ``t_lo``/``t_hi``
to restrict to a closed time window, ``max_nodes``, and per-request
``jobs`` — worker processes *inside* the worker handling the request):

* ``census``   — full :func:`~repro.algorithms.counting.run_census`:
  per-code counts, pair counts, pair-group totals.
* ``count``    — per-code counts only
  (:func:`~repro.algorithms.counting.count_motifs`).
* ``window``   — ``census`` with ``t_lo``/``t_hi`` *required*: the
  point-lookup shape of a dashboard query.
* ``estimate`` — root-sampling approximate counts
  (:func:`~repro.algorithms.sampling.estimate_counts_root_sampling`)
  with per-code standard errors; ``q`` in (0, 1], optional ``seed``.
  Requires NumPy; also what overloaded ``census``/``count``/``window``
  requests degrade to under the ``degrade`` overflow policy.
* ``sleep``    — hold a worker for ``seconds`` (diagnostic: lets tests
  and load drills fill the admission queue deterministically).

Inline ops (answered by the server process itself):

* ``push``   — append events to a named server-side
  :class:`~repro.online.MultiViewCensus` stream; creates the stream
  (and its ``"default"`` view) on first use (``window`` required then,
  plus the usual motif knobs and an optional ``retention`` — the
  largest window any later view may use, defaulting to ``window``).
* ``view_add`` — register a named view on an existing stream: its own
  ``window``, optional ``nodes`` slice, optional ``backfill`` (default
  true).  Under the ``degrade`` overflow policy a server past its
  ``max_exact_views`` budget admits the view in estimate mode instead
  of rejecting it.
* ``view_drop`` — unregister a view.
* ``view_counts`` — one view's current counters (exact), or its
  root-sampling estimate with ``stderr`` bars when degraded.
* ``stream_close`` — drop a named stream and all its views.
* ``stats``  — service counters + the merged observability snapshot
  (server registry folded with every worker's registry).
* ``health`` — liveness: worker processes alive, uptime, graph size.

Responses
---------

``{"id": ..., "ok": true, "result": {...}}`` on success, or on failure::

    {"id": ..., "ok": false,
     "error": {"code": "overloaded", "message": "...", "retry_after": 0.2}}

Error codes are the :data:`ERROR_CODES` vocabulary; ``retry_after``
(seconds) rides along only on ``overloaded``.  Timing constraints travel
as ``delta_c``/``delta_w`` floats; at least one bound is required on
every compute op — an unconstrained census is unbounded work, which a
shared server must refuse.

Framing limits: a request line longer than the server's ``max_line``
(default :data:`MAX_LINE_BYTES`) is answered with
``payload_too_large`` and the connection is closed (the remainder of an
oversized frame cannot be re-synchronized reliably).  Malformed JSON on
a well-framed line gets ``bad_json`` and the connection stays open.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "COMPUTE_OPS",
    "ERROR_CODES",
    "INLINE_OPS",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "constraint_fields",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "validate_request",
]

#: Default per-line byte budget (requests *and* responses are framed
#: lines; push batches dominate request size, code tables response size).
MAX_LINE_BYTES = 1 << 20

#: Ops executed on the worker pool (admission-controlled).
COMPUTE_OPS = ("census", "count", "window", "estimate", "sleep")

#: Ops answered inline by the server process.
INLINE_OPS = (
    "push",
    "view_add",
    "view_drop",
    "view_counts",
    "stream_close",
    "stats",
    "health",
)

#: The error vocabulary; ``code`` on every error response is one of these.
ERROR_CODES = (
    "bad_json",  # line was not valid JSON
    "bad_request",  # JSON fine, request malformed (missing/invalid fields)
    "unknown_op",  # op not in COMPUTE_OPS + INLINE_OPS
    "payload_too_large",  # frame exceeded max_line; connection closes
    "overloaded",  # admission queue full under the reject policy
    "bad_stream",  # push violated stream rules (e.g. time went backwards)
    "unknown_stream",  # view op addressed a stream no push has created
    "unknown_view",  # view op addressed a view not registered on the stream
    "worker_died",  # the worker crashed mid-request (pool respawns)
    "timeout",  # the worker exceeded the per-request compute budget
    "internal",  # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A request the server refuses; carries a wire-level error code.

    ``extra`` fields (e.g. ``retry_after`` on ``overloaded``) are merged
    into the error object of the response frame.
    """

    def __init__(self, code: str, message: str, **extra: Any) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message
        self.extra = extra


def encode(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one request frame; :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_json", f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    return obj


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str, **extra: Any) -> dict:
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"id": request_id, "ok": False, "error": error}


def _positive_float(params: Mapping, key: str) -> float | None:
    value = params.get(key)
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ProtocolError("bad_request", f"{key} must be a number") from None
    if value <= 0:
        raise ProtocolError("bad_request", f"{key} must be positive")
    return value


def constraint_fields(params: Mapping) -> tuple[float | None, float | None]:
    """Extract and validate ``delta_c``/``delta_w``; at least one required.

    An unconstrained enumeration is unbounded work — a shared server
    refuses it at validation time rather than discovering it the hard
    way on a worker.
    """
    delta_c = _positive_float(params, "delta_c")
    delta_w = _positive_float(params, "delta_w")
    if delta_c is None and delta_w is None:
        raise ProtocolError(
            "bad_request",
            "at least one of delta_c/delta_w is required (an unconstrained "
            "census is unbounded work)",
        )
    return delta_c, delta_w


def validate_request(obj: Mapping) -> tuple[Any, str]:
    """Check the envelope; return ``(request id, op)``.

    Field-level validation happens per op (the compute ops validate on
    the worker boundary via :func:`constraint_fields` and friends).
    """
    op = obj.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("bad_request", "request needs a string 'op' field")
    request_id = obj.get("id")
    if op not in COMPUTE_OPS and op not in INLINE_OPS:
        known = ", ".join(COMPUTE_OPS + INLINE_OPS)
        raise ProtocolError("unknown_op", f"unknown op {op!r}; known ops: {known}")
    return request_id, op
