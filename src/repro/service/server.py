"""Census-as-a-service: the concurrent query/stream server.

One :class:`CensusServer` owns one served graph and fans many clients
over it:

* the **front-end** is a single asyncio event loop speaking the
  :mod:`repro.service.protocol` NDJSON framing over TCP streams —
  stdlib-only, so the service runs wherever the library does;
* the **compute plane** is a :class:`~repro.service.workers.WorkerPool`
  of N processes, each holding the same page-directory-backed
  :class:`~repro.core.temporal_graph.TemporalGraph` open via
  ``mmap_mode="r"`` (one set of read-only column pages, shared through
  the OS page cache) and reusing the PR 5 memoized plan cache per
  request configuration;
* the **stream plane** lives in the server process: one shared
  :class:`~repro.online.MultiViewCensus` engine per pushed stream, fed
  by ``push`` requests and fanning each arrival into many named views
  (``view_add``/``view_drop``/``view_counts``) — heterogeneous window
  lengths and node slices over one graph tail, prefix store and
  compiled kernel, so trailing-window counters are maintained per
  arriving event without a worker round-trip.

The view budget extends admission control to the stream plane: beyond
``max_exact_views`` exact views per stream, ``view_add`` is rejected
(``overflow="reject"``) or admitted in degraded estimate mode
(``overflow="degrade"`` — :meth:`MultiViewCensus.degrade_view`, the PR 5
root-sampling estimator with per-code ``stderr`` bars at read time).
Shed decisions are counted under ``service.view.shed{policy=...}`` and
the engines record their ``online.view.*`` lifecycle metrics straight
into the server registry.

Admission control extends the ``StreamMatcher.shed`` load-shedding
story to the query path: compute requests beyond ``max_pending``
outstanding are either **rejected** with a ``retry_after`` hint
(``overflow="reject"``), or **degraded** to the PR 5 root-sampling
estimator with per-code error bars (``overflow="degrade"`` — a cheap
approximate answer beats no answer; a hard limit of 2x ``max_pending``
still rejects).  Every shed decision is counted
(``service.shed{policy=...}``), queue depth is a gauge, and per-op
latency histograms accumulate in the server's always-on metrics
registry — the ``stats`` op returns them merged with every worker's
observability snapshot, the same associative fold the parallel engine
uses for shard snapshots.

Run it from the experiments CLI (``python -m repro.experiments serve
--datasets sms-copenhagen --workers 4``), embed it via
:func:`start_in_thread` (what the benchmark, the CI smoke drill and the
tests do), or drive a remote instance with
:class:`repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import tempfile
import threading
import time
from typing import Any, Mapping

from repro.obs.registry import MetricsRegistry, labeled, merge_snapshots
from repro.service import protocol
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.workers import DEFAULT_REQUEST_TIMEOUT, WorkerDied, WorkerPool

__all__ = ["CensusServer", "ServerHandle", "serve_cli", "start_in_thread"]

#: Default bound on outstanding compute requests (queued + running).
DEFAULT_MAX_PENDING = 32

#: Hard ceiling multiplier: even the degrade policy rejects beyond this.
HARD_LIMIT_FACTOR = 2

#: Per-push-batch event cap (distinct from the line-size cap: a batch of
#: tiny events can be huge in count while small in bytes).
DEFAULT_MAX_PUSH_BATCH = 50_000


def _numpy_available() -> bool:
    from repro.core._optional import import_numpy

    # import_numpy returns a falsy stand-in (not None) when absent.
    return bool(import_numpy())


class _Stream:
    """One named server-side multi-view census plus its bookkeeping."""

    def __init__(self, engine, window: float) -> None:
        self.engine = engine
        self.window = window  # the "default" view's window
        self.created_at = time.monotonic()

    def describe(self) -> dict:
        info = self.engine.describe()
        default = info["views"].get("default", {})
        # The flat keys describe the "default" view (the pre-multi-view
        # response shape); "retention"/"views" carry the full picture.
        return {
            "window": self.window,
            "pushed": info["pushed"],
            "discovered": default.get("discovered", info["discovered"]),
            "expired": default.get("expired", 0),
            "live": default.get("live", 0),
            "prefixes": info["prefixes"],
            "now": info["now"],
            "retention": info["retention"],
            "views": info["views"],
        }


class CensusServer:
    """A concurrent census/stream server over one shared graph.

    Parameters
    ----------
    dataset / scale / seed:
        Serve a registered dataset.  When NumPy is importable the graph
        is materialized once, written to a temporary page directory, and
        every worker mmaps those shared pages; without NumPy each worker
        regenerates the (deterministic) dataset.
    pages:
        Serve an existing page directory (takes precedence over
        ``dataset``); workers open it read-only, zero-copy.
    events:
        Serve an explicit event list (tests, tiny embedded uses).
    workers:
        Compute processes.  Each request may additionally carry
        ``jobs=N`` to shard its own census inside the worker.
    max_pending:
        Admission bound on outstanding compute requests; beyond it the
        ``overflow`` policy applies (``"reject"`` or ``"degrade"``).
    degrade_q:
        Root-sampling probability used for degraded answers.
    max_exact_views:
        Per-stream budget of exact (non-degraded) views; ``None`` (the
        default) means unlimited.  A ``view_add`` past the budget is
        rejected under ``overflow="reject"`` and admitted in estimate
        mode under ``overflow="degrade"`` (when NumPy is available).
    """

    def __init__(
        self,
        *,
        dataset: str | None = None,
        scale: float = 1.0,
        seed: int | None = None,
        pages: str | None = None,
        events: list | None = None,
        workers: int = 2,
        max_pending: int = DEFAULT_MAX_PENDING,
        overflow: str = "reject",
        degrade_q: float = 0.25,
        host: str = "127.0.0.1",
        port: int = 0,
        max_line: int = MAX_LINE_BYTES,
        max_push_batch: int = DEFAULT_MAX_PUSH_BATCH,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        stream_backend: str | None = None,
        max_exact_views: int | None = None,
    ) -> None:
        if overflow not in ("reject", "degrade"):
            raise ValueError("overflow must be 'reject' or 'degrade'")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self._requested = dict(
            dataset=dataset, scale=scale, seed=seed, pages=pages, events=events
        )
        self._workers_n = workers
        self._max_pending = max_pending
        self._overflow = overflow
        self._degrade_q = degrade_q
        self._host = host
        self._port = port
        self._max_line = max_line
        self._max_push_batch = max_push_batch
        self._request_timeout = request_timeout
        self._stream_backend = stream_backend
        if max_exact_views is not None and max_exact_views < 1:
            raise ValueError("max_exact_views must be >= 1 (or None for no cap)")
        self._max_exact_views = max_exact_views

        self.registry = MetricsRegistry()
        self._streams: dict[str, _Stream] = {}
        self._pool: WorkerPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        self._connections = 0
        self._started_at: float | None = None
        self.meta: dict = {}

    # ------------------------------------------------------------------
    # source resolution
    # ------------------------------------------------------------------
    def _resolve_source(self) -> dict:
        """Build the wire spec the worker pool will open.

        All source-kind knowledge lives in :func:`repro.sources.resolve`
        (this used to be a private copy of it); the one piece of policy
        that stays here is *materialization*: a dataset served on a
        NumPy build is generated once, paged out to a server-owned
        temporary directory, and re-resolved as a page source — so every
        worker mmaps the same read-only columns and the parent drops its
        copy.  An explicit ``pages=`` directory may be flat or
        partitioned; ``resolve`` sniffs the manifest.
        """
        from repro import sources

        req = self._requested
        if req["pages"] is not None:
            return sources.resolve(req["pages"]).spec()
        if req["events"] is not None:
            return sources.resolve(req["events"]).spec()
        name = req["dataset"] or "sms-copenhagen"
        source = sources.resolve(name, scale=req["scale"], seed=req["seed"])
        if _numpy_available():
            graph = source.open()
            self._tmpdir = tempfile.TemporaryDirectory(prefix="census-pages-")
            graph.save(self._tmpdir.name)
            return sources.resolve(self._tmpdir.name).spec()
        return source.spec()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Boot the pool and start listening; returns ``(host, port)``."""
        loop = asyncio.get_running_loop()
        source = self._resolve_source()
        self._pool = await loop.run_in_executor(
            None,
            lambda: WorkerPool(
                source,
                self._workers_n,
                request_timeout=self._request_timeout,
            ),
        )
        reply = await asyncio.wrap_future(self._pool.submit({"op": "meta"}))
        self.meta = reply["result"] if reply.get("ok") else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port, limit=self._max_line
        )
        self._started_at = time.monotonic()
        sock = self._server.sockets[0].getsockname()
        self._host, self._port = sock[0], sock[1]
        return self._host, self._port

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    async def stop(self) -> None:
        """Close the listener, drop connections, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.get_running_loop().run_in_executor(None, pool.close)
        self._streams.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections += 1
        self.registry.set_gauge("service.connections", self._connections)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    if eof.partial.strip():
                        # A final unterminated frame: answer it best-effort.
                        response = await self._process_line(eof.partial)
                        writer.write(encode(response))
                        await writer.drain()
                    break
                except asyncio.LimitOverrunError:
                    # The frame exceeds max_line.  The tail of an
                    # oversized frame cannot be re-synchronized reliably,
                    # so answer and close (documented protocol behavior).
                    self.registry.inc("service.errors{code=payload_too_large}")
                    writer.write(
                        encode(
                            error_response(
                                None,
                                "payload_too_large",
                                f"request frame exceeds {self._max_line} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line.strip():
                    continue
                response = await self._process_line(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            # Client went away mid-request/mid-response: drop the
            # connection; any in-flight worker job completes and is
            # discarded with it.
            self.registry.inc("service.disconnects")
        finally:
            self._connections -= 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _process_line(self, line: bytes) -> dict:
        try:
            obj = decode_line(line)
            request_id, op = validate_request(obj)
        except ProtocolError as exc:
            self.registry.inc(f"service.errors{{code={exc.code}}}")
            return error_response(None, exc.code, exc.message, **exc.extra)
        started = time.perf_counter()
        try:
            response = await self._dispatch(request_id, op, obj)
        except ProtocolError as exc:
            self.registry.inc(f"service.errors{{code={exc.code}}}")
            response = error_response(request_id, exc.code, exc.message, **exc.extra)
        except Exception as exc:  # pragma: no cover - defensive
            self.registry.inc("service.errors{code=internal}")
            response = error_response(request_id, "internal", repr(exc))
        self.registry.observe(
            labeled("service.request.seconds", op=op),
            time.perf_counter() - started,
        )
        return response

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request_id: Any, op: str, obj: Mapping) -> dict:
        self.registry.inc(labeled("service.requests", op=op))
        if op in protocol.COMPUTE_OPS:
            return await self._dispatch_compute(request_id, op, obj)
        if op == "push":
            return ok_response(request_id, self._handle_push(obj))
        if op == "view_add":
            return ok_response(request_id, self._handle_view_add(obj))
        if op == "view_drop":
            return ok_response(request_id, self._handle_view_drop(obj))
        if op == "view_counts":
            return ok_response(request_id, self._handle_view_counts(obj))
        if op == "stream_close":
            name = obj.get("stream", "default")
            existed = self._streams.pop(name, None) is not None
            return ok_response(request_id, {"stream": name, "closed": existed})
        if op == "stats":
            return ok_response(request_id, await self._handle_stats(obj))
        if op == "health":
            return ok_response(request_id, self._handle_health())
        raise ProtocolError("unknown_op", f"unhandled op {op!r}")  # pragma: no cover

    async def _dispatch_compute(self, request_id: Any, op: str, obj: Mapping) -> dict:
        assert self._pool is not None, "server not started"
        job = dict(obj)
        job["op"] = op
        depth = self._pool.outstanding()
        self.registry.set_gauge("service.queue.depth", depth)
        if op != "sleep" and depth >= self._max_pending:
            job = self._shed(op, job, depth)  # may raise overloaded
        future = self._pool.submit(job)
        try:
            reply = await asyncio.wrap_future(future)
        except WorkerDied as died:
            code = "timeout" if died.timed_out else "worker_died"
            self.registry.inc(f"service.errors{{code={code}}}")
            return error_response(request_id, code, str(died))
        if not reply.get("ok"):
            err = reply.get("error", {})
            code = err.get("code", "internal")
            self.registry.inc(f"service.errors{{code={code}}}")
            return error_response(request_id, code, err.get("message", "?"))
        return ok_response(request_id, reply["result"])

    def _shed(self, op: str, job: dict, depth: int) -> dict:
        """Apply the overflow policy to one over-admission request.

        Returns the (possibly degraded) job to submit, or raises the
        ``overloaded`` :class:`ProtocolError` for the reject path.
        """
        degradable = op in ("census", "count", "window", "estimate")
        hard_limit = max(self._max_pending, 1) * HARD_LIMIT_FACTOR
        if (
            self._overflow == "degrade"
            and degradable
            and depth < hard_limit
            and _numpy_available()
        ):
            self.registry.inc("service.shed{policy=degrade}")
            degraded = dict(job)
            degraded["op"] = "estimate"
            degraded.setdefault("q", self._degrade_q)
            degraded["degraded"] = True
            return degraded
        self.registry.inc("service.shed{policy=reject}")
        raise ProtocolError(
            "overloaded",
            f"admission queue full ({depth} outstanding >= "
            f"{self._max_pending} max_pending); retry later",
            retry_after=self._retry_after(depth),
        )

    def _retry_after(self, depth: int) -> float:
        """Estimate when a slot frees up: mean request latency x backlog."""
        hist = self.registry.histograms.get(
            labeled("service.request.seconds", op="census")
        )
        if hist is None or not hist.count:
            candidates = [
                h
                for name, h in self.registry.histograms.items()
                if name.startswith("service.request.seconds") and h.count
            ]
            hist = candidates[0] if candidates else None
        mean = hist.mean if hist is not None else 0.05
        backlog = max(depth - self._max_pending + 1, 1)
        workers = len(self._pool) if self._pool else 1
        return round(max(0.05, mean * backlog / workers), 3)

    # ------------------------------------------------------------------
    # inline ops
    # ------------------------------------------------------------------
    def _handle_push(self, obj: Mapping) -> dict:
        name = obj.get("stream", "default")
        if not isinstance(name, str):
            raise ProtocolError("bad_request", "stream must be a string")
        events = obj.get("events", [])
        if not isinstance(events, list):
            raise ProtocolError("bad_request", "events must be a list of [u, v, t]")
        if len(events) > self._max_push_batch:
            raise ProtocolError(
                "payload_too_large",
                f"push batch of {len(events)} exceeds the "
                f"{self._max_push_batch}-event cap; split the batch",
            )
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = self._create_stream(obj)
        engine = stream.engine
        accepted = 0
        with self.registry.span("service.push.seconds"):
            try:
                for ev in events:
                    if not isinstance(ev, (list, tuple)) or len(ev) != 3:
                        raise ProtocolError(
                            "bad_request", "each event must be [u, v, t]"
                        )
                    engine.push((int(ev[0]), int(ev[1]), float(ev[2])))
                    accepted += 1
            except ProtocolError:
                raise
            except (TypeError, ValueError) as exc:
                # e.g. timestamps going backwards: the stream contract.
                self.registry.inc("service.errors{code=bad_stream}")
                raise ProtocolError(
                    "bad_stream",
                    f"push rejected after {accepted} events: {exc}",
                    accepted=accepted,
                ) from None
        self.registry.inc("service.push.events", accepted)
        result = {"stream": name, "accepted": accepted}
        result.update(stream.describe())  # "pushed" is the stream's lifetime total
        if obj.get("want_counts"):
            payload = self._view_payload(name, stream, obj.get("view", "default"))
            result["codes"] = payload["codes"]
            if payload["exact"]:
                result["total"] = payload["total"]
            else:
                result["stderr"] = payload["stderr"]
                result["degraded"] = True
        return result

    def _create_stream(self, obj: Mapping) -> _Stream:
        from repro.core.constraints import TimingConstraints
        from repro.online import MultiViewCensus

        window = obj.get("window")
        if window is None:
            raise ProtocolError(
                "bad_request",
                "first push to a stream must configure it: window is required",
            )
        delta_c, delta_w = protocol.constraint_fields(obj)
        n_events = obj.get("n_events", 3)
        try:
            window = float(window)
            # Retention bounds the largest window any later view_add may
            # register; the engine's ledger/prefix horizons follow it.
            retention = float(obj.get("retention", window))
            engine = MultiViewCensus(
                n_events,
                TimingConstraints(delta_c=delta_c, delta_w=delta_w),
                retention,
                max_nodes=obj.get("max_nodes"),
                backend=self._stream_backend,
                prune_every=obj.get("prune_every", 8192),
                registry=self.registry,
            )
            engine.add_view("default", window)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", f"bad stream config: {exc}") from None
        self.registry.inc("service.streams.created")
        return _Stream(engine, window)

    # ------------------------------------------------------------------
    # view plane
    # ------------------------------------------------------------------
    def _require_stream(self, obj: Mapping) -> tuple[str, _Stream]:
        name = obj.get("stream", "default")
        if not isinstance(name, str):
            raise ProtocolError("bad_request", "stream must be a string")
        stream = self._streams.get(name)
        if stream is None:
            raise ProtocolError(
                "unknown_stream",
                f"no stream named {name!r}; create it with a push "
                "(window is required on the first one)",
            )
        return name, stream

    @staticmethod
    def _view_name(obj: Mapping, *, default: str | None = None) -> str:
        view = obj.get("view", default)
        if not isinstance(view, str) or not view:
            raise ProtocolError("bad_request", "view must be a non-empty string")
        return view

    def _view_payload(self, name: str, stream: _Stream, view: str) -> dict:
        engine = stream.engine
        if view not in engine:
            raise ProtocolError(
                "unknown_view",
                f"stream {name!r} has no view {view!r} "
                f"(have: {sorted(engine.view_names())})",
            )
        try:
            return engine.view_counts(view)
        except RuntimeError as exc:
            # A degraded view read without NumPy on the server.
            raise ProtocolError("bad_request", str(exc)) from None

    def _handle_view_add(self, obj: Mapping) -> dict:
        name, stream = self._require_stream(obj)
        view = self._view_name(obj)
        window = obj.get("window")
        if window is None:
            raise ProtocolError("bad_request", "view_add requires a window")
        nodes = obj.get("nodes")
        if nodes is not None and not isinstance(nodes, list):
            raise ProtocolError("bad_request", "nodes must be a list of node ids")
        engine = stream.engine
        degrade = False
        if self._max_exact_views is not None:
            exact = sum(
                1
                for info in engine.describe()["views"].values()
                if info["mode"] == "exact"
            )
            if exact >= self._max_exact_views:
                if self._overflow == "degrade" and _numpy_available():
                    degrade = True
                    self.registry.inc("service.view.shed{policy=degrade}")
                else:
                    self.registry.inc("service.view.shed{policy=reject}")
                    raise ProtocolError(
                        "overloaded",
                        f"stream {name!r} already maintains {exact} exact views "
                        f"(max_exact_views={self._max_exact_views}); drop one "
                        "or run the server with overflow='degrade'",
                    )
        try:
            engine.add_view(
                view,
                float(window),
                nodes=None if nodes is None else [int(n) for n in nodes],
                backfill=bool(obj.get("backfill", True)),
            )
            if degrade:
                engine.degrade_view(
                    view,
                    q=float(obj.get("q", self._degrade_q)),
                    seed=obj.get("seed"),
                )
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request", f"bad view config: {exc}") from None
        return {
            "stream": name,
            "view": view,
            "window": float(window),
            "degraded": degrade,
            "views": len(engine),
        }

    def _handle_view_drop(self, obj: Mapping) -> dict:
        name, stream = self._require_stream(obj)
        view = self._view_name(obj)
        dropped = stream.engine.drop_view(view)
        return {
            "stream": name,
            "view": view,
            "dropped": dropped,
            "views": len(stream.engine),
        }

    def _handle_view_counts(self, obj: Mapping) -> dict:
        name, stream = self._require_stream(obj)
        view = self._view_name(obj, default="default")
        payload = self._view_payload(name, stream, view)
        payload["stream"] = name
        return payload

    async def _handle_stats(self, obj: Mapping) -> dict:
        assert self._pool is not None
        timeout = float(obj.get("timeout", 5.0))
        loop = asyncio.get_running_loop()
        worker_snaps = await loop.run_in_executor(
            None, lambda: self._pool.snapshots(timeout) if self._pool else []
        )
        merged = merge_snapshots([self.registry.snapshot(), *worker_snaps])
        service = {
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "connections": self._connections,
            "max_pending": self._max_pending,
            "overflow": self._overflow,
            "pool": self._pool.stats() if self._pool else {},
            "worker_snapshots": len(worker_snaps),
            "streams": {
                name: stream.describe() for name, stream in self._streams.items()
            },
            "graph": self.meta,
        }
        return {"service": service, "metrics": merged}

    def _handle_health(self) -> dict:
        pool = self._pool
        return {
            "status": "ok" if pool is not None and pool.alive() == len(pool) else "degraded",
            "workers": len(pool) if pool else 0,
            "alive": pool.alive() if pool else 0,
            "pids": pool.pids() if pool else [],
            "outstanding": pool.outstanding() if pool else 0,
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "graph": self.meta,
        }


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
class ServerHandle:
    """A running server on a background thread (tests, benchmarks, demos)."""

    def __init__(self, server: CensusServer) -> None:
        self.server = server
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="census-server", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            try:
                self.host, self.port = await self.server.start()
            except BaseException as exc:
                self._failure = exc
                self._started.set()
                raise
            self._started.set()
            try:
                await self._stop_event.wait()
            finally:
                await self.server.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            if self._failure is None:
                self._failure = exc

    def start(self, timeout: float = 120.0) -> "ServerHandle":
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("census server did not start in time")
        if self._failure is not None:
            raise RuntimeError("census server failed to start") from self._failure
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)


def start_in_thread(**kwargs: Any) -> ServerHandle:
    """Boot a :class:`CensusServer` on a background thread; returns the handle.

    ``kwargs`` go to the :class:`CensusServer` constructor.  The handle
    exposes ``host``/``port`` once started and ``stop()`` for a clean
    shutdown (listener closed, workers joined, temp pages removed).
    """
    return ServerHandle(CensusServer(**kwargs)).start()


# ----------------------------------------------------------------------
# CLI entry (python -m repro.experiments serve)
# ----------------------------------------------------------------------
def serve_cli(args: Any) -> int:
    """Run a server in the foreground from parsed experiments-CLI args."""
    dataset = None
    if getattr(args, "datasets", None):
        dataset = args.datasets[0]
    server = CensusServer(
        dataset=dataset,
        scale=getattr(args, "scale", 1.0),
        pages=getattr(args, "pages", None),
        workers=getattr(args, "workers", None) or 2,
        max_pending=getattr(args, "max_pending", None) or DEFAULT_MAX_PENDING,
        overflow=getattr(args, "overflow", None) or "reject",
        host=getattr(args, "host", None) or "127.0.0.1",
        port=getattr(args, "port", None) or 8737,
    )

    async def main() -> int:
        host, port = await server.start()
        meta = server.meta
        print(
            f"census service listening on {host}:{port} — "
            f"{meta.get('events', '?')} events of {meta.get('name', '?')!r} "
            f"({len(server._pool or [])} workers, "
            f"max_pending={server._max_pending}, overflow={server._overflow})"
        )
        print("protocol: one JSON request per line; try "
              '{"op": "health"} or {"op": "count", "delta_w": 3600}')
        # SIGTERM must shut down as cleanly as Ctrl-C: the workers are
        # non-daemonic spawn processes and would outlive a killed parent.
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop_requested.wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        print("\nshutting down")
        return 0
