"""repro.service — census-as-a-service over shared mmap pages.

The serving layer on top of the library: one graph, many concurrent
readers, bounded tail latency.  Three planes, one per module:

* :mod:`repro.service.protocol` — the NDJSON wire protocol (ops, error
  vocabulary, framing limits);
* :mod:`repro.service.workers` — the worker pool: N non-daemonic
  processes, each mmap-opening the same PR 3 page directory read-only
  and answering census/count/window/estimate jobs through the PR 5
  plan cache, with death-detection, respawn and per-request timeouts;
* :mod:`repro.service.server` — the asyncio front-end: admission
  control with reject/degrade overflow policies (the load-shedding
  continuation of ``StreamMatcher.shed``), server-side
  :class:`~repro.online.OnlineCensus` push streams, and a ``stats`` op
  merging the server registry with every worker's observability
  snapshot;
* :mod:`repro.service.client` — the blocking stdlib client.

Start a server with ``python -m repro.experiments serve``, embed one
with :func:`~repro.service.server.start_in_thread`, talk to one with
:class:`~repro.service.client.ServiceClient`.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import MAX_LINE_BYTES, ProtocolError
from repro.service.server import CensusServer, ServerHandle, serve_cli, start_in_thread
from repro.service.workers import WorkerDied, WorkerPool

__all__ = [
    "CensusServer",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ServerHandle",
    "ServiceClient",
    "ServiceError",
    "WorkerDied",
    "WorkerPool",
    "serve_cli",
    "start_in_thread",
]
