"""The census service worker pool: N processes over one shared page directory.

Each worker is a long-lived process that opens the served graph **once**
and then answers compute jobs forever.  When the graph source is a PR 3
page directory, every worker opens the same ``.npy`` pages with
``np.load(mmap_mode="r")`` — N workers share one set of read-only column
pages through the OS page cache, so worker memory stays O(tail) no
matter how large the graph is.  Plan compilation inside a worker goes
through :func:`repro.engine.compile_plan`'s session memo, so a
configuration served a thousand times is compiled once per worker.

Topology: one dispatcher *thread* per worker in the server process, fed
by a per-worker FIFO, speaking to the worker child over a
``multiprocessing`` pipe.  The thread is what makes failure handling
simple — a worker that dies mid-request surfaces as ``EOFError`` on the
pipe, the dispatcher fails that one request with
:class:`WorkerDied`, respawns the child, and the queue drains on.
Workers run with their own observability registry enabled, and return
it on demand (the ``snapshot`` job) so the server's ``stats`` op can
merge per-worker storage/engine counters exactly like the parallel
engine merges shard snapshots.

Workers start via the ``spawn`` context: no state is inherited from the
(multi-threaded, asyncio-running) server process, which keeps fork-
safety out of the picture and the worker's memory image minimal.
Workers are non-daemonic on purpose — a request carrying ``jobs=N``
fans out *inside* the worker through :mod:`repro.parallel`, which
refuses to nest pools under a daemonic parent.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from typing import Any, Mapping

from repro.service.protocol import ProtocolError, constraint_fields

__all__ = ["WorkerDied", "WorkerPool", "open_graph_source"]

#: Default per-request compute budget (seconds) before the worker is
#: presumed wedged, killed, and respawned.
DEFAULT_REQUEST_TIMEOUT = 600.0

_STOP = object()


class WorkerDied(RuntimeError):
    """The worker handling a request exited before replying."""

    def __init__(self, message: str, *, timed_out: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out


# ----------------------------------------------------------------------
# graph sources — how a worker materializes the served graph
# ----------------------------------------------------------------------
def open_graph_source(source: Mapping[str, Any]):
    """Open a graph-source spec (runs inside the worker process).

    A thin veneer over :func:`repro.sources.resolve` — the one
    source-resolution API — kept as the worker-side entry point.  The
    specs the server ships are :meth:`repro.sources.GraphSource.spec`
    wire dicts: ``"pages"`` / ``"partitioned"`` directories (mmap'd
    read-only, shared across workers through the page cache),
    ``"dataset"`` regeneration (deterministic from name/scale/seed, the
    NumPy-less fallback), or inline ``"events"`` (tests and tiny
    deployments).
    """
    from repro.sources import resolve

    return resolve(source).open(mmap=True)


# ----------------------------------------------------------------------
# job execution (worker side)
# ----------------------------------------------------------------------
def _window_view(graph, params: Mapping):
    t_lo = params.get("t_lo")
    t_hi = params.get("t_hi")
    if t_lo is None and t_hi is None:
        return graph
    # Storage-level scalar bounds: O(1) on every backend, including the
    # out-of-core partitioned one (graph.times would materialize it).
    start = graph.storage.start_time
    end = graph.storage.end_time
    lo = float(t_lo) if t_lo is not None else (start if start is not None else 0.0)
    hi = float(t_hi) if t_hi is not None else (end if end is not None else 0.0)
    if hi < lo:
        raise ProtocolError("bad_request", "t_hi must be >= t_lo")
    return graph.slice(lo, hi)


def _motif_kwargs(params: Mapping) -> dict:
    from repro.core.constraints import TimingConstraints

    delta_c, delta_w = constraint_fields(params)
    n_events = params.get("n_events", 3)
    if not isinstance(n_events, int) or not 1 <= n_events <= 6:
        raise ProtocolError("bad_request", "n_events must be an integer in [1, 6]")
    max_nodes = params.get("max_nodes")
    if max_nodes is not None and (not isinstance(max_nodes, int) or max_nodes < 1):
        raise ProtocolError("bad_request", "max_nodes must be a positive integer")
    jobs = params.get("jobs")
    if jobs is not None and not isinstance(jobs, int):
        raise ProtocolError("bad_request", "jobs must be an integer")
    return {
        "n_events": n_events,
        "constraints": TimingConstraints(delta_c=delta_c, delta_w=delta_w),
        "max_nodes": max_nodes,
        "jobs": jobs,
    }


def _serialize_census(census) -> dict:
    pairs = {
        ("disjoint" if p is None else p.value): n
        for p, n in census.pair_counts.items()
    }
    return {
        "total": census.total,
        "codes": dict(census.code_counts),
        "pairs": pairs,
        "pair_groups": census.pair_group_counts(),
    }


def _execute(graph, job: Mapping, registry) -> dict:
    """One compute job -> result payload (runs inside the worker)."""
    from repro.algorithms.counting import count_motifs, run_census

    op = job["op"]
    if op == "snapshot":
        return {"snapshot": registry.snapshot()}
    if op == "meta":
        return {
            "events": len(graph),
            "name": graph.name,
            "backend": graph.storage.backend_name,
            "pid": os.getpid(),
        }
    if op == "sleep":
        seconds = float(job.get("seconds", 0.0))
        time.sleep(max(0.0, min(seconds, 3600.0)))
        return {"slept": seconds}

    started = time.perf_counter()
    if op == "window":
        if job.get("t_lo") is None or job.get("t_hi") is None:
            raise ProtocolError("bad_request", "window op requires t_lo and t_hi")
    view = _window_view(graph, job)
    kw = _motif_kwargs(job)
    if op in ("census", "window"):
        census = run_census(
            view,
            kw["n_events"],
            kw["constraints"],
            max_nodes=kw["max_nodes"],
            jobs=kw["jobs"],
        )
        result = _serialize_census(census)
    elif op == "count":
        counts = count_motifs(
            view,
            kw["n_events"],
            kw["constraints"],
            max_nodes=kw["max_nodes"],
            jobs=kw["jobs"],
        )
        result = {"codes": dict(counts), "total": sum(counts.values())}
    elif op == "estimate":
        result = _estimate(view, kw, job)
    else:
        raise ProtocolError("bad_request", f"op {op!r} is not a worker job")
    result["elapsed"] = time.perf_counter() - started
    if job.get("degraded"):
        result["degraded"] = True
    return result


def _estimate(view, kw: Mapping, job: Mapping) -> dict:
    """Root-sampling estimate with per-code standard errors."""
    from repro.core._optional import import_numpy

    np = import_numpy()
    if not np:
        raise ProtocolError(
            "bad_request", "the estimate op requires NumPy on the server"
        )
    from repro.algorithms.sampling import estimate_counts_root_sampling

    q = job.get("q", 0.25)
    try:
        q = float(q)
    except (TypeError, ValueError):
        raise ProtocolError("bad_request", "q must be a number in (0, 1]") from None
    if not 0 < q <= 1:
        raise ProtocolError("bad_request", "q must be in (0, 1]")
    rng = np.random.default_rng(job.get("seed"))
    estimates = estimate_counts_root_sampling(
        view,
        kw["n_events"],
        kw["constraints"],
        q,
        max_nodes=kw["max_nodes"],
        rng=rng,
        jobs=kw["jobs"],
    )
    # Horvitz–Thompson per-code standard error: raw sampled count n has
    # variance n(1-q)/q^2 around the estimate n/q.
    stderr = {
        code: (max(est * q, 0.0) * (1.0 - q)) ** 0.5 / q
        for code, est in estimates.items()
    }
    return {
        "codes": estimates,
        "stderr": stderr,
        "q": q,
        "method": "root_sampling",
    }


def _worker_main(conn, source: Mapping[str, Any]) -> None:  # pragma: no cover
    """Worker child: open the graph once, answer jobs until EOF/stop.

    (Covered indirectly — this runs in spawned child processes, outside
    the coverage tracer.)
    """
    import repro.obs as obs

    registry = obs.enable(obs.MetricsRegistry())
    try:
        graph = open_graph_source(source)
    except Exception:
        conn.send({"ok": False, "error": {"code": "internal", "message": traceback.format_exc()}})
        conn.close()
        return
    conn.send({"ok": True, "result": {"pid": os.getpid()}})
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:
            break
        try:
            reply = {"ok": True, "result": _execute(graph, job, registry)}
        except ProtocolError as exc:
            reply = {"ok": False, "error": {"code": exc.code, "message": exc.message}}
        except Exception:
            reply = {
                "ok": False,
                "error": {"code": "internal", "message": traceback.format_exc()},
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# server-side pool
# ----------------------------------------------------------------------
class _Worker:
    """One worker process + the dispatcher thread that owns its pipe."""

    def __init__(
        self,
        index: int,
        source: Mapping[str, Any],
        ctx,
        *,
        respawn: bool,
        request_timeout: float,
    ) -> None:
        self.index = index
        self._source = source
        self._ctx = ctx
        self._respawn = respawn
        self._timeout = request_timeout
        self.pending = 0  # jobs queued or running on this worker
        self.deaths = 0
        self.completed = 0
        self._lock = threading.Lock()
        self._inbox: queue.Queue = queue.Queue()
        self._spawn()
        self._thread = threading.Thread(
            target=self._run, name=f"census-worker-{index}", daemon=True
        )
        self._thread.start()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._source),
            name=f"census-worker-{self.index}",
            daemon=False,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        # The child's first message is its readiness handshake (or the
        # traceback of a failed graph open, surfaced at pool start).
        hello = self._recv_with_timeout(self._timeout)
        if not hello.get("ok"):
            raise RuntimeError(
                f"worker {self.index} failed to open its graph:\n"
                f"{hello.get('error', {}).get('message', '?')}"
            )
        self.pid = hello["result"]["pid"]

    def _recv_with_timeout(self, timeout: float) -> dict:
        """Receive one reply; on timeout kill the child and raise WorkerDied."""
        if not self._conn.poll(timeout):
            self.process.kill()
            self.process.join()
            raise WorkerDied(
                f"worker {self.index} (pid {self.pid}) exceeded the "
                f"{timeout:.0f}s request budget and was killed",
                timed_out=True,
            )
        return self._conn.recv()

    def submit(self, payload: Mapping, future: Future) -> None:
        with self._lock:
            self.pending += 1
        self._inbox.put((payload, future))

    def stop(self) -> None:
        self._inbox.put(_STOP)

    def join(self, timeout: float) -> None:
        self._thread.join(timeout)
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join()
        self._conn.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def _run(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                try:
                    self._conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                break
            payload, future = item
            if not future.set_running_or_notify_cancel():
                with self._lock:
                    self.pending -= 1
                continue
            try:
                self._conn.send(payload)
                reply = self._recv_with_timeout(self._timeout)
            except WorkerDied as died:
                self._after_death(future, died)
                continue
            except (EOFError, OSError, BrokenPipeError):
                self.process.join()
                self._after_death(
                    future,
                    WorkerDied(
                        f"worker {self.index} (pid {self.pid}) died mid-request "
                        f"(exit code {self.process.exitcode})"
                    ),
                )
                continue
            self.completed += 1
            with self._lock:
                self.pending -= 1
            future.set_result(reply)

    def _after_death(self, future: Future, died: WorkerDied) -> None:
        self.deaths += 1
        with self._lock:
            self.pending -= 1
        if self._respawn:
            try:
                self._spawn()
            except Exception as exc:  # pragma: no cover - spawn failure
                future.set_exception(
                    WorkerDied(f"{died}; respawn failed: {exc}")
                )
                return
        future.set_exception(died)


class WorkerPool:
    """N census workers over one graph source, with least-loaded dispatch."""

    def __init__(
        self,
        source: Mapping[str, Any],
        workers: int = 2,
        *,
        respawn: bool = True,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ctx = multiprocessing.get_context(start_method)
        self._workers = [
            _Worker(
                i,
                source,
                ctx,
                respawn=respawn,
                request_timeout=request_timeout,
            )
            for i in range(workers)
        ]
        self._closed = False

    def __len__(self) -> int:
        return len(self._workers)

    def submit(self, payload: Mapping) -> Future:
        """Queue one job on the least-loaded worker; returns its Future.

        The Future resolves to the worker's reply dict (``{"ok": ...}``)
        or raises :class:`WorkerDied`.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        worker = min(self._workers, key=lambda w: w.pending)
        future: Future = Future()
        worker.submit(dict(payload), future)
        return future

    def outstanding(self) -> int:
        """Jobs queued or running across all workers (the admission depth)."""
        return sum(w.pending for w in self._workers)

    def alive(self) -> int:
        return sum(1 for w in self._workers if w.alive())

    def pids(self) -> list[int]:
        return [w.pid for w in self._workers]

    def stats(self) -> dict:
        return {
            "workers": len(self._workers),
            "alive": self.alive(),
            "outstanding": self.outstanding(),
            "completed": sum(w.completed for w in self._workers),
            "deaths": sum(w.deaths for w in self._workers),
        }

    def snapshots(self, timeout: float = 5.0) -> list[dict]:
        """Observability snapshots from every worker that answers in time.

        Snapshot jobs ride the same FIFO as compute jobs, so a worker
        deep in a long census simply misses the deadline — the merge
        uses whatever arrived (the associative-merge contract makes the
        partial fold well-defined).
        """
        futures = [self.submit({"op": "snapshot"}) for _ in self._workers]
        deadline = time.monotonic() + timeout
        out = []
        for future in futures:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                reply = future.result(timeout=remaining)
            except Exception:
                continue
            if reply.get("ok"):
                out.append(reply["result"]["snapshot"])
        return out

    def close(self, timeout: float = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        for worker in self._workers:
            worker.join(timeout)
