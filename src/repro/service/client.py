"""A blocking, stdlib-only client for the census service.

One :class:`ServiceClient` wraps one TCP connection speaking the
:mod:`repro.service.protocol` NDJSON framing; requests are issued
sequentially (responses come back in order), so a concurrent workload is
N clients — exactly how :mod:`benchmarks.bench_service` drives the
server from N threads.

Every convenience method returns the response's ``result`` dict;
failures raise :class:`ServiceError` carrying the wire error code (and
``retry_after`` when the server shed the request)::

    from repro.service.client import ServiceClient, ServiceError

    with ServiceClient("127.0.0.1", 8737) as client:
        print(client.health()["status"])
        counts = client.count(delta_w=3600.0)["codes"]
        try:
            client.census(delta_w=3600.0, jobs=2)
        except ServiceError as err:
            if err.code == "overloaded":
                time.sleep(err.retry_after or 0.1)
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterable, Mapping

from repro.service.protocol import MAX_LINE_BYTES

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response from the service (or a broken connection)."""

    def __init__(self, code: str, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after = retry_after


class ServiceClient:
    """One connection to a running census server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 120.0,
        max_line: int = MAX_LINE_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")
        self._max_line = max_line
        self._next_id = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **params: Any) -> dict:
        """Send one request; return the full response frame (``ok`` and all)."""
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op}
        payload.update({k: v for k, v in params.items() if v is not None})
        self._fh.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        self._fh.flush()
        line = self._fh.readline(self._max_line + 2)
        if not line:
            raise ServiceError("internal", "connection closed by server")
        response = json.loads(line)
        got = response.get("id")
        if got is not None and got != request_id:
            raise ServiceError(
                "internal", f"response id {got!r} does not match request {request_id}"
            )
        return response

    def call(self, op: str, **params: Any) -> dict:
        """Send one request; return ``result`` or raise :class:`ServiceError`."""
        response = self.request(op, **params)
        if response.get("ok"):
            return response["result"]
        error: Mapping = response.get("error", {})
        raise ServiceError(
            error.get("code", "internal"),
            error.get("message", "?"),
            retry_after=error.get("retry_after"),
        )

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def census(self, **params: Any) -> dict:
        """Full census: ``codes``/``pairs``/``pair_groups``/``total``."""
        return self.call("census", **params)

    def count(self, **params: Any) -> dict:
        """Per-code counts only."""
        return self.call("count", **params)

    def window(self, t_lo: float, t_hi: float, **params: Any) -> dict:
        """Census restricted to the closed window ``[t_lo, t_hi]``."""
        return self.call("window", t_lo=t_lo, t_hi=t_hi, **params)

    def estimate(self, q: float, **params: Any) -> dict:
        """Root-sampling approximate counts with per-code error bars."""
        return self.call("estimate", q=q, **params)

    def push(
        self, events: Iterable[Iterable[float]], *, stream: str = "default", **params: Any
    ) -> dict:
        """Append events to a named server-side stream (see protocol docs)."""
        return self.call(
            "push", stream=stream, events=[list(ev) for ev in events], **params
        )

    def view_add(
        self,
        view: str,
        window: float,
        *,
        stream: str = "default",
        nodes: Iterable[int] | None = None,
        backfill: bool = True,
        **params: Any,
    ) -> dict:
        """Register a named view on a running stream.

        The response's ``degraded`` flag reports whether the server
        admitted the view in estimate mode (past its ``max_exact_views``
        budget under the degrade overflow policy).
        """
        return self.call(
            "view_add",
            stream=stream,
            view=view,
            window=window,
            nodes=None if nodes is None else [int(n) for n in nodes],
            backfill=backfill,
            **params,
        )

    def view_drop(self, view: str, *, stream: str = "default") -> dict:
        return self.call("view_drop", stream=stream, view=view)

    def view_counts(self, view: str = "default", *, stream: str = "default") -> dict:
        """One view's counters: exact codes, or estimates with ``stderr``."""
        return self.call("view_counts", stream=stream, view=view)

    def stream_close(self, stream: str = "default") -> dict:
        return self.call("stream_close", stream=stream)

    def stats(self, timeout: float | None = None) -> dict:
        """Service counters + the merged server/worker metrics snapshot."""
        return self.call("stats", timeout=timeout)

    def health(self) -> dict:
        return self.call("health")

    def sleep(self, seconds: float) -> dict:
        """Hold one worker for ``seconds`` (diagnostics/load drills)."""
        return self.call("sleep", seconds=seconds)
