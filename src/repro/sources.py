"""One resolution API for every way a graph reaches the library.

Before PR 8 three code paths each knew how to turn "something" into a
:class:`~repro.core.temporal_graph.TemporalGraph`: the facade's
``load``, the experiments CLI's dataset registry lookup, and the census
service's private source resolution.  :func:`resolve` replaces all
three call sites with one rule set::

    resolve("sms-copenhagen")          # registered dataset name
    resolve("/data/pages")             # flat page directory (meta.json)
    resolve("/data/parts")             # partitioned directory (manifest.json)
    resolve([(0, 1, 10.0), ...])       # inline event list
    resolve(graph)                     # an already-built TemporalGraph
    resolve({"kind": "pages", ...})    # an explicit wire spec

and returns a :class:`GraphSource` — a small, picklable description
that can cross a process boundary as :meth:`GraphSource.spec` (the
census service ships these to its worker processes) and materializes a
graph on :meth:`GraphSource.open`.

Kinds
-----

* ``"pages"`` — flat PR 3 page directory, opened memory-mapped;
* ``"partitioned"`` — PR 8 partitioned directory, opened out-of-core
  with a bounded resident set;
* ``"dataset"`` — registered dataset name, regenerated deterministically
  from ``(name, scale, seed)``;
* ``"events"`` — inline event tuples (tests, tiny deployments);
* ``"graph"`` — an in-process graph object (not wire-serializable as
  such; :meth:`GraphSource.spec` degrades it to an ``"events"`` spec).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from repro.core.temporal_graph import TemporalGraph

__all__ = ["GraphSource", "resolve"]


@dataclass(frozen=True)
class GraphSource:
    """A resolved, picklable description of where a graph comes from."""

    kind: str
    path: str | None = None
    dataset: str | None = None
    events: tuple = ()
    name: str = ""
    scale: float = 1.0
    seed: int | None = None
    graph: TemporalGraph | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def open(self, *, mmap: bool = True) -> TemporalGraph:
        """Materialize the graph this source describes.

        ``mmap`` applies to the directory kinds (``"pages"`` /
        ``"partitioned"``); the others build in memory.  A non-empty
        :attr:`name` overrides whatever name the source itself records.
        """
        if self.kind == "graph":
            return self.graph  # type: ignore[return-value]
        if self.kind == "events":
            return TemporalGraph.from_tuples(self.events, name=self.name)
        if self.kind == "dataset":
            from repro.datasets.registry import get_dataset

            graph = get_dataset(self.dataset, scale=self.scale, seed=self.seed)
            if self.name and self.name != graph.name:
                graph = TemporalGraph._from_storage(graph.storage, name=self.name)
            return graph
        if self.kind in ("pages", "partitioned"):
            return TemporalGraph.load(self.path, mmap=mmap, name=self.name or None)
        raise ValueError(f"unknown graph source kind: {self.kind!r}")

    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """The wire form: a plain JSON-able dict that re-resolves remotely.

        This is what the census service ships to its worker processes.
        A ``"graph"`` source has no remote identity, so it degrades to an
        ``"events"`` spec carrying the materialized tuples (and, unlike
        the pre-PR 8 service copy of this logic, the graph's name).
        """
        if self.kind == "graph":
            graph = self.graph
            return {
                "kind": "events",
                "events": [(ev.u, ev.v, ev.t) for ev in graph.events],
                "name": self.name or graph.name,
            }
        if self.kind == "events":
            return {
                "kind": "events",
                "events": [tuple(ev[:3]) for ev in self.events],
                "name": self.name,
            }
        if self.kind == "dataset":
            return {
                "kind": "dataset",
                "name": self.dataset,
                "scale": self.scale,
                "seed": self.seed,
            }
        if self.kind in ("pages", "partitioned"):
            out: dict = {"kind": self.kind, "path": self.path}
            if self.name:
                out["name"] = self.name
            return out
        raise ValueError(f"unknown graph source kind: {self.kind!r}")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human summary (CLI banners, service logs)."""
        if self.kind == "graph":
            graph = self.graph
            return f"graph {graph.name!r} ({len(graph)} events, in process)"
        if self.kind == "events":
            return f"{len(self.events)} inline events"
        if self.kind == "dataset":
            return f"dataset {self.dataset!r} (scale={self.scale}, seed={self.seed})"
        return f"{self.kind} directory {self.path!r}"


def _from_mapping(spec: Mapping[str, Any]) -> GraphSource:
    kind = spec.get("kind")
    if kind in ("pages", "partitioned"):
        return GraphSource(
            kind=kind, path=str(spec["path"]), name=spec.get("name", "")
        )
    if kind == "dataset":
        return GraphSource(
            kind="dataset",
            dataset=spec["name"],
            scale=spec.get("scale", 1.0),
            seed=spec.get("seed"),
        )
    if kind == "events":
        return GraphSource(
            kind="events",
            events=tuple(tuple(ev[:3]) for ev in spec["events"]),
            name=spec.get("name", ""),
        )
    raise ValueError(f"unknown graph source kind: {kind!r}")


def _from_path_or_dataset(text: str) -> GraphSource:
    from repro.datasets.registry import dataset_names
    from repro.storage.partitioned import MANIFEST_NAME, is_partitioned

    if os.path.isdir(text):
        if is_partitioned(text):
            return GraphSource(kind="partitioned", path=text)
        if os.path.exists(os.path.join(text, "meta.json")):
            return GraphSource(kind="pages", path=text)
        raise ValueError(
            f"{text!r} is a directory but holds neither a flat page set "
            f"(meta.json) nor a partitioned one ({MANIFEST_NAME})"
        )
    if text in dataset_names():
        return GraphSource(kind="dataset", dataset=text)
    known = ", ".join(dataset_names())
    raise ValueError(
        f"cannot resolve graph source {text!r}: not an existing page "
        f"directory and not a registered dataset (known: {known})"
    )


def resolve(
    spec,
    *,
    scale: float | None = None,
    seed: int | None = None,
    name: str | None = None,
) -> GraphSource:
    """Resolve anything graph-like into a :class:`GraphSource`.

    Accepted forms, in match order:

    * a :class:`GraphSource` (returned as-is, modulo overrides);
    * a :class:`TemporalGraph` (wrapped as kind ``"graph"``);
    * a mapping with a ``"kind"`` key (the service wire spec);
    * a ``str`` / ``os.PathLike``: an existing directory is sniffed for
      a partitioned ``manifest.json`` then a flat ``meta.json``;
      otherwise the text must be a registered dataset name;
    * any other iterable: treated as inline ``(u, v, t)`` event tuples.

    ``scale`` and ``seed`` apply to dataset sources; ``name`` overrides
    the graph name any source would otherwise carry.
    """
    if isinstance(spec, GraphSource):
        source = spec
    elif isinstance(spec, TemporalGraph):
        source = GraphSource(kind="graph", graph=spec, name=spec.name)
    elif isinstance(spec, Mapping):
        source = _from_mapping(spec)
    elif isinstance(spec, (str, os.PathLike)):
        source = _from_path_or_dataset(os.fspath(spec))
    elif isinstance(spec, Iterable):
        source = GraphSource(
            kind="events", events=tuple(tuple(ev[:3]) for ev in spec)
        )
    else:
        raise TypeError(
            f"cannot resolve a graph source from {type(spec).__name__!r}"
        )
    overrides: dict = {}
    if scale is not None and source.kind == "dataset":
        overrides["scale"] = scale
    if seed is not None and source.kind == "dataset":
        overrides["seed"] = seed
    if name is not None:
        overrides["name"] = name
    return replace(source, **overrides) if overrides else source
