"""Event patterns for the Song et al. model (labels + partial ordering).

An :class:`EventPattern` is a template of pattern events over node
*variables*, an optional strict partial order among the pattern events, and
optional node/edge label predicates.  This is the query language of Song et
al.'s event pattern matching problem (Section 4.3–4.4 of the survey): two
pattern events left unordered may match graph events in either time order.

Patterns are matched either against a complete candidate event sequence
(:meth:`EventPattern.matches_sequence`) or incrementally over a stream
(:class:`repro.algorithms.streaming.StreamMatcher`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Callable, Mapping, Sequence

from repro.core.events import Event


@dataclass(frozen=True)
class PatternEvent:
    """One edge of an event pattern: source variable → target variable.

    ``edge_label`` restricts which graph events may bind here (compared via
    the pattern's ``edge_labeler``); ``None`` matches anything.
    """

    src: str
    dst: str
    edge_label: object | None = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("pattern events cannot be self-loops")


@dataclass
class EventPattern:
    """A Song-style event pattern.

    Parameters
    ----------
    events:
        The pattern events.  Their list order is *not* a time order —
        ordering comes exclusively from ``order``.
    order:
        Strict partial order as ``(i, j)`` pairs meaning pattern event ``i``
        must precede pattern event ``j`` in time.  Transitivity is closed
        automatically; cycles raise :class:`ValueError`.
    node_labels:
        Optional variable → required label map, checked through
        ``node_labeler``.
    edge_labeler / node_labeler:
        Callables extracting the label of a graph event / node.  Required
        only when label constraints are present.
    injective:
        Distinct variables must bind distinct nodes (default, the standard
        subgraph-matching semantics).
    """

    events: Sequence[PatternEvent]
    order: Sequence[tuple[int, int]] = ()
    node_labels: Mapping[str, object] = field(default_factory=dict)
    edge_labeler: Callable[[Event], object] | None = None
    node_labeler: Callable[[int], object] | None = None
    injective: bool = True

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a pattern needs at least one event")
        n = len(self.events)
        for i, j in self.order:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                raise ValueError(f"invalid order pair ({i}, {j})")
        self._closure = _transitive_closure(n, self.order)
        if any((i, i) in self._closure for i in range(n)):
            raise ValueError("partial order contains a cycle")
        self._predecessors: list[set[int]] = [
            {i for i in range(n) if (i, j) in self._closure} for j in range(n)
        ]

    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """All node variables, in first-appearance order."""
        seen: dict[str, None] = {}
        for pev in self.events:
            seen.setdefault(pev.src)
            seen.setdefault(pev.dst)
        return tuple(seen)

    def predecessors(self, index: int) -> set[int]:
        """Pattern events that must precede pattern event ``index``."""
        return set(self._predecessors[index])

    def is_total_order(self) -> bool:
        """Whether the partial order is in fact total."""
        n = len(self.events)
        return all(
            (i, j) in self._closure or (j, i) in self._closure
            for i in range(n)
            for j in range(i + 1, n)
        )

    # ------------------------------------------------------------------
    def binds(self, pattern_event: PatternEvent, event: Event, binding: dict) -> dict | None:
        """Try to bind a graph event to a pattern event under ``binding``.

        Returns the extended binding (a new dict) or ``None`` on conflict.
        """
        if pattern_event.edge_label is not None:
            if self.edge_labeler is None:
                raise ValueError("pattern has edge labels but no edge_labeler")
            if self.edge_labeler(event) != pattern_event.edge_label:
                return None
        new = dict(binding)
        for var, node in ((pattern_event.src, event.u), (pattern_event.dst, event.v)):
            bound = new.get(var)
            if bound is None:
                if self.injective and node in new.values():
                    return None
                wanted = self.node_labels.get(var)
                if wanted is not None:
                    if self.node_labeler is None:
                        raise ValueError("pattern has node labels but no node_labeler")
                    if self.node_labeler(node) != wanted:
                        return None
                new[var] = node
            elif bound != node:
                return None
        return new

    def matches_sequence(self, events: Sequence[Event]) -> bool:
        """Whether a chronologically ordered event sequence matches this pattern.

        Tries every assignment of the ``k`` events to the ``k`` pattern
        events that respects the partial order; fine for motif-sized ``k``.
        """
        if len(events) != len(self.events):
            return False
        n = len(events)
        for perm in permutations(range(n)):
            # perm[pos] = pattern index assigned to the pos-th (time-ordered)
            # graph event; the partial order must agree with time order.
            position = {perm[pos]: pos for pos in range(n)}
            if any(position[i] >= position[j] for i, j in self.order):
                continue
            binding: dict | None = {}
            for pos in range(n):
                binding = self.binds(self.events[perm[pos]], events[pos], binding)
                if binding is None:
                    break
            if binding is not None:
                return True
        return False


def _transitive_closure(n: int, pairs: Sequence[tuple[int, int]]) -> set[tuple[int, int]]:
    """Floyd–Warshall closure of a relation on ``range(n)``."""
    closure = set(pairs)
    changed = True
    while changed:
        changed = False
        for i, j in list(closure):
            for k, m in list(closure):
                if j == k and (i, m) not in closure:
                    closure.add((i, m))
                    changed = True
    return closure


def chain_pattern(length: int, *, total: bool = True) -> EventPattern:
    """A convey chain ``A→B, B→C, ...`` of ``length`` events.

    ``total=False`` leaves the events unordered (pure structural pattern).
    """
    letters = [chr(ord("A") + i) for i in range(length + 1)]
    events = [PatternEvent(letters[i], letters[i + 1]) for i in range(length)]
    order = tuple((i, i + 1) for i in range(length - 1)) if total else ()
    return EventPattern(events=events, order=order)


def square_pattern(*, total: bool = False) -> EventPattern:
    """The fraud-indicator square ``A→B, B→C, C→D, D→A`` (Section 4.1).

    Song et al. motivate non-induced squares in financial transaction
    streams; by default only the structural shape is constrained.
    """
    events = [
        PatternEvent("A", "B"),
        PatternEvent("B", "C"),
        PatternEvent("C", "D"),
        PatternEvent("D", "A"),
    ]
    order = tuple((i, i + 1) for i in range(3)) if total else ()
    return EventPattern(events=events, order=order)
