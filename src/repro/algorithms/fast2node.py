"""Fast exact counting of two-node temporal motifs (Paranjape et al.).

The survey's related-work section covers algorithmic improvements for
motif counting; the seminal one is Paranjape, Benson & Leskovec's
dynamic-programming counter for δ-temporal motifs.  Its two-node special
case is both the simplest and the most load-bearing in practice (message
networks are dominated by two-node conversations — Figure 6), and it is
implemented here exactly:

For each unordered node pair, the merged event stream reduces to a
*direction sequence* (0 = lo→hi, 1 = hi→lo).  A sliding window of length
ΔW maintains, for every direction tuple of length < k, the number of
ordered subsequences currently inside the window; when an event enters,
every length-(k−1) count extends to a completed motif whose span is ≤ ΔW
by construction.  The result is exact and runs in
``O(m · 2^k · k)`` per pair instead of enumerating instances.

Ties follow the library-wide total-order convention: same-timestamp
events never share a motif (equal-time groups are inserted atomically).
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Iterable

from repro.core.temporal_graph import TemporalGraph

DirTuple = tuple[int, ...]


def count_two_node_motifs(
    graph: TemporalGraph,
    n_events: int,
    delta_w: float,
    *,
    pairs: Iterable[tuple[int, int]] | None = None,
) -> Counter:
    """Count all two-node ``n_events``-event motifs within a ΔW window.

    Equivalent to the generic enumeration engine restricted to 2-node
    motifs under ``TimingConstraints.only_w(delta_w)`` (property-tested),
    but runs in near-linear time per node pair.

    Parameters
    ----------
    n_events:
        Motif size (2, 3, or 4 are the paper-relevant values; any ≥ 2
        works).
    delta_w:
        Window bounding first-to-last event of a motif.
    pairs:
        Restrict to specific unordered node pairs; ``None`` counts all.

    Returns
    -------
    Counter keyed by canonical motif code (e.g. ``010101``, ``011010``).
    """
    if n_events < 2:
        raise ValueError("two-node motifs need at least two events")
    if delta_w <= 0:
        raise ValueError("delta_w must be positive")

    streams = _pair_streams(graph, pairs)
    totals: Counter = Counter()
    for (_lo, _hi), stream in streams.items():
        for dirs, count in _count_direction_motifs(stream, n_events, delta_w).items():
            if count:
                totals[_dirs_to_code(dirs)] += count
    return totals


def _pair_streams(
    graph: TemporalGraph, pairs: Iterable[tuple[int, int]] | None
) -> dict[tuple[int, int], list[tuple[float, int]]]:
    """Per unordered pair: time-sorted ``(t, direction)`` streams."""
    wanted = None
    if pairs is not None:
        wanted = {(min(u, v), max(u, v)) for u, v in pairs}
    streams: dict[tuple[int, int], list[tuple[float, int]]] = defaultdict(list)
    # Read through the storage facade: columnar backends stream (u, v, t)
    # straight from their flat columns, list backends unpack event records.
    for u, v, t in graph.storage.iter_uvt():
        lo, hi = (u, v) if u < v else (v, u)
        if wanted is not None and (lo, hi) not in wanted:
            continue
        direction = 0 if u == lo else 1
        streams[(lo, hi)].append((t, direction))
    for stream in streams.values():
        stream.sort()
    return streams


def _count_direction_motifs(
    stream: list[tuple[float, int]], k: int, delta_w: float
) -> Counter:
    """The sliding-window DP over one pair's direction sequence.

    ``counts[l][tuple]`` is the number of ordered l-subsequences with that
    direction tuple currently inside the window (l < k); completed
    k-tuples accumulate in the result.  Equal-timestamp events are
    inserted as one atomic group so they never pair with each other.
    """
    window: deque[tuple[float, int]] = deque()
    counts: list[Counter] = [Counter() for _ in range(k)]  # index l-1 = length l
    completed: Counter = Counter()

    i = 0
    n = len(stream)
    while i < n:
        # the equal-timestamp group [i, j)
        j = i
        t = stream[i][0]
        while j < n and stream[j][0] == t:
            j += 1

        # expire events outside the window of the incoming group
        while window and window[0][0] < t - delta_w:
            _remove_oldest_group(window, counts, k)

        # complete motifs ending at each group member, then insert the whole
        # group against the *pre-group* counts so equal-timestamp events
        # never extend one another
        group_dirs = [d for (_t, d) in stream[i:j]]
        for d in group_dirs:
            for prefix, count in counts[k - 2].items():
                completed[prefix + (d,)] += count
        pre = [Counter(c) for c in counts[: k - 1]]
        for d in group_dirs:
            for length in range(2, k):
                lower = pre[length - 2]
                upper = counts[length - 1]
                for prefix, count in lower.items():
                    upper[prefix + (d,)] += count
            counts[0][(d,)] += 1
            window.append((t, d))
        i = j
    return completed


def _remove_oldest_group(window: deque, counts: list[Counter], k: int) -> None:
    """Remove the leftmost equal-time group and its subsequences.

    Events of a group share a timestamp, so they expire together and —
    because ties never pair — every subsequence starting with a group
    member continues into *strictly later* events only.  Updating lengths
    in increasing order makes ``counts[l−1]`` post-removal exactly when
    length ``l`` needs it.
    """
    t0 = window[0][0]
    group: list[int] = []
    while window and window[0][0] == t0:
        group.append(window.popleft()[1])
    for d in group:
        counts[0][(d,)] -= 1
    for length in range(2, k):
        lower = counts[length - 2]
        upper = counts[length - 1]
        for d in group:
            for suffix, count in list(lower.items()):
                if count:
                    upper[(d,) + suffix] -= count


def _dirs_to_code(dirs: DirTuple) -> str:
    """Canonical code of a two-node direction tuple.

    The first event's source becomes node 0, so direction equality with
    the first event maps to pair ``01`` and inversion to ``10``.
    """
    first = dirs[0]
    return "".join("01" if d == first else "10" for d in dirs)


def two_node_codes(n_events: int) -> tuple[str, ...]:
    """All canonical two-node codes with ``n_events`` events (2^(k−1))."""
    from itertools import product

    codes = {
        _dirs_to_code((0,) + tail)
        for tail in product((0, 1), repeat=n_events - 1)
    }
    return tuple(sorted(codes))
