"""Temporal cycle enumeration (the Kumar–Calders 2SCENT lineage).

The survey's related work (Section 3, "Algorithmic improvements") covers
efficient enumeration of *simple temporal cycles*: event sequences
``u0 → u1 → ... → uk = u0`` with strictly increasing timestamps, all
intermediate nodes distinct, and the whole cycle inside a ΔW window.
Temporal cycles are the classic fraud indicator in transaction networks
(money returning to its origin), which is also the application Song et al.
motivate non-induced motifs with.

:func:`enumerate_temporal_cycles` is a Johnson-inspired DFS that follows
*convey* steps (source of the next event = target of the previous) with
time-window pruning via the storage engine's per-node window queries.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.temporal_graph import TemporalGraph

Cycle = tuple[int, ...]


def enumerate_temporal_cycles(
    graph: TemporalGraph,
    delta_w: float,
    *,
    min_length: int = 2,
    max_length: int = 6,
    max_cycles: int | None = None,
) -> Iterator[Cycle]:
    """Yield simple temporal cycles as tuples of event indices.

    Parameters
    ----------
    delta_w:
        Window bounding the whole cycle (first to last event).
    min_length / max_length:
        Cycle lengths (number of events) to report.  Length 2 is the
        ping-pong cycle ``u→v, v→u``.
    max_cycles:
        Optional cap on the number of cycles yielded.

    Notes
    -----
    Each cycle is reported once, rooted at its earliest event.  Timestamps
    must be strictly increasing along the cycle, so same-second flurries
    never form a cycle — consistent with the library-wide total-ordering
    convention.
    """
    if delta_w <= 0:
        raise ValueError("delta_w must be positive")
    if min_length < 2:
        raise ValueError("a temporal cycle needs at least two events")
    events = graph.events
    yielded = 0
    for root in range(len(events)):
        origin = events[root].u
        stack: list[tuple[list[int], int, tuple[int, ...]]] = [
            ([root], events[root].v, (events[root].u, events[root].v))
        ]
        while stack:
            seq, frontier, visited = stack.pop()
            last_t = graph.times[seq[-1]]
            deadline = graph.times[root] + delta_w
            for idx in _outgoing_after(graph, frontier, last_t, deadline):
                ev = events[idx]
                if ev.v == origin:
                    length = len(seq) + 1
                    if min_length <= length <= max_length:
                        yield tuple(seq) + (idx,)
                        yielded += 1
                        if max_cycles is not None and yielded >= max_cycles:
                            return
                    continue
                if ev.v in visited:
                    continue  # simple cycles only
                if len(seq) + 1 >= max_length:
                    continue
                stack.append((seq + [idx], ev.v, visited + (ev.v,)))


def _outgoing_after(
    graph: TemporalGraph, node: int, t_after: float, deadline: float
) -> list[int]:
    """Indices of events *from* ``node`` with ``t_after < t <= deadline``."""
    events = graph.events
    return [
        idx
        for idx in graph.storage.node_events_between(node, t_after, deadline)
        if events[idx].u == node
    ]


def count_cycles_by_length(
    graph: TemporalGraph,
    delta_w: float,
    *,
    min_length: int = 2,
    max_length: int = 6,
) -> dict[int, int]:
    """Histogram of temporal cycle counts per length."""
    counts: dict[int, int] = {}
    for cycle in enumerate_temporal_cycles(
        graph, delta_w, min_length=min_length, max_length=max_length
    ):
        counts[len(cycle)] = counts.get(len(cycle), 0) + 1
    return counts


def cycle_nodes(graph: TemporalGraph, cycle: Sequence[int]) -> list[int]:
    """The node tour of a cycle: ``[u0, u1, ..., uk-1]`` with ``uk = u0``."""
    return [graph.events[idx].u for idx in cycle]
