"""Motif enumeration, restriction checking, counting, and related algorithms.

* :mod:`repro.algorithms.enumeration` — the connected-growth DFS engine,
* :mod:`repro.algorithms.restrictions` — consecutive-events restriction,
  constrained dynamic graphlets, static inducedness,
* :mod:`repro.algorithms.counting` — per-code counters and the one-pass
  :class:`~repro.algorithms.counting.MotifCensus`,
* :mod:`repro.algorithms.pattern` / :mod:`repro.algorithms.streaming` —
  Song-style event-pattern matching over graph streams,
* :mod:`repro.algorithms.cycles` — temporal cycle enumeration,
* :mod:`repro.algorithms.sampling` — interval-sampling approximate counting.
"""

from repro.algorithms.counting import (
    MotifCensus,
    count_event_pairs,
    count_motifs,
    run_census,
)
from repro.algorithms.enumeration import enumerate_instances, instance_code
from repro.algorithms.restrictions import (
    is_static_induced,
    satisfies_cdg,
    satisfies_consecutive_events,
)

__all__ = [
    "MotifCensus",
    "count_event_pairs",
    "count_motifs",
    "enumerate_instances",
    "instance_code",
    "is_static_induced",
    "run_census",
    "satisfies_cdg",
    "satisfies_consecutive_events",
]
