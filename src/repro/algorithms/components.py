"""Maximal temporal components (Kovanen et al.'s E_max construction).

Kovanen et al.'s mining algorithm first groups events into **maximal
connected temporal subgraphs**: two events are *ΔC-adjacent* when they
share a node and are consecutive among that node's events with a gap of at
most ΔC; maximal components of this adjacency relation partition the event
set, and every motif the algorithm reports is carved out of one component.

This module provides that substrate: the partition itself
(:func:`temporal_components`), its coarsening behavior in ΔC
(property-tested: growing ΔC only merges components), and component-level
summaries used to reason about burst structure.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.core.temporal_graph import TemporalGraph


class _UnionFind:
    """Array-based union-find with path halving."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra = self.find(a)
        rb = self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def temporal_components(graph: TemporalGraph, delta_c: float) -> list[list[int]]:
    """Partition event indices into maximal ΔC-adjacency components.

    Two events are joined when they are consecutive on some shared node's
    timeline and at most ``delta_c`` apart.  Components are returned as
    time-sorted index lists, ordered by their first event.
    """
    if delta_c <= 0:
        raise ValueError("delta_c must be positive")
    uf = _UnionFind(len(graph.events))
    for node, idxs in graph.node_events.items():
        times = graph.node_times[node]
        for pos in range(len(idxs) - 1):
            if times[pos + 1] - times[pos] <= delta_c:
                uf.union(idxs[pos], idxs[pos + 1])
    groups: dict[int, list[int]] = defaultdict(list)
    for idx in range(len(graph.events)):
        groups[uf.find(idx)].append(idx)
    components = [sorted(members) for members in groups.values()]
    components.sort(key=lambda comp: comp[0])
    return components


def component_of(graph: TemporalGraph, delta_c: float) -> dict[int, int]:
    """Event index → component id (ids follow component order)."""
    mapping: dict[int, int] = {}
    for cid, comp in enumerate(temporal_components(graph, delta_c)):
        for idx in comp:
            mapping[idx] = cid
    return mapping


def component_subgraphs(
    graph: TemporalGraph, delta_c: float, *, min_events: int = 1
) -> Iterator[TemporalGraph]:
    """Each component as its own temporal graph (for per-burst analysis)."""
    for comp in temporal_components(graph, delta_c):
        if len(comp) >= min_events:
            yield TemporalGraph(
                [graph.events[i] for i in comp], name=graph.name
            )


def component_size_distribution(
    graph: TemporalGraph, delta_c: float
) -> dict[int, int]:
    """Histogram of component sizes — the burst-size spectrum.

    Bursty networks show a heavy tail here; a Poissonized null (timestamp
    permutation) collapses it, which is the mechanism behind the paper's
    "loose null models flag everything" observation.
    """
    histogram: dict[int, int] = defaultdict(int)
    for comp in temporal_components(graph, delta_c):
        histogram[len(comp)] += 1
    return dict(histogram)


def largest_component_fraction(graph: TemporalGraph, delta_c: float) -> float:
    """Fraction of events inside the largest component (0.0 when empty).

    As ΔC grows past the typical inter-event time this jumps toward 1 —
    the percolation-style transition that makes ΔC selection meaningful
    (Section 4.5's "any ΔW larger than (m−1)·ΔC is meaningless" argument
    presumes ΔC below this transition).
    """
    if not graph.events:
        return 0.0
    components = temporal_components(graph, delta_c)
    return max(len(c) for c in components) / len(graph.events)
