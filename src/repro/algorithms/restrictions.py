"""The temporal-inducedness restrictions evaluated in Section 5.1.

Three restriction predicates, each a filter over enumerated instances:

* :func:`satisfies_consecutive_events` — Kovanen et al.'s node-based
  temporal inducedness: while a node is engaged in a motif, it must not
  touch any event outside the motif (Section 4.1, "consecutive events
  restriction").
* :func:`satisfies_cdg` — Hulovatyy et al.'s *constrained dynamic graphlet*
  rule: a consecutive event on a different edge must be the first event on
  that edge since its predecessor (filters "stale" repeated information).
* :func:`is_static_induced` — static inducedness (Hulovatyy / Paranjape):
  every static edge among the motif's nodes (within the motif's window, or
  globally) must appear among the motif's edges.

All predicates take ``(graph, instance)`` so they can be passed directly as
the ``predicate`` of :func:`repro.algorithms.enumeration.enumerate_instances`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.core.temporal_graph import TemporalGraph

Instance = Sequence[int]


def satisfies_consecutive_events(graph: TemporalGraph, instance: Instance) -> bool:
    """Kovanen's consecutive-events restriction (node-based temporal inducedness).

    For every node of the motif, the graph events touching that node inside
    the closed interval spanned by the node's motif events must be exactly
    the node's motif events.  Example from Section 4.1: with motif events
    ``(u,v,5), (v,w,8), (u,v,12)``, no other event may touch ``u`` in
    ``[5, 12]`` nor ``v`` in ``[5, 12]`` nor ``w`` in ``[8, 8]``.

    Events at exactly the boundary timestamps count as interruptions — a
    node emitting a second contact in the same second it joins the motif is
    engaged elsewhere.
    """
    per_node: dict[int, list[float]] = defaultdict(list)
    for idx in instance:
        ev = graph.events[idx]
        t = graph.times[idx]
        per_node[ev.u].append(t)
        per_node[ev.v].append(t)
    for node, stamps in per_node.items():
        t_lo = min(stamps)
        t_hi = max(stamps)
        if graph.count_node_events_in(node, t_lo, t_hi) != len(stamps):
            return False
    return True


# Only consults events inside the instance's closed time window, which a
# time shard always contains -> safe for the sharded parallel engine.
satisfies_consecutive_events.shard_safe = True
# A graph event at *exactly* a boundary timestamp counts as an
# interruption, so on a stream with timestamp ties a same-tick arrival
# after discovery can flip a committed verdict -> the online engines
# warn when such a tie actually occurs.
satisfies_consecutive_events.tick_boundary_sensitive = True


def satisfies_cdg(graph: TemporalGraph, instance: Instance) -> bool:
    """Hulovatyy's constrained dynamic graphlet restriction.

    For consecutive motif events ``(u1,v1,t1)`` and ``(u2,v2,t2)`` on
    *different* edges, there must be no graph event on edge ``(u2,v2)``
    within ``[t1, t2]`` other than the motif event itself — i.e. the second
    event is the first occurrence of its edge since the first event fired.
    Repetitions (same edge twice) are exempt, matching the formal statement
    in Section 4.1 ("where u1,v1 ≠ u2,v2").
    """
    for a, b in zip(instance, instance[1:]):
        ev_a = graph.events[a]
        ev_b = graph.events[b]
        if ev_a.edge == ev_b.edge:
            continue
        t_a = graph.times[a]
        t_b = graph.times[b]
        if graph.count_edge_events_in(ev_b.edge, t_a, t_b) != 1:
            return False
    return True


# Window-local for the same reason as the consecutive-events check.
satisfies_cdg.shard_safe = True
# Counts edge events in the closed [t1, t2] interval -> same boundary-tie
# instability online as the consecutive-events check.
satisfies_cdg.tick_boundary_sensitive = True


def is_static_induced(
    graph: TemporalGraph,
    instance: Instance,
    *,
    scope: str = "window",
) -> bool:
    """Static inducedness: motif edges must cover all edges among its nodes.

    Section 4.1's Hulovatyy example — events ``(a,b,2), (b,c,4), (c,a,5),
    (c,a,6)`` where the triangle of the 1st, 2nd and 4th events is valid
    because the skipped 3rd event lies on an edge the motif *does* use —
    shows that inducedness is about edge coverage, not event coverage.

    Parameters
    ----------
    scope:
        ``"window"`` (default) considers graph events among the motif's
        nodes whose timestamps fall inside the motif's closed time window;
        ``"global"`` considers the whole static projection.  The window
        scope matches how induced motifs are judged instance-by-instance
        (Figure 1); the global scope matches static graphlet semantics.
    """
    if scope not in ("window", "global"):
        raise ValueError(f"unknown inducedness scope {scope!r}")
    nodes: set[int] = set()
    motif_edges: set[tuple[int, int]] = set()
    for idx in instance:
        ev = graph.events[idx]
        nodes.add(ev.u)
        nodes.add(ev.v)
        motif_edges.add(ev.edge)
    if scope == "global":
        return graph.induced_static_edges(nodes) <= motif_edges
    t_lo = graph.times[instance[0]]
    t_hi = graph.times[instance[-1]]
    for node in nodes:
        for idx in graph.node_events_in(node, t_lo, t_hi):
            ev = graph.events[idx]
            if ev.u in nodes and ev.v in nodes and ev.edge not in motif_edges:
                return False
    return True


# The window scope judges events at the motif's boundary timestamps, so a
# same-tick arrival can flip a verdict online, as above.  (The global
# scope is not window-local at all and is unsuitable online regardless.)
is_static_induced.tick_boundary_sensitive = True


def combine(*predicates):
    """AND-combine restriction predicates into a single enumerator filter.

    The combined predicate is shard-safe for the parallel engine exactly
    when every component is (see
    :func:`repro.parallel.mark_shard_safe`).
    """

    def combined(graph: TemporalGraph, instance: Instance) -> bool:
        return all(pred(graph, instance) for pred in predicates)

    combined.shard_safe = all(
        getattr(pred, "shard_safe", False) for pred in predicates
    )
    # One tie-unstable component makes the conjunction tie-unstable.
    combined.tick_boundary_sensitive = any(
        getattr(pred, "tick_boundary_sensitive", False) for pred in predicates
    )
    return combined
