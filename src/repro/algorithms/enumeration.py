"""The core temporal-motif instance enumerator.

An *instance* is a chronologically ordered tuple of event indices
``(i1 < i2 < ... < ik)`` into a :class:`~repro.core.temporal_graph.TemporalGraph`
such that

* the events grow as a single component (every event after the first shares
  a node with the union of nodes seen so far — the paper's motif shape rule),
* timestamps are strictly increasing (total ordering; the paper's evaluation
  assumes a total order, so same-timestamp events never share a motif), and
* the :class:`~repro.core.constraints.TimingConstraints` are satisfied:
  consecutive gaps ≤ ΔC and whole span ≤ ΔW, whichever are set.

Since the engine PR this module is a thin driver over the unified
execution engine (:mod:`repro.engine`): :func:`enumerate_instances`
compiles — or fetches from the session cache — an
:class:`~repro.engine.plan.ExecutionPlan` (the once-per-run resolution
of the chained deadlines, the node cap and the backend's kernel
capability) and streams :func:`repro.engine.run_plan`, which grows
root-block frontiers through the backend's
:class:`~repro.engine.kernels.ExtensionKernel`.  The generic kernel
unions per-node
:meth:`~repro.storage.base.GraphStorage.node_events_between` bisections
via :meth:`~repro.storage.base.GraphStorage.adjacent_events_between`
(the original per-event path); the ``"numpy"`` backend's kernel extends
whole batches of partial instances with a constant number of
``searchsorted`` probes per frontier level.  The yield order is
bit-identical to the historical recursive DFS (see
:mod:`repro.engine.driver` for the equivalence argument).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.constraints import TimingConstraints
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph
from repro.engine import ExecutionPlan, compile_plan, run_plan

Instance = tuple[int, ...]


def enumerate_instances(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    predicate: Callable[[TemporalGraph, Instance], bool] | None = None,
    max_instances: int | None = None,
    roots: Sequence[int] | None = None,
    jobs: int | None = None,
    plan: ExecutionPlan | None = None,
) -> Iterator[Instance]:
    """Yield all motif instances of ``n_events`` events in ``graph``.

    Parameters
    ----------
    graph:
        The temporal network to search.
    n_events:
        Number of events per instance (the paper uses 3 and 4).
    constraints:
        ΔC / ΔW bounds.  At least one should be finite or the search space
        explodes; an unconstrained call is permitted but discouraged.
    max_nodes:
        Upper bound on the number of distinct nodes in an instance (e.g. 3
        for the paper's 2n/3n three-event motifs).  ``None`` allows up to
        ``n_events + 1`` nodes.
    predicate:
        Optional filter applied to each *complete* instance (model
        restrictions plug in here).
    max_instances:
        Optional hard cap on the number of instances yielded; used by
        sampling estimators and runaway protection in exploratory runs.
    roots:
        Restrict the search to instances whose *first* event index is in
        this collection (every instance has exactly one root, so sampling
        roots yields an unbiased sampled census).
    jobs:
        Worker processes for a sharded search (``<= 0`` = one per CPU).
        The parallel path buffers per-shard results and yields them in
        the exact serial order, so it trades the generator's laziness
        for throughput — which is why it requires an *explicit* opt-in:
        ``jobs=None`` (the default) always streams serially here, and
        the session default / ``REPRO_JOBS`` are honored only by the
        counting entry points, not by this generator.  A ``jobs`` value
        is also ignored when ``roots`` or ``max_instances`` is given
        (both are inherently sequential contracts).
    plan:
        A precompiled :class:`~repro.engine.plan.ExecutionPlan` to run
        instead of compiling one from the arguments (advanced: the
        parallel engine ships plans to shard workers; benchmarks force
        specific kernels).  When given, the plan's own ``predicate``
        and node cap win over the ``predicate`` / ``max_nodes``
        arguments, which must describe the same configuration.

    Yields
    ------
    Tuples of event indices in chronological order.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    if jobs is not None and roots is None and max_instances is None:
        from repro.parallel.executor import resolve_jobs

        if resolve_jobs(jobs) > 1:
            from repro.parallel import parallel_enumerate

            yield from parallel_enumerate(
                graph,
                n_events,
                constraints,
                jobs=jobs,
                max_nodes=max_nodes,
                predicate=predicate,
                plan=plan,
            )
            return
    if plan is None:
        plan = compile_plan(
            n_events,
            constraints,
            predicate,
            graph.storage,
            max_nodes=max_nodes,
        )
    yield from run_plan(plan, graph, roots=roots, max_instances=max_instances)


def instance_code(graph: TemporalGraph, instance: Instance) -> str:
    """The canonical motif code of an instance (chronological digit notation)."""
    return canonical_code([graph.events[i].edge for i in instance])


def instance_times(graph: TemporalGraph, instance: Instance) -> tuple[float, ...]:
    """Timestamps of an instance's events, in order."""
    return tuple(graph.times[i] for i in instance)


def instance_nodes(graph: TemporalGraph, instance: Instance) -> set[int]:
    """Distinct nodes touched by an instance."""
    nodes: set[int] = set()
    for i in instance:
        ev = graph.events[i]
        nodes.add(ev.u)
        nodes.add(ev.v)
    return nodes


def instance_timespan(graph: TemporalGraph, instance: Instance) -> float:
    """Last-minus-first timestamp of an instance."""
    return graph.times[instance[-1]] - graph.times[instance[0]]


def is_instance(
    graph: TemporalGraph,
    instance: Sequence[int],
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
) -> bool:
    """Validate an arbitrary index tuple against the instance definition.

    Used by tests as a brute-force oracle and by the model classes to judge
    externally supplied candidate motifs (Figure 1 style).
    """
    if not instance:
        return False
    times = [graph.times[i] for i in instance]
    if any(b <= a for a, b in zip(times, times[1:])):
        return False
    if not constraints.admits(times):
        return False
    pairs = [graph.events[i].edge for i in instance]
    seen = {pairs[0][0], pairs[0][1]}
    for u, v in pairs[1:]:
        if u not in seen and v not in seen:
            return False
        seen.add(u)
        seen.add(v)
    if max_nodes is not None and len(seen) > max_nodes:
        return False
    return True
