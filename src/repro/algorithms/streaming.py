"""Streaming event-pattern matching (the Song et al. substrate).

Song et al. pose event pattern matching for *real-time graph streams*:
matches must be reported on the fly as events arrive, with all events of a
match inside a ΔW window.  :class:`StreamMatcher` implements the standard
incremental-join strategy from complex event processing:

* every arriving event may extend any live partial match at a pattern
  position whose partial-order predecessors are already matched,
* partial matches older than ΔW (first bound event to now) are expired,
* completed matches are emitted immediately.

The matcher is deliberately oblivious to how events are produced — feed it
from a :class:`~repro.core.temporal_graph.TemporalGraph` via
:func:`match_graph`, push events one at a time via
:meth:`StreamMatcher.push`, or co-maintain a *live, growing* graph with
:func:`match_live`, which appends each arriving event to the graph's
storage engine (stable indices, non-decreasing time) and matches it in the
same pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import repro.obs as _obs
from repro.algorithms.pattern import EventPattern
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class Match:
    """A completed pattern match.

    ``events`` are in *time* order; ``assignment`` maps each position of
    ``events`` to the pattern-event index it bound; ``binding`` maps node
    variables to graph nodes.
    """

    events: tuple[Event, ...]
    assignment: tuple[int, ...]
    binding: dict

    @property
    def t_first(self) -> float:
        return self.events[0].t

    @property
    def t_last(self) -> float:
        return self.events[-1].t

    @property
    def timespan(self) -> float:
        return self.t_last - self.t_first


@dataclass
class _Partial:
    events: tuple[Event, ...]
    assignment: tuple[int, ...]
    matched: frozenset
    binding: dict
    t_first: float


class StreamMatcher:
    """Incremental matcher for one :class:`EventPattern` with a ΔW window.

    Parameters
    ----------
    pattern:
        The event pattern to match.
    delta_w:
        Window bounding a whole match, first bound event to last.
    max_partials:
        Safety valve: when the number of live partial matches exceeds this,
        the oldest are dropped (a standard CEP load-shedding policy) and
        counted in :attr:`shed`.  The default is generous enough for the
        library's workloads; ``None`` disables shedding.
    """

    def __init__(
        self,
        pattern: EventPattern,
        delta_w: float,
        *,
        max_partials: int | None = 1_000_000,
    ) -> None:
        if delta_w <= 0:
            raise ValueError("delta_w must be positive")
        self.pattern = pattern
        self.delta_w = delta_w
        self.max_partials = max_partials
        self._partials: list[_Partial] = []
        self._emitted = 0
        self._shed = 0

    @property
    def live_partials(self) -> int:
        """Number of partial matches currently alive."""
        return len(self._partials)

    @property
    def emitted(self) -> int:
        """Total matches emitted so far."""
        return self._emitted

    @property
    def shed(self) -> int:
        """Partial matches dropped by the ``max_partials`` load-shedding valve.

        A non-zero value means results are *lossy*: matches whose prefix
        was shed are silently missed, so monitor this counter whenever the
        valve is enabled on real workloads.
        """
        return self._shed

    def push(self, event: Event) -> list[Match]:
        """Feed one event (non-decreasing timestamps); return new matches."""
        self._expire(event.t)
        pattern = self.pattern
        n = len(pattern.events)
        out: list[Match] = []
        new_partials: list[_Partial] = []

        candidates = list(self._partials)
        candidates.append(
            _Partial(
                events=(),
                assignment=(),
                matched=frozenset(),
                binding={},
                t_first=event.t,
            )
        )
        for part in candidates:
            for pidx in range(n):
                if pidx in part.matched:
                    continue
                if not pattern.predecessors(pidx) <= part.matched:
                    continue
                binding = pattern.binds(pattern.events[pidx], event, part.binding)
                if binding is None:
                    continue
                t_first = part.events[0].t if part.events else event.t
                if event.t - t_first > self.delta_w:
                    continue
                events = part.events + (event,)
                assignment = part.assignment + (pidx,)
                matched = part.matched | {pidx}
                if len(matched) == n:
                    out.append(Match(events=events, assignment=assignment, binding=binding))
                else:
                    new_partials.append(
                        _Partial(
                            events=events,
                            assignment=assignment,
                            matched=matched,
                            binding=binding,
                            t_first=t_first,
                        )
                    )
        self._partials.extend(new_partials)
        if self.max_partials is not None and len(self._partials) > self.max_partials:
            dropped = len(self._partials) - self.max_partials
            self._shed += dropped
            self._partials = self._partials[-self.max_partials:]
            rec = _obs.ACTIVE
            if rec is not None:
                rec.inc("streaming.matcher.shed", dropped)
        self._emitted += len(out)
        return out

    def _expire(self, now: float) -> None:
        """Drop partial matches that can no longer complete within ΔW.

        The window is closed — a match whose timespan is *exactly* ΔW is
        valid (:attr:`Match.timespan` semantics, and the inclusive gap
        comparisons everywhere else in the library) — so a partial
        survives while ``now - t_first <= ΔW``.  This is deliberately the
        same subtraction :meth:`push` uses to admit an extension: the
        rearranged form ``t_first >= now - ΔW`` rounds differently and
        can expire a partial that an arrival at the window edge would
        still legally complete (the boundary rule the shard planner in
        :mod:`repro.parallel.shards` guards with its overlap slack).
        """
        self._partials = [p for p in self._partials if now - p.t_first <= self.delta_w]

    def drain(self, events: Iterable[Event]) -> Iterator[Match]:
        """Push a whole (time-sorted) event stream, yielding matches lazily."""
        for event in events:
            yield from self.push(event)


def match_graph(
    graph: TemporalGraph, pattern: EventPattern, delta_w: float
) -> list[Match]:
    """All matches of ``pattern`` in a temporal graph, via the stream path."""
    matcher = StreamMatcher(pattern, delta_w)
    return list(matcher.drain(graph.events))


def match_live(
    graph: TemporalGraph,
    pattern: EventPattern | StreamMatcher,
    delta_w: float | None = None,
    events: Iterable[Event] = (),
) -> Iterator[tuple[int, list[Match]]]:
    """Feed a live stream into a *growing* graph and match in the same pass.

    Each arriving event is appended to ``graph``'s storage engine (which
    keeps every previously issued event index stable) and then pushed
    through the matcher, so downstream consumers can resolve a match's
    events against the graph the moment it is emitted — use
    :meth:`TemporalGraph.event_at` for O(1) per-arrival resolution rather
    than re-snapshotting ``graph.events`` each push.  Yields
    ``(event_index, matches)`` per arrival — ``matches`` is often empty.

    Parameters
    ----------
    graph:
        The graph to grow.  May already hold history; incoming events must
        not predate its last event (the storage append contract).
    pattern:
        An :class:`~repro.algorithms.pattern.EventPattern` (a fresh
        matcher is created; ``delta_w`` required) or a ready
        :class:`StreamMatcher` — pass the latter to resume a session or to
        configure load shedding.
    events:
        The arriving stream, in non-decreasing time order.
    """
    if isinstance(pattern, StreamMatcher):
        matcher = pattern
        if delta_w is not None and delta_w != matcher.delta_w:
            raise ValueError(
                f"conflicting delta_w: the matcher was built with "
                f"{matcher.delta_w}, got {delta_w} (pass one or the other)"
            )
    else:
        if delta_w is None:
            raise ValueError("delta_w is required when passing a bare pattern")
        matcher = StreamMatcher(pattern, delta_w)
    for event in events:
        ev = event if isinstance(event, Event) else Event(*event)
        idx = graph.append(ev)
        yield idx, matcher.push(ev)
