"""Streaming event-pattern matching (the Song et al. substrate).

Song et al. pose event pattern matching for *real-time graph streams*:
matches must be reported on the fly as events arrive, with all events of a
match inside a ΔW window.  :class:`StreamMatcher` implements the standard
incremental-join strategy from complex event processing:

* every arriving event may extend any live partial match at a pattern
  position whose partial-order predecessors are already matched,
* partial matches older than ΔW (first bound event to now) are expired,
* completed matches are emitted immediately.

The matcher is deliberately oblivious to how events are produced — feed it
from a :class:`~repro.core.temporal_graph.TemporalGraph` via
:func:`match_graph` or push events one at a time via
:meth:`StreamMatcher.push`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.algorithms.pattern import EventPattern
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class Match:
    """A completed pattern match.

    ``events`` are in *time* order; ``assignment`` maps each position of
    ``events`` to the pattern-event index it bound; ``binding`` maps node
    variables to graph nodes.
    """

    events: tuple[Event, ...]
    assignment: tuple[int, ...]
    binding: dict

    @property
    def t_first(self) -> float:
        return self.events[0].t

    @property
    def t_last(self) -> float:
        return self.events[-1].t

    @property
    def timespan(self) -> float:
        return self.t_last - self.t_first


@dataclass
class _Partial:
    events: tuple[Event, ...]
    assignment: tuple[int, ...]
    matched: frozenset
    binding: dict
    t_first: float


class StreamMatcher:
    """Incremental matcher for one :class:`EventPattern` with a ΔW window.

    Parameters
    ----------
    pattern:
        The event pattern to match.
    delta_w:
        Window bounding a whole match, first bound event to last.
    max_partials:
        Safety valve: when the number of live partial matches exceeds this,
        the oldest are dropped (a standard CEP load-shedding policy).  The
        default is generous enough for the library's workloads; ``None``
        disables shedding.
    """

    def __init__(
        self,
        pattern: EventPattern,
        delta_w: float,
        *,
        max_partials: int | None = 1_000_000,
    ) -> None:
        if delta_w <= 0:
            raise ValueError("delta_w must be positive")
        self.pattern = pattern
        self.delta_w = delta_w
        self.max_partials = max_partials
        self._partials: list[_Partial] = []
        self._emitted = 0

    @property
    def live_partials(self) -> int:
        """Number of partial matches currently alive."""
        return len(self._partials)

    @property
    def emitted(self) -> int:
        """Total matches emitted so far."""
        return self._emitted

    def push(self, event: Event) -> list[Match]:
        """Feed one event (non-decreasing timestamps); return new matches."""
        self._expire(event.t)
        pattern = self.pattern
        n = len(pattern.events)
        out: list[Match] = []
        new_partials: list[_Partial] = []

        candidates = list(self._partials)
        candidates.append(
            _Partial(
                events=(), assignment=(), matched=frozenset(), binding={},
                t_first=event.t,
            )
        )
        for part in candidates:
            for pidx in range(n):
                if pidx in part.matched:
                    continue
                if not pattern.predecessors(pidx) <= part.matched:
                    continue
                binding = pattern.binds(pattern.events[pidx], event, part.binding)
                if binding is None:
                    continue
                t_first = part.events[0].t if part.events else event.t
                if event.t - t_first > self.delta_w:
                    continue
                events = part.events + (event,)
                assignment = part.assignment + (pidx,)
                matched = part.matched | {pidx}
                if len(matched) == n:
                    out.append(Match(events=events, assignment=assignment, binding=binding))
                else:
                    new_partials.append(
                        _Partial(
                            events=events,
                            assignment=assignment,
                            matched=matched,
                            binding=binding,
                            t_first=t_first,
                        )
                    )
        self._partials.extend(new_partials)
        if self.max_partials is not None and len(self._partials) > self.max_partials:
            self._partials = self._partials[-self.max_partials:]
        self._emitted += len(out)
        return out

    def _expire(self, now: float) -> None:
        """Drop partial matches that can no longer complete within ΔW."""
        horizon = now - self.delta_w
        self._partials = [p for p in self._partials if p.t_first >= horizon]

    def drain(self, events: Iterable[Event]) -> Iterator[Match]:
        """Push a whole (time-sorted) event stream, yielding matches lazily."""
        for event in events:
            yield from self.push(event)


def match_graph(
    graph: TemporalGraph, pattern: EventPattern, delta_w: float
) -> list[Match]:
    """All matches of ``pattern`` in a temporal graph, via the stream path."""
    matcher = StreamMatcher(pattern, delta_w)
    return list(matcher.drain(graph.events))
