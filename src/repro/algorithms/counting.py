"""Counting APIs: per-code counters and the one-pass motif census.

Most experiments in the paper need several summaries of the same instance
set (counts per motif code, event-pair counts, pair-sequence matrices,
timespans, intermediate-event positions).  :class:`MotifCensus` collects
all of them in a single enumeration pass so each experiment costs one scan.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.algorithms import batched
from repro.algorithms.enumeration import Instance, enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.eventpairs import CW_GROUP, RPIO_GROUP, classify_pair
from repro.core.notation import canonical_code
from repro.core.temporal_graph import TemporalGraph
from repro.engine import ExecutionPlan, compile_plan, run_plan_blocks

Predicate = Callable[[TemporalGraph, Instance], bool]

#: Default cap on per-code sample lists (timespans, positions) to bound memory.
DEFAULT_SAMPLE_CAP = 200_000


def _parallel_jobs(jobs: int | None) -> int:
    """Resolve the effective worker count (argument > session default > env)."""
    from repro.parallel.executor import resolve_jobs

    return resolve_jobs(jobs)


def _route_sharded(graph: TemporalGraph, jobs: int | None, roots_sorted: bool) -> bool:
    """Whether a counting call goes through the sharded engine.

    Two triggers: more than one worker (the classic parallel path), or a
    storage backend that prefers sharded execution even serially — the
    out-of-core partitioned directory, whose bounded-memory guarantee
    depends on never entering the serial loop's whole-stream
    materialization.  Sorted roots remain a precondition either way
    (per-shard merges reproduce the serial order only then).
    """
    if not roots_sorted:
        return False
    if _parallel_jobs(jobs) > 1:
        return True
    return graph.storage.prefers_sharded_execution


def _normalize_roots(roots: Iterable[int] | None) -> tuple[list[int] | None, bool]:
    """Materialize a roots iterable; report whether it is non-decreasing.

    The sharded parallel path merges per-shard results in ascending
    anchor order, so it reproduces the serial pass bit-for-bit only when
    the requested roots are already sorted (the sampling estimators'
    shape).  Unsorted roots simply stay on the serial path.
    """
    if roots is None:
        return None, True
    root_list = list(roots)
    return root_list, all(a <= b for a, b in zip(root_list, root_list[1:]))


def count_motifs(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    node_counts: Iterable[int] | None = None,
    predicate: Predicate | None = None,
    jobs: int | None = None,
    roots: Iterable[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> Counter:
    """Count motif instances per canonical code.

    Parameters
    ----------
    node_counts:
        Keep only motifs with a number of distinct nodes in this collection
        (e.g. ``{3}`` for the paper's 3n3e family).  ``max_nodes`` prunes
        during the search; ``node_counts`` filters the result.
    predicate:
        Optional restriction (consecutive-events, CDG, inducedness, or a
        model's validity check).
    jobs:
        Worker processes for a sharded count (``None`` = session default /
        ``REPRO_JOBS`` / serial; ``<= 0`` = one per CPU).  The result is
        bit-identical to the serial count, including key order.  Sorted
        ``roots`` shard alongside the full search (the sampling
        estimators route here); unsorted roots stay serial.
    roots:
        Restrict to instances anchored at these event indices (see
        :func:`~repro.algorithms.enumeration.enumerate_instances`).
    plan:
        Precompiled :class:`~repro.engine.plan.ExecutionPlan` (advanced;
        see :func:`repro.engine.compile_plan`).
    """
    roots, roots_sorted = _normalize_roots(roots)
    if _route_sharded(graph, jobs, roots_sorted):
        from repro.parallel import parallel_count_motifs

        return parallel_count_motifs(
            graph,
            n_events,
            constraints,
            jobs=jobs,
            max_nodes=max_nodes,
            node_counts=node_counts,
            predicate=predicate,
            roots=roots,
            plan=plan,
        )
    wanted = set(node_counts) if node_counts is not None else None
    counts: Counter = Counter()
    for inst in enumerate_instances(
        graph,
        n_events,
        constraints,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        jobs=1,
        plan=plan,
    ):
        code = canonical_code([graph.events[i].edge for i in inst])
        if wanted is not None and len(set(code)) not in wanted:
            continue
        counts[code] += 1
    return counts


def count_event_pairs(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    jobs: int | None = None,
    roots: Iterable[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> Counter:
    """Count event-pair types across all consecutive pairs of all instances.

    This is the quantity of Table 5: each ``m``-event instance contributes
    ``m − 1`` pair observations.  Disjoint consecutive pairs (possible only
    in 4-node motifs) are counted under ``None``.
    """
    roots, roots_sorted = _normalize_roots(roots)
    if _route_sharded(graph, jobs, roots_sorted):
        from repro.parallel import parallel_count_event_pairs

        return parallel_count_event_pairs(
            graph,
            n_events,
            constraints,
            jobs=jobs,
            max_nodes=max_nodes,
            predicate=predicate,
            roots=roots,
            plan=plan,
        )
    counts: Counter = Counter()
    for inst in enumerate_instances(
        graph,
        n_events,
        constraints,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        jobs=1,
        plan=plan,
    ):
        edges = [graph.events[i].edge for i in inst]
        for first, second in zip(edges, edges[1:]):
            counts[classify_pair(first, second)] += 1
    return counts


@dataclass
class MotifCensus:
    """All per-instance summaries of one enumeration pass.

    Attributes
    ----------
    code_counts:
        instances per canonical motif code.
    pair_counts:
        event-pair observations per :class:`PairType` (``None`` = disjoint).
    pair_sequence_counts:
        instances per ordered tuple of pair types (Figure 6 heat maps).
    timespans:
        per code, sampled list of instance timespans (Figure 5).
    intermediate_positions:
        per code, sampled list of ``(event_position, relative_time)`` where
        ``event_position`` is 1-based among intermediate events and
        ``relative_time`` is ``(t_i − t_1)/(t_m − t_1)`` (Figure 4).
    total:
        total instance count.
    """

    n_events: int
    constraints: TimingConstraints
    code_counts: Counter = field(default_factory=Counter)
    pair_counts: Counter = field(default_factory=Counter)
    pair_sequence_counts: Counter = field(default_factory=Counter)
    timespans: dict[str, list[float]] = field(default_factory=dict)
    intermediate_positions: dict[str, list[tuple[int, float]]] = field(
        default_factory=dict
    )
    total: int = 0

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def codes_with_nodes(self, n_nodes: int) -> Counter:
        """Sub-counter of codes with exactly ``n_nodes`` distinct nodes."""
        return Counter(
            {c: n for c, n in self.code_counts.items() if len(set(c)) == n_nodes}
        )

    def pair_group_counts(self) -> dict[str, int]:
        """Counts of the Table-5 motif groups.

        A motif is an **R,P,I,O motif** when *all* of its event pairs are
        bursty/local types (repetition, ping-pong, in-burst, out-burst) and
        a **C,W motif** when all pairs are transfer types (convey,
        weakly-connected); motifs mixing both groups land in ``"mixed"``
        and motifs with a disjoint consecutive pair in ``"disjoint"``.
        Pure C,W motifs are causal chains, which is why the paper finds
        them better preserved under ΔC (Table 5).
        """
        out = {"RPIO": 0, "CW": 0, "mixed": 0, "disjoint": 0}
        for seq, n in self.pair_sequence_counts.items():
            if any(p is None for p in seq):
                out["disjoint"] += n
            elif all(p in RPIO_GROUP for p in seq):
                out["RPIO"] += n
            elif all(p in CW_GROUP for p in seq):
                out["CW"] += n
            else:
                out["mixed"] += n
        return out

    def proportions(self) -> dict[str, float]:
        """Each code's share of the total instance count."""
        total = sum(self.code_counts.values())
        if total == 0:
            return {}
        return {code: n / total for code, n in self.code_counts.items()}


def run_census(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    collect_timespans: bool = False,
    collect_positions: bool = False,
    timespan_codes: Sequence[str] | None = None,
    position_codes: Sequence[str] | None = None,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
    jobs: int | None = None,
    roots: Iterable[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> MotifCensus:
    """Enumerate once and collect every summary the experiments need.

    Parameters
    ----------
    collect_timespans / collect_positions:
        Enable the per-code sample lists (memory proportional to
        instances, capped at ``sample_cap`` per code).
    timespan_codes / position_codes:
        Restrict sample collection to specific codes (e.g. only ``010102``
        for Figure 5) — ``None`` collects for every code.
    jobs:
        Worker processes for a sharded census; the merged census is
        bit-identical to the serial one (counter key order and sample
        lists included).
    roots:
        Restrict to instances anchored at these event indices.
    plan:
        Precompiled :class:`~repro.engine.plan.ExecutionPlan` (advanced;
        see :func:`repro.engine.compile_plan`).
    """
    roots, roots_sorted = _normalize_roots(roots)
    if _route_sharded(graph, jobs, roots_sorted):
        from repro.parallel import parallel_run_census

        return parallel_run_census(
            graph,
            n_events,
            constraints,
            jobs=jobs,
            max_nodes=max_nodes,
            predicate=predicate,
            collect_timespans=collect_timespans,
            collect_positions=collect_positions,
            timespan_codes=timespan_codes,
            position_codes=position_codes,
            sample_cap=sample_cap,
            roots=roots,
            plan=plan,
        )
    census = MotifCensus(n_events=n_events, constraints=constraints)
    span_filter = set(timespan_codes) if timespan_codes is not None else None
    pos_filter = set(position_codes) if position_codes is not None else None

    # Array-native lane: when the engine can stream instance *blocks*
    # (native kernel, banded arrays ready) and the motif size fits the
    # packed fold, the whole census folds as array ops — bit-identical
    # to the serial loop below, counter key order included.
    if batched.available() and 2 <= n_events <= batched.MAX_BATCH_EVENTS:
        if plan is None:
            plan = compile_plan(
                n_events, constraints, predicate, graph.storage, max_nodes=max_nodes
            )
        arrays = getattr(graph.storage, "extension_arrays", lambda: None)()
        if arrays is not None:
            blocks = run_plan_blocks(plan, graph, roots=roots)
            if blocks is not None:
                census.total = batched.fold_census_blocks(
                    census,
                    blocks,
                    arrays["t"],
                    arrays["u"],
                    arrays["v"],
                    collect_timespans=collect_timespans,
                    collect_positions=collect_positions,
                    span_filter=span_filter,
                    pos_filter=pos_filter,
                    sample_cap=sample_cap,
                )
                return census

    times = graph.times
    # Resolve each event's (u, v) pair once up front: the fold reads a
    # motif's edges per instance, and instances outnumber events.
    edge_of = [ev.edge for ev in graph.events]
    code_counts = census.code_counts
    pair_counts = census.pair_counts
    pair_sequence_counts = census.pair_sequence_counts
    total = 0

    for inst in enumerate_instances(
        graph,
        n_events,
        constraints,
        max_nodes=max_nodes,
        predicate=predicate,
        roots=roots,
        jobs=1,
        plan=plan,
    ):
        edges = [edge_of[i] for i in inst]
        code = canonical_code(edges)
        code_counts[code] += 1
        total += 1
        pair_seq = tuple(map(classify_pair, edges, edges[1:]))
        for ptype in pair_seq:
            pair_counts[ptype] += 1
        pair_sequence_counts[pair_seq] += 1

        if collect_timespans and (span_filter is None or code in span_filter):
            bucket = census.timespans.setdefault(code, [])
            if len(bucket) < sample_cap:
                bucket.append(times[inst[-1]] - times[inst[0]])

        if collect_positions and (pos_filter is None or code in pos_filter):
            t_first = times[inst[0]]
            span = times[inst[-1]] - t_first
            if span > 0:
                bucket2 = census.intermediate_positions.setdefault(code, [])
                # Strict cap (never exceeded), so capped lists are exact
                # prefixes — the invariant sharded merges rely on.
                for pos, idx in enumerate(inst[1:-1], start=1):
                    if len(bucket2) >= sample_cap:
                        break
                    bucket2.append((pos, (times[idx] - t_first) / span))
    census.total = total
    return census


def total_instances(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    max_nodes: int | None = None,
    predicate: Predicate | None = None,
    jobs: int | None = None,
    roots: Iterable[int] | None = None,
    plan: ExecutionPlan | None = None,
) -> int:
    """Total number of instances, without per-code bookkeeping."""
    roots, roots_sorted = _normalize_roots(roots)
    if _route_sharded(graph, jobs, roots_sorted):
        from repro.parallel import parallel_total_instances

        return parallel_total_instances(
            graph,
            n_events,
            constraints,
            jobs=jobs,
            max_nodes=max_nodes,
            predicate=predicate,
            roots=roots,
            plan=plan,
        )
    if plan is None and n_events >= 2:
        plan = compile_plan(
            n_events, constraints, predicate, graph.storage, max_nodes=max_nodes
        )
    if plan is not None:
        # Block lane: count rows without materializing tuples.
        blocks = run_plan_blocks(plan, graph, roots=roots)
        if blocks is not None:
            return sum(int(block.shape[0]) for block in blocks)
    return sum(
        1
        for _ in enumerate_instances(
            graph,
            n_events,
            constraints,
            max_nodes=max_nodes,
            predicate=predicate,
            roots=roots,
            jobs=1,
            plan=plan,
        )
    )


def merge_counters(counters: Iterable[Counter]) -> Counter:
    """Sum counters, preserving first-appearance key order across inputs.

    The one reduction primitive behind every chunked/parallel count:
    :func:`repro.parallel.merge.merge_counts` is this function (re-exported
    for compatibility).  Key order matters — mapping iteration order is
    part of the storage contract, and seeded randomized consumers depend
    on merged counters coming out exactly as a single serial pass would
    have filled them.
    """
    out: Counter = Counter()
    for counter in counters:
        out.update(counter)
    return out
