"""Batched census folding: the per-instance summaries as array ops.

The serial census fold (:func:`repro.algorithms.counting.run_census`)
spends its time in two interpreted per-instance loops — the
first-appearance relabel of :func:`~repro.core.notation.canonical_code`
and the pairwise :func:`~repro.core.eventpairs.classify_pair` walk.
This module performs both over whole **instance blocks** — the
``(n, n_events)`` arrays streamed by
:func:`repro.engine.driver.run_plan_blocks` — and folds the results into
a :class:`~repro.algorithms.counting.MotifCensus` bit-identically to the
serial pass.

The packing trick: a block's rows collapse to one int64 key each —
decimal-packed relabel digits (the motif code) times ``7**(k-1)`` plus
the base-7 packed pair-type sequence — and one ``np.unique`` with a
stable first-appearance sort reproduces the serial counters exactly,
*including key order*: two instances share a composite key iff they
share both code and pair sequence, and the first instance of each
distinct key lands in the counters at the same rank the serial loop
would have inserted it.

The key fits 64 bits only while ``10**(2k) * 7**(k-1)`` does, which
bounds the batched fold at :data:`MAX_BATCH_EVENTS` events; larger
motifs stay on the tuple path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core._optional import import_numpy
from repro.core.eventpairs import ALL_PAIR_TYPES
from repro.core.notation import MAX_NOTATION_NODES

np = import_numpy()

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.counting import MotifCensus

#: Pair-type by packed id: the six paper types in presentation order,
#: then disjoint (``None``) — the order :func:`classify_block_pairs`
#: assigns ids in.
PAIR_BY_ID = ALL_PAIR_TYPES + (None,)

#: Largest motif size the packed composite key can hold in an int64
#: (``10**(2k) * 7**(k-1) < 2**63`` holds through ``k = 6``).
MAX_BATCH_EVENTS = 6


def available() -> bool:
    """Whether the batched fold can run (NumPy importable)."""
    return bool(np)


def encode_block_codes(us, vs):
    """Decimal-packed canonical codes of a block of instances.

    ``us`` / ``vs`` are ``(n, k)`` int arrays of per-event endpoints in
    chronological order.  Returns ``(n,)`` int64 keys where
    ``str(key).zfill(2 * k)`` is exactly
    :func:`~repro.core.notation.canonical_code` of the row (the first
    digit of a canonical code is always 0, so the pack is lossless).

    The relabel runs column-by-column over the interleaved endpoint
    matrix: a column's label is its first-appearance match among the
    earlier columns, or the row's next fresh label.  Matches the serial
    encoder's errors: self-loop events and motifs beyond
    :data:`~repro.core.notation.MAX_NOTATION_NODES` raise ``ValueError``.
    """
    n, k = us.shape
    if bool((us == vs).any()):
        raise ValueError("self-loop event has no motif code")
    ep = np.empty((n, 2 * k), dtype=np.int64)
    ep[:, 0::2] = us
    ep[:, 1::2] = vs
    labels = np.empty((n, 2 * k), dtype=np.int64)
    labels[:, 0] = 0
    ndist = np.ones(n, dtype=np.int64)
    rows = np.arange(n)
    for j in range(1, 2 * k):
        eq = ep[:, :j] == ep[:, j : j + 1]
        seen = eq.any(axis=1)
        first = eq.argmax(axis=1)
        labels[:, j] = np.where(seen, labels[rows, first], ndist)
        ndist += ~seen
    if bool((ndist > MAX_NOTATION_NODES).any()):
        raise ValueError("motif has too many nodes for digit notation")
    keys = labels[:, 0].copy()
    for j in range(1, 2 * k):
        keys *= 10
        keys += labels[:, j]
    return keys


def classify_block_pairs(u1, v1, u2, v2):
    """Packed pair-type ids of consecutive event pairs, elementwise.

    Ids index :data:`PAIR_BY_ID` (R, P, I, O, C, W, disjoint).  The
    priority — two-node-sharing cases before one-node cases — is the
    serial :func:`~repro.core.eventpairs.classify_pair` order, realized
    by ``np.select``'s first-match semantics.
    """
    r = (u1 == u2) & (v1 == v2)
    p = (u1 == v2) & (v1 == u2)
    i = v1 == v2
    o = u1 == u2
    c = v1 == u2
    w = u1 == v2
    return np.select([r, p, i, o, c, w], [0, 1, 2, 3, 4, 5], default=6).astype(np.int8)


def fold_census_blocks(
    census: "MotifCensus",
    blocks: Iterable,
    t_col,
    u_col,
    v_col,
    *,
    collect_timespans: bool = False,
    collect_positions: bool = False,
    span_filter: set | None = None,
    pos_filter: set | None = None,
    sample_cap: int = 0,
) -> int:
    """Fold instance blocks into ``census``; return the total count.

    ``blocks`` yields ``(n_i, k)`` int64 arrays of event indices in the
    serial enumeration order; ``t_col`` / ``u_col`` / ``v_col`` are the
    full per-event columns.  Counter contents *and key order*, sample
    lists and totals come out bit-identical to the serial fold (Python
    floats and ints throughout — array scalars never leak out).
    """
    code_counts = census.code_counts
    pair_counts = census.pair_counts
    pair_sequence_counts = census.pair_sequence_counts
    code_str_cache: dict[int, str] = {}
    pair_seq_cache: dict[int, tuple] = {}
    total = 0
    for block in blocks:
        n, k = block.shape
        if n == 0:
            continue
        total += n
        us = u_col[block]
        vs = v_col[block]
        code_keys = encode_block_codes(us, vs)
        pair_keys = classify_block_pairs(
            us[:, 0], vs[:, 0], us[:, 1], vs[:, 1]
        ).astype(np.int64)
        for j in range(1, k - 1):
            ids = classify_block_pairs(us[:, j], vs[:, j], us[:, j + 1], vs[:, j + 1])
            pair_keys *= 7
            pair_keys += ids
        pair_base = 7 ** (k - 1)
        composite = code_keys * pair_base + pair_keys
        uniq, first_idx, inverse, counts = np.unique(
            composite, return_index=True, return_inverse=True, return_counts=True
        )
        order = np.argsort(first_idx, kind="stable")

        codes_by_uniq = [""] * len(uniq)
        for rank in order.tolist():
            key = int(uniq[rank])
            count = int(counts[rank])
            code_key, pair_key = divmod(key, pair_base)
            code = code_str_cache.get(code_key)
            if code is None:
                code = code_str_cache[code_key] = str(code_key).zfill(2 * k)
            codes_by_uniq[rank] = code
            pair_seq = pair_seq_cache.get(pair_key)
            if pair_seq is None:
                ids_rev = []
                pk = pair_key
                for _ in range(k - 1):
                    pk, pid = divmod(pk, 7)
                    ids_rev.append(pid)
                pair_seq = pair_seq_cache[pair_key] = tuple(
                    PAIR_BY_ID[pid] for pid in reversed(ids_rev)
                )
            code_counts[code] += count
            for ptype in pair_seq:
                pair_counts[ptype] += count
            pair_sequence_counts[pair_seq] += count

        if collect_timespans:
            spans = (t_col[block[:, -1]] - t_col[block[:, 0]]).tolist()
            inv = inverse.tolist()
            for r in range(n):
                code = codes_by_uniq[inv[r]]
                if span_filter is not None and code not in span_filter:
                    continue
                bucket = census.timespans.setdefault(code, [])
                if len(bucket) < sample_cap:
                    bucket.append(spans[r])

        if collect_positions:
            t0 = t_col[block[:, 0]].tolist()
            spans_p = (t_col[block[:, -1]] - t_col[block[:, 0]]).tolist()
            mids = t_col[block[:, 1:-1]]
            inv = inverse.tolist()
            for r in range(n):
                code = codes_by_uniq[inv[r]]
                if pos_filter is not None and code not in pos_filter:
                    continue
                span = spans_p[r]
                if span <= 0:
                    continue
                bucket2 = census.intermediate_positions.setdefault(code, [])
                t_first = t0[r]
                # Strict cap (never exceeded), so capped lists are exact
                # prefixes — the invariant sharded merges rely on.
                for pos, t_mid in enumerate(mids[r].tolist(), start=1):
                    if len(bucket2) >= sample_cap:
                        break
                    bucket2.append((pos, (t_mid - t_first) / span))
    return total
