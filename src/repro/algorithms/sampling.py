"""Approximate motif counting by root sampling.

The survey's related work (Section 3) cites Liu, Benson & Charikar (WSDM
2019), who estimate temporal motif counts up to two orders of magnitude
faster by sampling time intervals, counting exactly inside each sample, and
reweighting.  We implement the cleanest member of that family: **root
sampling**.  Every motif instance has exactly one *root* (its earliest
event), so sampling each event as a root independently with probability
``q`` and enumerating only instances rooted at sampled events gives a
Horvitz–Thompson estimator ``count / q`` that is unbiased for every motif
code simultaneously.

A windowed variant (:func:`estimate_counts_window_sampling`) samples
contiguous time windows instead, trading some bias control for better
locality — closer to the paper's interval sampling.
"""

from __future__ import annotations

import math

from repro.core._optional import import_numpy

np = import_numpy()

from repro.algorithms.counting import count_motifs
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph


def estimate_counts_root_sampling(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    q: float,
    *,
    max_nodes: int | None = None,
    rng: np.random.Generator | None = None,
    jobs: int | None = None,
) -> dict[str, float]:
    """Unbiased per-code count estimates via root sampling.

    Parameters
    ----------
    q:
        Root inclusion probability in ``(0, 1]``.  ``q = 1`` degenerates to
        exact counting.
    rng:
        NumPy generator for reproducibility (seeded fresh when omitted).
    jobs:
        Worker processes for the sampled enumeration.  Routed through the
        parallel engine exactly like :func:`run_census` — argument, then
        session default, then ``REPRO_JOBS``, else serial — and the
        estimate is bit-identical to the serial run (the sampled roots
        are ascending, so shards partition them exactly).

    Returns
    -------
    Motif code → estimated count (``raw / q``).
    """
    if not 0 < q <= 1:
        raise ValueError("q must be in (0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    m = len(graph.events)
    if m == 0:
        return {}
    mask = rng.random(m) < q
    roots = [i for i in range(m) if mask[i]]
    raw = count_motifs(
        graph, n_events, constraints, max_nodes=max_nodes, roots=roots, jobs=jobs
    )
    return {code: count / q for code, count in raw.items()}


def estimate_counts_window_sampling(
    graph: TemporalGraph,
    n_events: int,
    constraints: TimingConstraints,
    *,
    window: float,
    q: float,
    max_nodes: int | None = None,
    rng: np.random.Generator | None = None,
    jobs: int | None = None,
) -> dict[str, float]:
    """Per-code estimates by sampling root *windows* of fixed length.

    The timeline is partitioned into consecutive windows of length
    ``window``; each window is kept with probability ``q`` and instances
    whose root falls in a kept window are enumerated.  Because each
    instance has exactly one root and each root lies in exactly one
    window, the ``raw / q`` estimator stays unbiased; sampling whole
    windows preserves the burst locality exploited by interval samplers.
    ``jobs`` shards the sampled enumeration exactly like
    :func:`estimate_counts_root_sampling`.
    """
    if not 0 < q <= 1:
        raise ValueError("q must be in (0, 1]")
    if window <= 0:
        raise ValueError("window must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    if not graph.events:
        return {}
    t0 = graph.times[0]
    n_windows = int(math.floor((graph.times[-1] - t0) / window)) + 1
    keep = rng.random(n_windows) < q
    roots = [
        i
        for i, t in enumerate(graph.times)
        if keep[int((t - t0) // window)]
    ]
    raw = count_motifs(
        graph, n_events, constraints, max_nodes=max_nodes, roots=roots, jobs=jobs
    )
    return {code: count / q for code, count in raw.items()}


def relative_error(exact: dict[str, int], estimate: dict[str, float]) -> float:
    """Total-variation-style relative error between exact and estimated counts.

    ``sum(|exact - est|) / sum(exact)``; codes missing from either side
    count as zero.  Used by tests and the sampling ablation bench.
    """
    total = sum(exact.values())
    if total == 0:
        return 0.0 if not estimate else math.inf
    codes = set(exact) | set(estimate)
    err = sum(abs(exact.get(c, 0) - estimate.get(c, 0.0)) for c in codes)
    return err / total
