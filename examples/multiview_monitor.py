"""Multi-view monitor: many trailing windows over one stream, one engine.

A multi-tenant monitoring story built on
:class:`repro.online.MultiViewCensus`: replay the Copenhagen SMS dataset
as a live stream through ONE shared engine that concurrently maintains

* several **global windows** (a dashboard's hour/half-day/day panes),
* a fleet of **tenant views** — node-set slices watching only the
  conversations among a few hot nodes each,

then exercises the live-operations verbs mid-replay: ``add_view`` (the
new view backfills from the shared discovery ledger), ``drop_view``, and
``degrade_view`` (the overloaded tenant switches to the root-sampling
estimator with error bars instead of exact counters).

The punchline is the cost model: every view shares the graph tail, the
prefix store and the compiled kernel, so the marginal cost of one more
view is counter folds — not another engine.  The final spot check pins
correctness the same way ``tests/test_multiview.py`` does: one view must
be bit-identical to an independent single-window engine.
"""

import random
import time
from collections import Counter

from repro.core.constraints import TimingConstraints
from repro.core.notation import describe_code
from repro.datasets.registry import get_dataset
from repro.online import MultiViewCensus, OnlineCensus

CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)

#: The dashboard's global panes: one hour, one working day-ish, wide.
GLOBAL_WINDOWS = {"hour": 3600.0, "shift": 14_400.0, "day": 43_200.0}

N_TENANTS = 12
TENANT_WINDOW = 14_400.0


def main() -> None:
    graph = get_dataset("sms-copenhagen", scale=0.3)
    events = graph.events
    print(
        f"multi-view census over {len(events)} events of {graph.name!r}\n"
        f"(3-event motifs, {CONSTRAINTS.describe()}, one shared engine)\n"
    )

    engine = MultiViewCensus(
        3, CONSTRAINTS, max(GLOBAL_WINDOWS.values()), max_nodes=3, prune_every=4096
    )
    for name, window in GLOBAL_WINDOWS.items():
        engine.add_view(name, window)

    # Tenants: slices around the most talkative nodes of the dataset.
    activity = Counter()
    for ev in events:
        activity[ev.u] += 1
        activity[ev.v] += 1
    hot = [node for node, _ in activity.most_common(14)]
    rng = random.Random(11)
    for i in range(N_TENANTS):
        nodes = rng.sample(hot, 7)
        engine.add_view(f"tenant-{i}", TENANT_WINDOW, nodes=nodes)
    print(f"{len(engine)} views live: {len(GLOBAL_WINDOWS)} global windows + {N_TENANTS} tenants")

    half = len(events) // 2
    started = time.perf_counter()
    for event in events[:half]:
        engine.push(event)

    # Live operations, mid-stream, no replay needed:
    late = engine.add_view("late-hour", 3600.0)
    print(
        f"\nmid-stream add_view('late-hour'): backfilled {late.total} live "
        "instances from the shared discovery ledger"
    )
    engine.drop_view("tenant-0")
    engine.degrade_view("tenant-1", q=0.25, seed=7)
    print("dropped tenant-0; tenant-1 degraded to sampling estimates")

    for event in events[half:]:
        engine.push(event)
    elapsed = time.perf_counter() - started
    print(
        f"\nreplayed {len(events)} events into {len(engine)} views in "
        f"{elapsed:.2f}s ({len(events) / elapsed:,.0f} events/sec)"
    )

    print("\nview                 window     mode      live  top motif")
    info = engine.describe()
    for name in sorted(engine.view_names()):
        view = info["views"][name]
        if view["mode"] == "exact":
            top = engine.counts(name).most_common(1)
            label = f"{top[0][0]} x{top[0][1]}" if top else "-"
            live = view["live"]
        else:
            payload = engine.view_counts(name)
            codes = payload["codes"]
            label = (
                "~" + max(codes, key=codes.get) if codes else "-"
            ) + " (estimated)"
            live = round(sum(codes.values()))
        print(
            f"{name:<20} {view['window']:>7.0f}s  {view['mode']:<8} "
            f"{live:>5}  {label}"
        )

    hour = engine.counts("hour").most_common(1)
    if hour:
        code, n = hour[0]
        print(f"\nthe trailing hour is dominated by {code}: {describe_code(code)}")

    # The differential spot check: 'shift' vs an independent engine.
    oracle = OnlineCensus(3, CONSTRAINTS, GLOBAL_WINDOWS["shift"], max_nodes=3)
    for event in events:
        oracle.push(event)
    same = list(engine.counts("shift").items()) == list(oracle.counts().items())
    print(f"parity vs independent engine: {'ok' if same else 'MISMATCH'}")


if __name__ == "__main__":
    main()
