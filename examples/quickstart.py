"""Quickstart: build a temporal graph, count motifs, compare models.

Run with:  python examples/quickstart.py
"""

from repro import (
    HulovatyyModel,
    KovanenModel,
    ParanjapeModel,
    SongModel,
    TemporalGraph,
    TimingConstraints,
    run_census,
)
from repro.analysis.rankings import top_k
from repro.core.notation import describe_code


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A temporal network is just a list of (source, target, time) events.
    # ------------------------------------------------------------------
    graph = TemporalGraph.from_tuples(
        [
            (0, 1, 10),   # 0 messages 1
            (1, 0, 25),   # 1 replies
            (0, 2, 30),   # 0 tells 2 about it
            (2, 1, 42),   # 2 contacts 1
            (0, 1, 55),   # the conversation resumes
            (1, 2, 61),   # 1 forwards to 2
            (2, 0, 70),   # 2 closes the triangle
        ],
        name="quickstart",
    )
    print(graph)
    print(f"static edges: {sorted(graph.static_edges())}")
    print()

    # ------------------------------------------------------------------
    # 2. Count 3-event motifs under a ΔC + ΔW configuration.  Codes use the
    #    paper's digit notation: 011202 = 0→1, 1→2, 0→2.
    # ------------------------------------------------------------------
    constraints = TimingConstraints(delta_c=30, delta_w=60)
    print(f"counting 3-event motifs with {constraints.describe(3)}")
    census = run_census(graph, n_events=3, constraints=constraints, max_nodes=3)
    print(f"found {census.total} instances:")
    for code, count in top_k(census.code_counts, 5):
        print(f"  {count:3d} × {describe_code(code)}")
    print()

    # ------------------------------------------------------------------
    # 3. The event-pair lens: each motif is a sequence of pair types
    #    (R repetition, P ping-pong, I in-burst, O out-burst, C convey,
    #    W weakly-connected).
    # ------------------------------------------------------------------
    print("event pairs observed inside those motifs:")
    for ptype, count in sorted(
        census.pair_counts.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {ptype}: {count} ({ptype.description})")
    print()

    # ------------------------------------------------------------------
    # 4. The same candidate motif judged by the four temporal motif models.
    # ------------------------------------------------------------------
    candidate = (0, 1, 2)  # events at t = 10, 25, 30
    models = [
        KovanenModel(delta_c=20),
        SongModel(delta_w=25),
        HulovatyyModel(delta_c=20),
        ParanjapeModel(delta_w=25),
    ]
    print(f"candidate motif: events {candidate} (times 10, 25, 30)")
    for model in models:
        verdict = "valid" if model.is_valid_instance(graph, candidate) else "invalid"
        print(f"  {model.name:25s} -> {verdict}")


if __name__ == "__main__":
    main()
