"""Fraud screening on a transaction stream — the Song et al. scenario.

Section 4.1 of the paper argues that *non-induced* motifs matter for
streaming fraud detection: "some temporal and non-induced motifs (like
squares) in financial transaction networks are a strong indicator of
fraud", and a strictly induced model is "helpless in this context since it
considers all the transactions among a set of entities in which the few
fraudulent transactions can be overlooked".

This example builds a synthetic transaction network, plants two fraud
artifacts — a money cycle and a layering square — and shows:

1. the streaming event-pattern matcher (Song's model) catching the square
   on the fly, non-induced;
2. temporal cycle enumeration catching the money loop;
3. why an induced model (Paranjape reading) misses the planted square.

Run with:  python examples/fraud_detection.py
"""

import numpy as np

from repro.algorithms.cycles import cycle_nodes, enumerate_temporal_cycles
from repro.algorithms.pattern import square_pattern
from repro.algorithms.streaming import StreamMatcher
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import ActivityConfig, generate
from repro.models import ParanjapeModel, SongModel

HOUR = 3600.0


def build_transactions(seed: int = 42) -> TemporalGraph:
    """Background payments plus two planted fraud artifacts."""
    background = generate(
        ActivityConfig(
            n_nodes=120,
            n_events=2_000,
            timespan=30 * 24 * HOUR,
            p_reply=0.10,
            p_repeat=0.15,
            p_forward=0.10,
            reaction_mean=6 * HOUR,
        ),
        seed=seed,
    )
    t0 = background.times[len(background) // 2]
    mule_a, mule_b, mule_c, mule_d = 200, 201, 202, 203

    planted = [
        # a 4-hop money cycle: funds leave mule_a and return within hours
        Event(mule_a, mule_b, t0 + 1 * HOUR),
        Event(mule_b, mule_c, t0 + 2 * HOUR),
        Event(mule_c, mule_d, t0 + 3 * HOUR),
        Event(mule_d, mule_a, t0 + 4 * HOUR),
        # a layering square with a camouflage diagonal: the fraud ring also
        # performs an unrelated "legal" transaction inside the window,
        # which breaks inducedness but not the square itself
        Event(300, 301, t0 + 10 * HOUR),
        Event(301, 302, t0 + 11 * HOUR),
        Event(302, 303, t0 + 12 * HOUR),
        Event(303, 300, t0 + 13 * HOUR),
        Event(300, 302, t0 + 12.5 * HOUR),  # the camouflage diagonal
    ]
    return TemporalGraph(
        list(background.events) + planted, name="transactions"
    )


def screen_squares_streaming(graph: TemporalGraph) -> list:
    """Song-style on-the-fly matching of the directed square A→B→C→D→A."""
    matcher = StreamMatcher(square_pattern(total=True), delta_w=24 * HOUR)
    hits = []
    for event in graph.events:  # simulate the stream
        hits.extend(matcher.push(event))
    return hits


def screen_cycles(graph: TemporalGraph) -> list:
    return list(
        enumerate_temporal_cycles(
            graph, delta_w=24 * HOUR, min_length=4, max_length=4
        )
    )


def main() -> None:
    rng = np.random.default_rng(0)
    del rng  # the generator below is internally seeded
    graph = build_transactions()
    print(f"screening {len(graph)} transactions among {graph.num_nodes} accounts")
    print()

    # 1. streaming square detection (non-induced, Song model semantics)
    squares = screen_squares_streaming(graph)
    print(f"[stream matcher] directed squares within 24h: {len(squares)}")
    for match in squares[:5]:
        ring = [match.binding[v] for v in ("A", "B", "C", "D")]
        print(
            f"  ring {ring} between t={match.t_first:.0f} and "
            f"t={match.t_last:.0f} (span {match.timespan / HOUR:.1f}h)"
        )
    print()

    # 2. temporal cycle enumeration (money returning to its origin)
    cycles = screen_cycles(graph)
    print(f"[cycle scan] 4-hop temporal cycles within 24h: {len(cycles)}")
    for cyc in cycles[:5]:
        print(f"  money loop through accounts {cycle_nodes(graph, cyc)}")
    print()

    # 3. the inducedness trap: the planted square's event indices
    planted_square = [
        i
        for i, ev in enumerate(graph.events)
        if ev.u in (300, 301, 302, 303) and ev.edge != (300, 302)
    ]
    song = SongModel(delta_w=24 * HOUR)
    induced = ParanjapeModel(delta_w=24 * HOUR)
    print("[model comparison] the planted square with a camouflage diagonal:")
    print(f"  Song (non-induced):      {song.is_valid_instance(graph, planted_square)}")
    print(f"  Paranjape (induced):     {induced.is_valid_instance(graph, planted_square)}")
    print(
        "  -> the induced model overlooks the fraud square because the ring "
        "camouflaged it with one extra legal transaction (Section 4.1)."
    )


if __name__ == "__main__":
    main()
