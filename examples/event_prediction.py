"""Next-event prediction from event-pair sequences — the paper's future work.

The paper's Discussion closes with: "We also intend to utilize the
sequence of event pairs for the event prediction."  This example
implements that idea's natural baseline: a first-order Markov model over
the six-letter pair alphabet (R, P, I, O, C, W).

Workflow:

1. train the transition model on the first 70 % of a message network,
2. inspect the learned transition matrix (the predictive twin of the
   Figure-6 heat map),
3. evaluate next-pair-type accuracy on the held-out suffix against the
   marginal and random baselines,
4. emit concrete next-event candidates after a live event.

Run with:  python examples/event_prediction.py
"""

from repro import get_dataset
from repro.analysis.textplot import heatmap
from repro.core.eventpairs import ALL_PAIR_TYPES, PairType
from repro.prediction import PairTransitionModel, evaluate_pair_prediction

HORIZON = 900.0  # seconds within which a successor event must appear


def main() -> None:
    graph = get_dataset("sms-copenhagen", scale=0.6)
    split = int(len(graph.events) * 0.7)
    train = graph.head(split)
    print(f"training on {len(train)} events, testing on {len(graph) - split}")
    print()

    # ------------------------------------------------------------------
    # 1-2. fit and inspect
    # ------------------------------------------------------------------
    model = PairTransitionModel(smoothing=0.5).fit(train, horizon=HORIZON)
    labels = [p.value for p in ALL_PAIR_TYPES]
    print(f"learned from {model.n_observations} pair transitions")
    print(
        heatmap(
            model.transition_matrix(),
            row_labels=labels,
            col_labels=labels,
            title="P(next pair type | current pair type)",
        )
    )
    print()
    for current in (PairType.PING_PONG, PairType.CONVEY, PairType.IN_BURST):
        predicted = model.predict_type(current)
        prob = model.next_type_distribution(current)[predicted]
        print(f"after a {current.name.lower():>16}: expect {predicted.name.lower()} "
              f"({100 * prob:.0f}%)")
    print()

    # ------------------------------------------------------------------
    # 3. held-out evaluation
    # ------------------------------------------------------------------
    scores = evaluate_pair_prediction(graph, horizon=HORIZON)
    print(f"held-out next-pair-type accuracy over {scores['n_test']} transitions:")
    print(f"  transition model : {100 * scores['accuracy']:.1f}%")
    print(f"  marginal baseline: {100 * scores['baseline']:.1f}%")
    print(f"  random guess     : {100 * scores['random']:.1f}%")
    print()

    # ------------------------------------------------------------------
    # 4. concrete candidates after the latest observed event
    # ------------------------------------------------------------------
    last = graph.events[-1]
    print(f"latest event: {last.u} → {last.v} at t={last.t:.0f}")
    print("predicted next events:")
    for pred in model.predict_events(last, None, top=3):
        src = "?" if pred.source is None else pred.source
        dst = "?" if pred.target is None else pred.target
        print(
            f"  {pred.pair_type.name.lower():>16}: {src} → {dst} "
            f"(p={pred.probability:.2f})"
        )


if __name__ == "__main__":
    main()
