"""Conversation mining in a message network with the event-pair lens.

Reproduces the paper's Section 5 workflow on one dataset end to end:

1. generate a message network and report its Table-2 statistics,
2. sweep the ΔC/ΔW ratio and watch the R,P,I,O vs C,W groups (Table 5),
3. compare vanilla counts against the consecutive-events restriction
   (Table 3) to isolate genuine ask-reply conversations,
4. render the pair-sequence heat map (Figure 6).

Run with:  python examples/messaging_analysis.py
"""

from repro import TimingConstraints, get_dataset, run_census
from repro.algorithms.counting import count_motifs
from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.analysis.pairseq import dominant_sequences, pair_sequence_matrix, sequence_label
from repro.analysis.rankings import rank_changes, top_k
from repro.analysis.textplot import pair_heatmap
from repro.core.notation import motif_codes_with_nodes
from repro.datasets.statistics import compute_stats, stats_table

DELTA_W = 3000.0


def main() -> None:
    graph = get_dataset("sms-copenhagen", scale=0.5)

    # ------------------------------------------------------------------
    # 1. dataset statistics (Table 2 row)
    # ------------------------------------------------------------------
    print(stats_table([compute_stats(graph)]))
    print()

    # ------------------------------------------------------------------
    # 2. the timing-constraint sweep (Table 5 view)
    # ------------------------------------------------------------------
    print("ΔC/ΔW sweep of 3-event motif groups (ΔW = 3000s):")
    print(f"{'ratio':>6} {'regime':>12} {'RPIO':>8} {'CW':>6} {'mixed':>6}")
    for ratio in (1.0, 0.66, 0.5):
        constraints = TimingConstraints.from_ratio(DELTA_W, ratio)
        census = run_census(graph, 3, constraints, max_nodes=3)
        groups = census.pair_group_counts()
        print(
            f"{ratio:>6} {str(constraints.regime(3)):>12} "
            f"{groups['RPIO']:>8} {groups['CW']:>6} {groups['mixed']:>6}"
        )
    print(
        "-> bursty/local motifs (R,P,I,O) shrink faster than transfer\n"
        "   chains (C,W) as ΔC tightens: conveys are causal and prompt.\n"
    )

    # ------------------------------------------------------------------
    # 3. isolating real conversations with the consecutive restriction
    # ------------------------------------------------------------------
    constraints = TimingConstraints.only_c(1500)
    vanilla = count_motifs(graph, 3, constraints, max_nodes=3, node_counts={3})
    restricted = count_motifs(
        graph,
        3,
        constraints,
        max_nodes=3,
        node_counts={3},
        predicate=satisfies_consecutive_events,
    )
    survival = sum(restricted.values()) / max(sum(vanilla.values()), 1)
    print(
        f"consecutive-events restriction keeps "
        f"{sum(restricted.values())} / {sum(vanilla.values())} motifs "
        f"({100 * survival:.1f}%)"
    )
    changes = rank_changes(
        vanilla, restricted, universe=motif_codes_with_nodes(3, 3)
    )
    climbers = sorted(changes.items(), key=lambda kv: -kv[1])[:4]
    print("motifs amplified by the restriction (uninterrupted engagements):")
    for code, delta in climbers:
        print(f"  {code}: {delta:+d} rank positions")
    print("top surviving motifs:")
    for code, count in top_k(restricted, 3):
        print(f"  {count:4d} × {code}")
    print()

    # ------------------------------------------------------------------
    # 4. the pair-sequence heat map (Figure 6 view)
    # ------------------------------------------------------------------
    census = run_census(
        graph, 3, TimingConstraints(delta_c=2000, delta_w=3000), max_nodes=3
    )
    matrix = pair_sequence_matrix(census.pair_sequence_counts)
    print(pair_heatmap(matrix, title="pair-sequence counts (rows: first pair)"))
    print()
    print("dominant sequences:")
    for seq, count in dominant_sequences(census.pair_sequence_counts, k=5):
        print(f"  {sequence_label(seq)}: {count}")


if __name__ == "__main__":
    main()
