"""Side-by-side comparison of the four temporal motif models on one dataset.

For a single email-like network, count 3n3e motifs under each surveyed
model with comparable timing budgets and show how the model choice alone
reshapes the motif spectrum — the paper's central message ("a motif can be
valid in some models but not in the others").

Run with:  python examples/model_comparison.py
"""

from repro import (
    HulovatyyModel,
    KovanenModel,
    ParanjapeModel,
    SongModel,
    get_dataset,
)
from repro.analysis.proportions import proportions
from repro.analysis.rankings import top_k
from repro.analysis.textplot import table
from repro.core.notation import motif_codes_with_nodes

DELTA_C = 1500.0   # for the ΔC models (Kovanen, Hulovatyy)
DELTA_W = 3000.0   # for the ΔW models (Song, Paranjape); = (m−1)·ΔC


def main() -> None:
    graph = get_dataset("email", scale=0.4)
    print(f"dataset: {graph}")
    print(
        f"timing budgets: ΔC={DELTA_C:g}s (Kovanen, Hulovatyy), "
        f"ΔW={DELTA_W:g}s (Song, Paranjape)\n"
    )

    models = [
        KovanenModel(DELTA_C),
        SongModel(DELTA_W),
        HulovatyyModel(DELTA_C),
        ParanjapeModel(DELTA_W),
    ]
    counts = {}
    for model in models:
        counts[model.name] = model.count(graph, 3, max_nodes=3, node_counts={3})

    # ------------------------------------------------------------------
    # total counts: inducedness and the consecutive restriction are filters
    # ------------------------------------------------------------------
    rows = []
    for model in models:
        c = counts[model.name]
        rows.append((model.name, sum(c.values()), len(c)))
    print(table(("model", "3n3e instances", "distinct motifs"), rows))
    print()

    # ------------------------------------------------------------------
    # top motifs per model: the spectrum shifts with the model choice
    # ------------------------------------------------------------------
    print("top-5 motifs per model (code: share):")
    universe = motif_codes_with_nodes(3, 3)
    for model in models:
        shares = proportions(counts[model.name], universe=universe)
        tops = top_k(counts[model.name], 5)
        cells = ", ".join(f"{code}: {100 * shares[code]:.1f}%" for code, _n in tops)
        print(f"  {model.name:25s} {cells}")
    print()

    # ------------------------------------------------------------------
    # pairwise agreement: fraction of Song's instances each model keeps
    # ------------------------------------------------------------------
    song_total = sum(counts["Song et al. [12]"].values())
    print("fraction of the most permissive model's instances each model keeps:")
    for model in models:
        kept = sum(counts[model.name].values()) / max(song_total, 1)
        print(f"  {model.name:25s} {100 * kept:6.1f}%")
    print(
        "\n-> Kovanen's consecutive-events restriction is the strongest "
        "filter; static inducedness (Hulovatyy/Paranjape) sits in between "
        "(Sections 4.1 and 5.1 of the paper)."
    )


if __name__ == "__main__":
    main()
