"""Live dashboard: rolling motif mix of an event stream, tick by tick.

An operations view built on the online engine: replay the Copenhagen SMS
dataset as a live stream through :class:`repro.online.OnlineCensus` and,
at a few checkpoints along the replay, print what a wall dashboard would
show — throughput so far, the live instance ledger, push-latency
quantiles from the observability layer, and the rolling motif-mix bar
chart for the trailing window.  The punchline: the mix is available
after *every* event at a per-event cost, no batch recount.

With ``--remote HOST:PORT`` the same dashboard renders a **running
census service** instead: it polls the server's ``stats`` endpoint (the
merged server+worker observability snapshot) and shows request rates,
per-op latency quantiles, queue depth, shed counts, worker liveness and
the live server-side streams — the operations view of the
census-as-a-service deployment::

    python -m repro.experiments serve --datasets sms-copenhagen &
    python examples/live_dashboard.py --remote 127.0.0.1:8737
"""

import argparse
import time

import repro.obs as obs
from repro.analysis import textplot
from repro.core.constraints import TimingConstraints
from repro.core.notation import describe_code
from repro.datasets.registry import get_dataset
from repro.online import OnlineCensus

WINDOW = 12_000.0  # trailing window W: the last ~3.3 hours of traffic
CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)


def remote_dashboard(address: str, *, ticks: int, interval: float) -> None:
    """Poll a census server's ``stats`` endpoint and render each snapshot."""
    from repro.obs import summarize_histogram
    from repro.service.client import ServiceClient

    host, _, port = address.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port)) as client:
        health = client.health()
        graph = health.get("graph", {})
        print(
            f"census service at {address}: {health['status']} — "
            f"{graph.get('events', '?')} events of {graph.get('name', '?')!r}, "
            f"{health['alive']}/{health['workers']} workers alive\n"
        )
        previous: dict[str, float] = {}
        for tick in range(1, ticks + 1):
            stats = client.stats(timeout=30)
            service = stats["service"]
            metrics = stats["metrics"]
            counters = metrics.get("counters", {})
            gauges = metrics.get("gauges", {})
            requests = {
                name.split("op=", 1)[1].rstrip("}"): n
                for name, n in counters.items()
                if name.startswith("service.requests{")
            }
            total = sum(requests.values())
            rate = (total - previous.get("total", total)) / interval
            previous["total"] = total
            sheds = sum(
                n for name, n in counters.items() if name.startswith("service.shed")
            )
            print(
                f"--- tick {tick}/{ticks} (uptime {service['uptime_s']:.0f}s, "
                f"{total} requests served, {rate:,.1f} req/sec since last tick) ---"
            )
            print(
                f"pool: {service['pool']['alive']}/{service['pool']['workers']} "
                f"workers, {service['pool']['completed']} jobs completed, "
                f"{service['pool']['deaths']} deaths | "
                f"queue depth {int(gauges.get('service.queue.depth', 0))} "
                f"(max_pending {service['max_pending']}, "
                f"overflow={service['overflow']}, {int(sheds)} shed)"
            )
            for op in sorted(requests):
                hist = metrics.get("histograms", {}).get(
                    f"service.request.seconds{{op={op}}}"
                )
                summary = summarize_histogram(hist) if hist else {}
                if summary.get("count"):
                    print(
                        f"  {op:<12} x{requests[op]:<6} "
                        f"p50={summary['p50'] * 1000:.1f}ms "
                        f"p99={summary['p99'] * 1000:.1f}ms"
                    )
            for name, stream in service.get("streams", {}).items():
                print(
                    f"  stream {name!r}: {stream['pushed']} pushed, "
                    f"{stream['live']} live instances in W={stream['window']:g}s"
                )
            if tick < ticks:
                time.sleep(interval)
        print("\nremote dashboard done (server keeps running)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help="poll a running census service's stats endpoint instead of "
        "replaying the dataset locally",
    )
    parser.add_argument(
        "--ticks", type=int, default=4, help="dashboard refreshes (remote mode)"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (remote mode)",
    )
    args = parser.parse_args()
    if args.remote:
        remote_dashboard(args.remote, ticks=args.ticks, interval=args.interval)
        return

    graph = get_dataset("sms-copenhagen", scale=0.3)
    events = graph.events
    print(
        f"streaming {len(events)} events of {graph.name!r} through the "
        f"online census\n(3-event motifs, {CONSTRAINTS.describe()}, "
        f"W={WINDOW:g}s)\n"
    )

    # Enable observability *before* building the engine — hot paths bind
    # the recorder at construction time.
    registry = obs.enable(obs.MetricsRegistry())
    engine = OnlineCensus(
        3, CONSTRAINTS, WINDOW, max_nodes=3, prune_every=4096
    )
    checkpoints = {len(events) * k // 4 for k in (1, 2, 3, 4)}
    started = time.perf_counter()
    for i, event in enumerate(events, start=1):
        engine.push(event)
        if i in checkpoints:
            elapsed = time.perf_counter() - started
            rate = i / elapsed if elapsed > 0 else float("inf")
            day = engine.now / 86_400
            print(
                f"--- tick {i}/{len(events)} (stream day {day:.1f}, "
                f"{rate:,.0f} events/sec sustained) ---"
            )
            print(
                f"window holds {engine.live_instances} instances "
                f"({engine.discovered} discovered, {engine.expired} expired, "
                f"{engine.live_prefixes} prefixes live)"
            )
            push = registry.histograms.get("online.push.seconds")
            if push is not None and push.count:
                print(
                    f"push latency so far: "
                    f"p50={push.quantile(0.5) * 1e6:.0f}us "
                    f"p99={push.quantile(0.99) * 1e6:.0f}us "
                    f"max={push.vmax * 1e6:.0f}us "
                    f"(heap depth {int(registry.gauges.get('online.expiry_heap.depth', 0))})"
                )
            shares = sorted(
                engine.proportions().items(), key=lambda kv: -kv[1]
            )[:6]
            print(
                textplot.bar_chart(
                    [code for code, _ in shares],
                    [round(100 * share, 1) for _, share in shares],
                    title="rolling motif mix (% of window instances):",
                )
            )
            print()

    top = engine.counts().most_common(3)
    print("final window, dominant motifs:")
    for code, n in top:
        print(f"  {code}  x{n:<5} {describe_code(code)}")

    print()
    print(obs.render_table(registry.snapshot()))
    obs.disable()


if __name__ == "__main__":
    main()
