"""Live dashboard: rolling motif mix of an event stream, tick by tick.

An operations view built on the online engine: replay the Copenhagen SMS
dataset as a live stream through :class:`repro.online.OnlineCensus` and,
at a few checkpoints along the replay, print what a wall dashboard would
show — throughput so far, the live instance ledger, push-latency
quantiles from the observability layer, and the rolling motif-mix bar
chart for the trailing window.  The punchline: the mix is available
after *every* event at a per-event cost, no batch recount.
"""

import time

import repro.obs as obs
from repro.analysis import textplot
from repro.core.constraints import TimingConstraints
from repro.core.notation import describe_code
from repro.datasets.registry import get_dataset
from repro.online import OnlineCensus

WINDOW = 12_000.0  # trailing window W: the last ~3.3 hours of traffic
CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)


def main() -> None:
    graph = get_dataset("sms-copenhagen", scale=0.3)
    events = graph.events
    print(
        f"streaming {len(events)} events of {graph.name!r} through the "
        f"online census\n(3-event motifs, {CONSTRAINTS.describe()}, "
        f"W={WINDOW:g}s)\n"
    )

    # Enable observability *before* building the engine — hot paths bind
    # the recorder at construction time.
    registry = obs.enable(obs.MetricsRegistry())
    engine = OnlineCensus(
        3, CONSTRAINTS, WINDOW, max_nodes=3, prune_every=4096
    )
    checkpoints = {len(events) * k // 4 for k in (1, 2, 3, 4)}
    started = time.perf_counter()
    for i, event in enumerate(events, start=1):
        engine.push(event)
        if i in checkpoints:
            elapsed = time.perf_counter() - started
            rate = i / elapsed if elapsed > 0 else float("inf")
            day = engine.now / 86_400
            print(
                f"--- tick {i}/{len(events)} (stream day {day:.1f}, "
                f"{rate:,.0f} events/sec sustained) ---"
            )
            print(
                f"window holds {engine.live_instances} instances "
                f"({engine.discovered} discovered, {engine.expired} expired, "
                f"{engine.live_prefixes} prefixes live)"
            )
            push = registry.histograms.get("online.push.seconds")
            if push is not None and push.count:
                print(
                    f"push latency so far: "
                    f"p50={push.quantile(0.5) * 1e6:.0f}us "
                    f"p99={push.quantile(0.99) * 1e6:.0f}us "
                    f"max={push.vmax * 1e6:.0f}us "
                    f"(heap depth {int(registry.gauges.get('online.expiry_heap.depth', 0))})"
                )
            shares = sorted(
                engine.proportions().items(), key=lambda kv: -kv[1]
            )[:6]
            print(
                textplot.bar_chart(
                    [code for code, _ in shares],
                    [round(100 * share, 1) for _, share in shares],
                    title="rolling motif mix (% of window instances):",
                )
            )
            print()

    top = engine.counts().most_common(3)
    print("final window, dominant motifs:")
    for code, n in top:
        print(f"  {code}  x{n:<5} {describe_code(code)}")

    print()
    print(obs.render_table(registry.snapshot()))
    obs.disable()


if __name__ == "__main__":
    main()
