"""Node-role discovery with temporal motif orbits — the Hulovatyy use case.

Hulovatyy et al. featurize each node by its participation counts across
(dynamic graphlet, orbit) pairs and use those vectors to predict
aging-related genes.  This example builds the same per-node profiles on a
Q&A network, then separates *askers* from *answerers* using nothing but
orbit features — the temporal analogue of graphlet degree vectors.

Run with:  python examples/node_roles.py
"""

from collections import Counter

from repro import TimingConstraints, get_dataset
from repro.core.motif import node_motif_profiles
from repro.core.notation import parse_code


def orbit_role_scores(profile: Counter) -> tuple[int, int]:
    """(source-side, target-side) participation of one node.

    A node's orbit tells which digit it plays in the motif code; summing
    over the code's events tells whether the node mostly *sends* (answers,
    in Q&A semantics u→v = "u answers v") or mostly *receives*.
    """
    sent = 0
    received = 0
    for (code, orbit), count in profile.items():
        for u, v in parse_code(code):
            if u == orbit:
                sent += count
            if v == orbit:
                received += count
    return sent, received


def main() -> None:
    graph = get_dataset("stackoverflow", scale=0.4)
    constraints = TimingConstraints(delta_c=1500, delta_w=3000)
    print(f"profiling nodes of {graph} ...")
    profiles = node_motif_profiles(graph, 3, constraints, max_nodes=3)
    print(f"{len(profiles)} nodes participate in 3-event motifs")
    print()

    # ------------------------------------------------------------------
    # classify nodes by orbit balance
    # ------------------------------------------------------------------
    answerers: list[tuple[int, float, int]] = []
    askers: list[tuple[int, float, int]] = []
    for node, profile in profiles.items():
        sent, received = orbit_role_scores(profile)
        total = sent + received
        if total < 10:
            continue  # too little evidence
        balance = sent / total
        if balance > 0.7:
            answerers.append((node, balance, total))
        elif balance < 0.3:
            askers.append((node, balance, total))

    answerers.sort(key=lambda x: -x[2])
    askers.sort(key=lambda x: -x[2])
    print(f"strong answerers (send-heavy orbits): {len(answerers)}")
    for node, balance, total in answerers[:5]:
        print(f"  node {node}: {100 * balance:.0f}% sending, {total} orbit slots")
    print(f"strong askers (receive-heavy orbits): {len(askers)}")
    for node, balance, total in askers[:5]:
        print(f"  node {node}: {100 * balance:.0f}% sending, {total} orbit slots")
    print()

    # ------------------------------------------------------------------
    # the in-burst signature: top askers anchor in-burst motifs
    # ------------------------------------------------------------------
    if askers:
        top_asker = askers[0][0]
        profile = profiles[top_asker]
        print(f"motif spectrum of the top asker (node {top_asker}):")
        for (code, orbit), count in profile.most_common(5):
            print(f"  {count:4d} × motif {code}, orbit {orbit}")
        print(
            "\n-> receive-heavy orbits inside in-burst motifs (x→v, y→v) are"
            "\n   the Q&A asker signature the paper's Figure 3 discussion"
            "\n   attributes to StackOverflow."
        )


if __name__ == "__main__":
    main()
