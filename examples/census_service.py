"""Census-as-a-service: boot the concurrent server, drive it as a client.

The deployment story of the service layer in one script: one
:class:`~repro.service.server.CensusServer` owns the Copenhagen SMS
dataset (materialized once, memory-mapped read-only by every worker
process), and many clients query it concurrently over newline-delimited
JSON — full censuses, dashboard-style window lookups, a live push
stream, and the merged server+worker observability snapshot.  The
server's answers are checked bit-identical to the serial library calls
they replace: same counts, same first-appearance key order, under
concurrency.
"""

import threading

from repro.algorithms.counting import run_census
from repro.core.constraints import TimingConstraints
from repro.core.notation import describe_code
from repro.datasets.registry import get_dataset
from repro.service.client import ServiceClient
from repro.service.server import start_in_thread

CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)


def main() -> None:
    # One server, booted on a background thread with two worker
    # processes (production would run `python -m repro.experiments serve`).
    handle = start_in_thread(dataset="sms-copenhagen", scale=0.2, workers=2)
    try:
        with ServiceClient(handle.host, handle.port) as client:
            health = client.health()
            graph_meta = health["graph"]
            print(
                f"census service up at {handle.host}:{handle.port} — "
                f"{graph_meta['events']} events of {graph_meta['name']!r}, "
                f"{health['alive']} workers sharing one page directory\n"
            )

            # A full census over the wire, checked against the serial call.
            result = client.census(
                delta_c=CONSTRAINTS.delta_c,
                delta_w=CONSTRAINTS.delta_w,
                n_events=3,
                max_nodes=3,
            )
            graph = get_dataset("sms-copenhagen", scale=0.2)  # deterministic
            oracle = run_census(graph, 3, CONSTRAINTS, max_nodes=3)
            assert result["total"] == oracle.total
            assert result["codes"] == dict(oracle.code_counts)
            assert list(result["codes"]) == list(oracle.code_counts)
            print(
                f"census over RPC: {result['total']} instances in "
                f"{result['elapsed'] * 1000:.0f}ms worker time — "
                "bit-identical to the serial run_census (key order included)"
            )
            top = sorted(result["codes"].items(), key=lambda kv: -kv[1])[:3]
            for code, n in top:
                print(f"  {code}  x{n:<6} {describe_code(code)}")
            print()

        # Concurrent clients: each thread opens its own connection and
        # slices a different span out of the served timeline.
        answers: dict[int, int] = {}

        def lookup(idx: int, t_lo: float, t_hi: float) -> None:
            with ServiceClient(handle.host, handle.port) as c:
                window = c.window(
                    t_lo,
                    t_hi,
                    delta_c=CONSTRAINTS.delta_c,
                    delta_w=CONSTRAINTS.delta_w,
                    n_events=3,
                    max_nodes=3,
                )
                answers[idx] = window["total"]

        times = graph.times
        spans = [
            (times[(len(times) * k) // 5], times[(len(times) * (k + 1)) // 5 - 1])
            for k in range(4)
        ]
        threads = [
            threading.Thread(target=lookup, args=(i, lo, hi))
            for i, (lo, hi) in enumerate(spans)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print(f"{len(answers)} concurrent window queries answered:")
        for i, (lo, hi) in enumerate(spans):
            print(f"  window [{lo:>9.0f}, {hi:>9.0f}]s -> {answers[i]} instances")
        print()

        with ServiceClient(handle.host, handle.port) as client:
            # A live push stream: trailing-window counters maintained
            # server-side, per event, no batch recount.
            stream_events = [(e.u, e.v, e.t) for e in graph.events[:300]]
            pushed = client.push(
                stream_events,
                stream="demo",
                window=6000.0,
                delta_c=CONSTRAINTS.delta_c,
                delta_w=CONSTRAINTS.delta_w,
                n_events=3,
                max_nodes=3,
                want_counts=True,
            )
            print(
                f"push stream: {pushed['accepted']} events accepted, "
                f"{pushed['live']} instances live in the trailing "
                f"{pushed['window']:g}s window ({pushed['total']} counted)"
            )

            stats = client.stats(timeout=30)
            service = stats["service"]
            counters = stats["metrics"]["counters"]
            served = sum(
                n
                for name, n in counters.items()
                if name.startswith("service.requests{")
            )
            print(
                f"stats: {served} requests served, "
                f"{service['pool']['completed']} worker jobs, "
                f"{service['worker_snapshots']} worker snapshots merged, "
                f"{service['pool']['deaths']} deaths"
            )
    finally:
        handle.stop()
    print("\nserver shut down cleanly")


if __name__ == "__main__":
    main()
