"""Tests for maximal temporal components (Kovanen's E_max substrate)."""

import pytest

from repro.algorithms.components import (
    component_of,
    component_size_distribution,
    component_subgraphs,
    largest_component_fraction,
    temporal_components,
)
from repro.core.temporal_graph import TemporalGraph


@pytest.fixture
def bursty_graph() -> TemporalGraph:
    """Two bursts separated by a long quiet period."""
    return TemporalGraph.from_tuples(
        [
            (0, 1, 0),
            (1, 2, 5),
            (0, 2, 8),  # burst A
            (0, 1, 1000),
            (1, 3, 1004),
            (3, 0, 1009),  # burst B
        ]
    )


class TestPartition:
    def test_partition_covers_all_events(self, bursty_graph):
        comps = temporal_components(bursty_graph, delta_c=20)
        flat = sorted(i for comp in comps for i in comp)
        assert flat == list(range(len(bursty_graph)))

    def test_bursts_separate(self, bursty_graph):
        comps = temporal_components(bursty_graph, delta_c=20)
        assert [len(c) for c in comps] == [3, 3]

    def test_large_delta_c_merges(self, bursty_graph):
        comps = temporal_components(bursty_graph, delta_c=2000)
        assert len(comps) == 1

    def test_adjacency_needs_shared_node(self):
        g = TemporalGraph.from_tuples([(0, 1, 0), (2, 3, 1)])
        comps = temporal_components(g, delta_c=100)
        assert len(comps) == 2

    def test_adjacency_is_per_node_consecutive(self):
        """Events of one node far apart in its own timeline do not join,
        even if globally close to other events."""
        g = TemporalGraph.from_tuples([(0, 1, 0), (0, 2, 50), (0, 1, 100)])
        comps = temporal_components(g, delta_c=49)
        assert len(comps) == 3
        comps = temporal_components(g, delta_c=50)
        assert len(comps) == 1

    def test_rejects_bad_delta(self, bursty_graph):
        with pytest.raises(ValueError):
            temporal_components(bursty_graph, delta_c=0)

    def test_empty_graph(self):
        assert temporal_components(TemporalGraph([]), delta_c=10) == []


class TestMonotonicity:
    def test_growing_delta_c_only_merges(self, small_sms):
        """Components at a larger ΔC are unions of smaller-ΔC components."""
        g = small_sms.head(400)
        fine = component_of(g, delta_c=60)
        coarse = component_of(g, delta_c=600)
        # map: fine component id -> set of coarse ids it lands in
        landing: dict[int, set[int]] = {}
        for idx in range(len(g)):
            landing.setdefault(fine[idx], set()).add(coarse[idx])
        assert all(len(targets) == 1 for targets in landing.values())


class TestSummaries:
    def test_component_of_matches_partition(self, bursty_graph):
        mapping = component_of(bursty_graph, delta_c=20)
        comps = temporal_components(bursty_graph, delta_c=20)
        for cid, comp in enumerate(comps):
            assert all(mapping[i] == cid for i in comp)

    def test_subgraphs(self, bursty_graph):
        subs = list(component_subgraphs(bursty_graph, delta_c=20))
        assert [len(s) for s in subs] == [3, 3]
        subs_filtered = list(
            component_subgraphs(bursty_graph, delta_c=20, min_events=4)
        )
        assert subs_filtered == []

    def test_size_distribution(self, bursty_graph):
        assert component_size_distribution(bursty_graph, delta_c=20) == {3: 2}

    def test_largest_fraction(self, bursty_graph):
        assert largest_component_fraction(bursty_graph, delta_c=20) == 0.5
        assert largest_component_fraction(bursty_graph, delta_c=2000) == 1.0
        assert largest_component_fraction(TemporalGraph([]), delta_c=10) == 0.0

    def test_percolation_direction_on_dataset(self, small_sms):
        g = small_sms.head(500)
        low = largest_component_fraction(g, delta_c=10)
        high = largest_component_fraction(g, delta_c=100_000)
        assert low <= high
