"""The census service: protocol, parity vs serial oracles, failure paths.

The serving contract under test:

* every compute op answers **bit-identically** to the serial library
  call it wraps (values *and* key order — the ``merge_counts``
  first-appearance invariant extends over the wire);
* the admission queue sheds deterministically (reject with
  ``retry_after``, or degrade to sampling estimates with error bars);
* the failure paths die cleanly: malformed JSON and oversized frames
  get protocol errors, a client vanishing mid-request never wedges the
  server, and a worker killed mid-request errors that one request,
  respawns, and keeps serving.

Servers boot on a background thread via ``start_in_thread`` with
ephemeral ports, so the suite runs in parallel CI legs without port
coordination.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.algorithms.counting import count_motifs, run_census
from repro.core.constraints import TimingConstraints
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import ActivityConfig, generate
from repro.online import OnlineCensus
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    ProtocolError,
    constraint_fields,
    decode_line,
    encode,
    validate_request,
)
from repro.service.server import start_in_thread
from repro.service.workers import WorkerPool, open_graph_source

CONSTRAINTS = TimingConstraints(delta_c=1500.0, delta_w=3000.0)

CONFIG = ActivityConfig(
    n_nodes=60,
    n_events=400,
    timespan=40_000.0,
    p_reply=0.3,
    p_repeat=0.2,
    p_cc=0.2,
    p_forward=0.15,
)


def _events():
    return [(e.u, e.v, e.t) for e in generate(CONFIG, seed=7).events]


@pytest.fixture(scope="module")
def served_events():
    return _events()


@pytest.fixture(scope="module")
def graph(served_events):
    return TemporalGraph.from_tuples(served_events)


@pytest.fixture(scope="module")
def server(served_events):
    handle = start_in_thread(events=served_events, workers=2)
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port) as c:
        yield c


# ----------------------------------------------------------------------
# protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        frame = encode({"op": "health", "id": 3})
        assert frame.endswith(b"\n")
        assert decode_line(frame) == {"op": "health", "id": 3}

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_line(b"{nope\n")
        assert err.value.code == "bad_json"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as err:
            decode_line(b"[1, 2]\n")
        assert err.value.code == "bad_request"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"id": 1})
        assert err.value.code == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"op": "frobnicate"})
        assert err.value.code == "unknown_op"

    def test_constraints_required(self):
        with pytest.raises(ProtocolError) as err:
            constraint_fields({})
        assert err.value.code == "bad_request"
        assert "unconstrained" in err.value.message

    def test_constraints_validate(self):
        assert constraint_fields({"delta_w": 10}) == (None, 10.0)
        assert constraint_fields({"delta_c": 2, "delta_w": 10}) == (2.0, 10.0)
        with pytest.raises(ProtocolError):
            constraint_fields({"delta_c": -1})
        with pytest.raises(ProtocolError):
            constraint_fields({"delta_w": "wide"})


# ----------------------------------------------------------------------
# graph sources
# ----------------------------------------------------------------------
class TestSources:
    def test_events_source(self, served_events, graph):
        opened = open_graph_source({"kind": "events", "events": served_events})
        assert opened.events == graph.events

    def test_dataset_source(self):
        opened = open_graph_source(
            {"kind": "dataset", "name": "sms-copenhagen", "scale": 0.05}
        )
        assert len(opened.events) > 0

    def test_pages_source(self, graph, tmp_path):
        pytest.importorskip("numpy")
        graph.save(tmp_path / "pages")
        opened = open_graph_source({"kind": "pages", "path": str(tmp_path / "pages")})
        assert opened.events == graph.events

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            open_graph_source({"kind": "carrier-pigeon"})


# ----------------------------------------------------------------------
# compute-op parity against the serial library
# ----------------------------------------------------------------------
class TestComputeParity:
    def test_census_bit_identical(self, client, graph):
        result = client.census(
            n_events=3, delta_c=1500.0, delta_w=3000.0, max_nodes=3
        )
        oracle = run_census(graph, 3, CONSTRAINTS, max_nodes=3)
        assert result["total"] == oracle.total
        assert result["codes"] == dict(oracle.code_counts)
        # Key order is part of the contract (first-appearance order).
        assert list(result["codes"]) == list(oracle.code_counts)
        assert result["pair_groups"] == oracle.pair_group_counts()

    def test_count_matches(self, client, graph):
        result = client.count(n_events=3, delta_w=3000.0, max_nodes=3)
        oracle = count_motifs(graph, 3, TimingConstraints(delta_w=3000.0), max_nodes=3)
        assert result["codes"] == dict(oracle)
        assert result["total"] == sum(oracle.values())

    def test_window_matches_slice(self, client, graph):
        times = graph.times
        t_lo, t_hi = times[0], times[len(times) // 2]
        result = client.window(t_lo, t_hi, n_events=3, delta_w=3000.0, max_nodes=3)
        oracle = run_census(
            graph.slice(t_lo, t_hi), 3, TimingConstraints(delta_w=3000.0), max_nodes=3
        )
        assert result["codes"] == dict(oracle.code_counts)
        assert list(result["codes"]) == list(oracle.code_counts)

    def test_per_request_jobs_identical(self, client):
        serial = client.census(n_events=3, delta_w=3000.0, max_nodes=3)
        sharded = client.census(n_events=3, delta_w=3000.0, max_nodes=3, jobs=2)
        assert sharded["codes"] == serial["codes"]
        assert list(sharded["codes"]) == list(serial["codes"])

    def test_estimate_q1_is_exact(self, client, graph):
        pytest.importorskip("numpy")
        result = client.estimate(q=1.0, n_events=3, delta_w=3000.0, max_nodes=3)
        oracle = count_motifs(graph, 3, TimingConstraints(delta_w=3000.0), max_nodes=3)
        assert result["codes"] == {code: float(n) for code, n in oracle.items()}
        assert all(err == 0.0 for err in result["stderr"].values())

    def test_estimate_seeded_reproducible(self, client):
        pytest.importorskip("numpy")
        kwargs = dict(q=0.5, seed=11, n_events=3, delta_w=3000.0, max_nodes=3)
        first = client.estimate(**kwargs)
        second = client.estimate(**kwargs)
        assert first["codes"] == second["codes"]
        assert first["stderr"] == second["stderr"]

    def test_request_validation_over_wire(self, client):
        with pytest.raises(ServiceError) as err:
            client.census()  # no constraints
        assert err.value.code == "bad_request"
        with pytest.raises(ServiceError) as err:
            client.call("window", delta_w=10.0)  # no window bounds
        assert err.value.code == "bad_request"
        with pytest.raises(ServiceError) as err:
            client.census(delta_w=3000.0, n_events=40)
        assert err.value.code == "bad_request"


# ----------------------------------------------------------------------
# push streams
# ----------------------------------------------------------------------
class TestPushStream:
    def test_push_parity_with_online_engine(self, client, served_events):
        window = 6000.0
        chunk = 50
        oracle = OnlineCensus(3, CONSTRAINTS, window, max_nodes=3)
        name = "parity"
        for start in range(0, 300, chunk):
            batch = served_events[start : start + chunk]
            result = client.push(
                batch,
                stream=name,
                window=window,
                delta_c=1500.0,
                delta_w=3000.0,
                n_events=3,
                max_nodes=3,
                want_counts=True,
            )
            for ev in batch:
                oracle.push(ev)
            assert result["accepted"] == len(batch)
            assert result["now"] == oracle.now
            assert result["codes"] == dict(oracle.counts())
        assert client.stream_close(name)["closed"] is True

    def test_push_requires_config(self, client):
        with pytest.raises(ServiceError) as err:
            client.push([(0, 1, 5.0)], stream="unconfigured")
        assert err.value.code == "bad_request"
        assert "window" in str(err.value)

    def test_push_time_regression_rejected(self, client):
        name = "backwards"
        client.push(
            [(0, 1, 100.0)], stream=name, window=50.0, delta_w=10.0
        )
        with pytest.raises(ServiceError) as err:
            client.push([(1, 2, 5.0)], stream=name)
        assert err.value.code == "bad_stream"
        client.stream_close(name)

    def test_push_batch_cap(self, served_events):
        handle = start_in_thread(
            events=served_events[:50], workers=1, max_push_batch=10
        )
        try:
            with ServiceClient(handle.host, handle.port) as c:
                with pytest.raises(ServiceError) as err:
                    c.push(
                        [(0, 1, float(i)) for i in range(11)],
                        window=50.0,
                        delta_w=10.0,
                    )
                assert err.value.code == "payload_too_large"
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# the multi-view stream plane
# ----------------------------------------------------------------------
class TestMultiViewStream:
    def test_multiview_push_parity_with_local_engines(self, client, served_events):
        """Named views over the wire == independent local engines."""
        name = "mv-parity"
        oracles = {
            "default": OnlineCensus(3, CONSTRAINTS, 6000.0, max_nodes=3),
            "wide": OnlineCensus(3, CONSTRAINTS, 12000.0, max_nodes=3),
            "narrow": OnlineCensus(3, CONSTRAINTS, 1500.0, max_nodes=3),
        }
        client.push(
            [],
            stream=name,
            window=6000.0,
            retention=12000.0,
            delta_c=1500.0,
            delta_w=3000.0,
            n_events=3,
            max_nodes=3,
        )
        assert client.view_add("wide", 12000.0, stream=name)["degraded"] is False
        client.view_add("narrow", 1500.0, stream=name)
        chunk = 60
        for start in range(0, 300, chunk):
            batch = served_events[start : start + chunk]
            result = client.push(batch, stream=name, want_counts=True, view="wide")
            for oracle in oracles.values():
                for ev in batch:
                    oracle.push(ev)
            # want_counts answered from the requested view, bit-identically.
            assert list(result["codes"].items()) == list(oracles["wide"].counts().items())
            for view, oracle in oracles.items():
                payload = client.view_counts(view, stream=name)
                assert payload["exact"] is True
                assert list(payload["codes"].items()) == list(oracle.counts().items())
                assert payload["total"] == oracle.live_instances
        assert result["views"]["narrow"]["live"] == oracles["narrow"].live_instances
        client.stream_close(name)

    def test_view_backfill_on_late_add(self, client, served_events):
        """A view added mid-stream backfills from the shared ledger."""
        name = "mv-backfill"
        oracle = OnlineCensus(3, CONSTRAINTS, 3000.0, max_nodes=3)
        client.push(
            served_events[:150],
            stream=name,
            window=6000.0,
            delta_c=1500.0,
            delta_w=3000.0,
            n_events=3,
            max_nodes=3,
        )
        for ev in served_events[:150]:
            oracle.push(ev)
        added = client.view_add("late", 3000.0, stream=name)
        assert added["views"] == 2
        payload = client.view_counts("late", stream=name)
        assert payload["codes"] == dict(oracle.counts())
        client.stream_close(name)

    def test_view_ops_error_codes(self, client):
        with pytest.raises(ServiceError) as err:
            client.view_add("v", 10.0, stream="never-pushed")
        assert err.value.code == "unknown_stream"
        name = "mv-errors"
        client.push([(0, 1, 1.0)], stream=name, window=50.0, delta_w=10.0)
        with pytest.raises(ServiceError) as err:
            client.view_counts("missing", stream=name)
        assert err.value.code == "unknown_view"
        with pytest.raises(ServiceError) as err:
            client.view_add("too-wide", 100.0, stream=name)  # > retention
        assert err.value.code == "bad_request"
        assert "retention" in str(err.value)
        client.stream_close(name)

    def test_view_drop_is_idempotent_over_wire(self, client):
        name = "mv-drop"
        client.push([(0, 1, 1.0)], stream=name, window=50.0, delta_w=10.0)
        client.view_add("v", 25.0, stream=name)
        assert client.view_drop("v", stream=name)["dropped"] is True
        assert client.view_drop("v", stream=name)["dropped"] is False
        with pytest.raises(ServiceError) as err:
            client.view_counts("v", stream=name)
        assert err.value.code == "unknown_view"
        client.stream_close(name)

    def test_view_overload_degrades_to_estimate(self, served_events):
        pytest.importorskip("numpy")
        handle = start_in_thread(
            events=served_events[:50],
            workers=1,
            overflow="degrade",
            max_exact_views=2,
            degrade_q=1.0,
        )
        try:
            with ServiceClient(handle.host, handle.port) as c:
                name = "mv-degrade"
                c.push(
                    served_events[:200],
                    stream=name,
                    window=6000.0,
                    delta_c=1500.0,
                    delta_w=3000.0,
                    n_events=3,
                    max_nodes=3,
                )
                assert c.view_add("exact-2", 3000.0, stream=name)["degraded"] is False
                # The third exact view busts the budget: admitted degraded.
                added = c.view_add("shed", 3000.0, stream=name, seed=11)
                assert added["degraded"] is True
                payload = c.view_counts("shed", stream=name)
                assert payload["exact"] is False
                assert payload["method"] == "root_sampling"
                assert set(payload["stderr"]) == set(payload["codes"])
                # q=1.0 samples every root: the estimate equals the truth.
                exact = c.view_counts("exact-2", stream=name)
                assert payload["codes"] == exact["codes"]
                counters = c.stats(timeout=15)["metrics"]["counters"]
                assert counters["service.view.shed{policy=degrade}"] >= 1
                assert counters["online.view.degraded"] >= 1
        finally:
            handle.stop()

    def test_view_drop_after_degrade_over_wire(self, served_events):
        """Dropping a degraded node-sliced view must not error even when
        another sliced view shares a node bucket (regression: double
        _unroute raised an internal error on the view_drop op)."""
        pytest.importorskip("numpy")
        handle = start_in_thread(
            events=served_events[:50],
            workers=1,
            overflow="degrade",
            max_exact_views=2,
            degrade_q=1.0,
        )
        try:
            with ServiceClient(handle.host, handle.port) as c:
                name = "mv-degrade-drop"
                c.push(
                    served_events[:100],
                    stream=name,
                    window=6000.0,
                    delta_c=1500.0,
                    delta_w=3000.0,
                    n_events=3,
                    max_nodes=3,
                )
                c.view_add("sliced-a", 3000.0, stream=name, nodes=[0, 1, 2])
                # Shares node buckets with sliced-a; busts the exact
                # budget, so it is admitted degraded (pre-unrouted).
                added = c.view_add("shed", 3000.0, stream=name, nodes=[0, 1, 3])
                assert added["degraded"] is True
                assert c.view_drop("shed", stream=name)["dropped"] is True
                # The surviving sliced view still answers exactly.
                assert c.view_counts("sliced-a", stream=name)["exact"] is True
                c.push(served_events[100:120], stream=name)
        finally:
            handle.stop()

    def test_view_overload_rejects_without_degrade(self, served_events):
        handle = start_in_thread(
            events=served_events[:50], workers=1, overflow="reject", max_exact_views=1
        )
        try:
            with ServiceClient(handle.host, handle.port) as c:
                name = "mv-reject"
                c.push([(0, 1, 1.0)], stream=name, window=50.0, delta_w=10.0)
                with pytest.raises(ServiceError) as err:
                    c.view_add("over", 25.0, stream=name)
                assert err.value.code == "overloaded"
                assert "max_exact_views" in str(err.value)
                counters = c.stats(timeout=15)["metrics"]["counters"]
                assert counters["service.view.shed{policy=reject}"] >= 1
        finally:
            handle.stop()

    def test_worker_death_does_not_disturb_streams(self, served_events):
        """Streams live in the server process: a worker dying mid-stream
        loses nothing — named views keep counting through the respawn."""
        handle = start_in_thread(events=served_events[:50], workers=1)
        try:
            oracle = OnlineCensus(3, CONSTRAINTS, 6000.0, max_nodes=3)
            with ServiceClient(handle.host, handle.port) as c:
                name = "mv-survivor"
                c.push(
                    served_events[:100],
                    stream=name,
                    window=6000.0,
                    delta_c=1500.0,
                    delta_w=3000.0,
                    n_events=3,
                    max_nodes=3,
                )
                c.view_add("watch", 3000.0, stream=name)
                for ev in served_events[:100]:
                    oracle.push(ev)
                victim = c.health()["pids"][0]
                os.kill(victim, signal.SIGKILL)
                # The stream plane never touches the pool: pushes keep
                # landing while the dead worker respawns.
                result = c.push(
                    served_events[100:200], stream=name, want_counts=True
                )
                for ev in served_events[100:200]:
                    oracle.push(ev)
                assert result["accepted"] == 100
                assert result["codes"] == dict(oracle.counts())
                assert "watch" in result["views"]
                # The pool notices the death on the next compute request
                # (which may be the one that trips it), respawns, and the
                # stream's views are untouched throughout.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    try:
                        assert c.count(n_events=2, delta_w=3000.0)["total"] >= 0
                        break
                    except ServiceError as exc:
                        assert exc.code == "worker_died"
                        time.sleep(0.2)
                else:
                    pytest.fail("worker pool did not respawn after SIGKILL")
                assert c.health()["pids"][0] != victim
                payload = c.view_counts("watch", stream=name)
                assert payload["exact"] is True and payload["discovered"] > 0
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# stats / health / observability plumbing
# ----------------------------------------------------------------------
class TestStatsHealth:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["alive"] == health["workers"] == 2
        assert len(health["pids"]) == 2
        assert health["graph"]["events"] == CONFIG.n_events

    def test_stats_merges_worker_snapshots(self, client):
        client.census(n_events=3, delta_w=3000.0, max_nodes=3)
        stats = client.stats(timeout=15)
        service = stats["service"]
        assert service["pool"]["workers"] == 2
        assert service["worker_snapshots"] >= 1
        metrics = stats["metrics"]
        # Server-side seams...
        assert metrics["counters"]["service.requests{op=census}"] >= 1
        assert "service.request.seconds{op=census}" in metrics["histograms"]
        # ...merged with worker-side engine/storage seams.
        assert any(name.startswith("engine.") for name in metrics["counters"])

    def test_queue_depth_gauge_present(self, client):
        client.count(n_events=2, delta_w=3000.0)
        stats = client.stats(timeout=15)
        assert "service.queue.depth" in stats["metrics"]["gauges"]


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------
def _raw_connection(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=30)
    return sock


class TestFailurePaths:
    def test_malformed_json_keeps_connection(self, server):
        with _raw_connection(server) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            response = json.loads(fh.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_json"
            # The connection survives a malformed frame.
            fh.write(encode({"op": "health", "id": 2}))
            fh.flush()
            response = json.loads(fh.readline())
            assert response["ok"] is True
            assert response["id"] == 2

    def test_oversized_payload_errors_and_closes(self, served_events):
        handle = start_in_thread(events=served_events[:50], workers=1, max_line=4096)
        try:
            with _raw_connection(handle) as sock:
                fh = sock.makefile("rwb")
                fh.write(b'{"op": "count", "pad": "' + b"x" * 8192 + b'"}\n')
                fh.flush()
                response = json.loads(fh.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "payload_too_large"
                # Documented behavior: the connection closes after an
                # unsynchronizable oversized frame.
                assert fh.readline() == b""
        finally:
            handle.stop()

    def test_client_disconnect_mid_request(self, server):
        # Fire a request and vanish before the response: the server must
        # keep serving everyone else.
        sock = _raw_connection(server)
        sock.sendall(
            encode({"op": "census", "n_events": 3, "delta_w": 3000.0, "max_nodes": 3})
        )
        sock.close()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with ServiceClient(server.host, server.port) as c:
                health = c.health()
                if health["status"] == "ok":
                    assert c.count(n_events=2, delta_w=3000.0)["total"] >= 0
                    return
            time.sleep(0.2)  # pragma: no cover - only under extreme load
        pytest.fail("server did not recover from a mid-request disconnect")

    def test_worker_death_mid_request_errors_and_respawns(self, served_events):
        handle = start_in_thread(events=served_events[:50], workers=1)
        try:
            with ServiceClient(handle.host, handle.port) as c:
                victim = c.health()["pids"][0]
                errors: list[Exception] = []

                def doomed():
                    try:
                        c.sleep(30.0)
                    except ServiceError as exc:
                        errors.append(exc)

                thread = threading.Thread(target=doomed)
                thread.start()
                time.sleep(0.3)  # let the sleep job land on the worker
                os.kill(victim, signal.SIGKILL)
                thread.join(timeout=30)
                assert not thread.is_alive(), "request hung after worker death"
                assert errors and errors[0].code == "worker_died"

            # The pool respawned: a fresh request works, on a new pid.
            with ServiceClient(handle.host, handle.port) as c:
                health = c.health()
                assert health["alive"] == 1
                assert health["pids"][0] != victim
                assert c.count(n_events=2, delta_w=3000.0)["total"] >= 0
                assert c.stats(timeout=15)["service"]["pool"]["deaths"] == 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# admission control / load shedding
# ----------------------------------------------------------------------
class TestAdmission:
    def test_overload_rejects_with_retry_after(self, served_events):
        handle = start_in_thread(
            events=served_events[:50], workers=1, max_pending=1, overflow="reject"
        )
        try:
            blocker = ServiceClient(handle.host, handle.port)
            done = threading.Event()

            def hold():
                try:
                    blocker.sleep(3.0)
                finally:
                    done.set()

            thread = threading.Thread(target=hold)
            thread.start()
            time.sleep(0.3)  # the sleep occupies the only worker
            with ServiceClient(handle.host, handle.port) as c:
                with pytest.raises(ServiceError) as err:
                    c.count(n_events=2, delta_w=3000.0)
                assert err.value.code == "overloaded"
                assert err.value.retry_after > 0
            done.wait(timeout=30)
            thread.join(timeout=5)
            blocker.close()
            with ServiceClient(handle.host, handle.port) as c:
                shed = c.stats(timeout=15)["metrics"]["counters"]
                assert shed["service.shed{policy=reject}"] >= 1
        finally:
            handle.stop()

    def test_overload_degrades_to_estimate(self, served_events):
        pytest.importorskip("numpy")
        handle = start_in_thread(
            events=served_events[:200],
            workers=1,
            max_pending=1,
            overflow="degrade",
            degrade_q=0.5,
        )
        try:
            blocker = ServiceClient(handle.host, handle.port)
            thread = threading.Thread(target=lambda: blocker.sleep(1.5))
            thread.start()
            time.sleep(0.3)
            with ServiceClient(handle.host, handle.port) as c:
                # Queued behind the sleep, but answered — approximately.
                result = c.census(n_events=3, delta_w=3000.0, max_nodes=3, seed=5)
                assert result["degraded"] is True
                assert result["method"] == "root_sampling"
                assert result["q"] == 0.5
                assert set(result["stderr"]) == set(result["codes"])
            thread.join(timeout=30)
            blocker.close()
            with ServiceClient(handle.host, handle.port) as c:
                shed = c.stats(timeout=15)["metrics"]["counters"]
                assert shed["service.shed{policy=degrade}"] >= 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# pool units (no TCP in the loop)
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_least_loaded_dispatch_and_close(self, served_events):
        pool = WorkerPool({"kind": "events", "events": served_events[:50]}, workers=2)
        try:
            # Two sleeps pin one worker each (least-loaded), so the metas
            # behind them must land one per worker too.
            sleeps = [pool.submit({"op": "sleep", "seconds": 0.4}) for _ in range(2)]
            metas = [pool.submit({"op": "meta"}) for _ in range(2)]
            replies = [f.result(timeout=60) for f in sleeps + metas]
            assert all(r["ok"] for r in replies)
            pids = {r["result"]["pid"] for r in replies[2:]}
            assert len(pids) == 2  # both workers took jobs
        finally:
            pool.close()
        with pytest.raises(RuntimeError):
            pool.submit({"op": "meta"})

    def test_worker_error_reply(self, served_events):
        pool = WorkerPool({"kind": "events", "events": served_events[:50]}, workers=1)
        try:
            reply = pool.submit({"op": "count"}).result(timeout=60)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
        finally:
            pool.close()

    def test_snapshots_collects_workers(self, served_events):
        pool = WorkerPool({"kind": "events", "events": served_events[:50]}, workers=2)
        try:
            snaps = pool.snapshots(timeout=30)
            assert len(snaps) == 2
            assert all("counters" in snap for snap in snaps)
        finally:
            pool.close()
