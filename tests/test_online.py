"""Differential tests: the online census vs batch ``run_census``.

The engine's contract is a single invariant — after every push, its
counters equal a batch census of the equivalent ``slice_time`` window —
so the suite is built around Hypothesis streams that stress the shapes
the incremental path can get wrong: bursty same-timestamp ticks,
multi-edge repetitions, window-edge anchors, pruning rebases, and every
storage backend.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.counting import run_census
from repro.algorithms.restrictions import satisfies_consecutive_events
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.online import OnlineCensus
from repro.storage import available_backends

BACKENDS = tuple(b for b in ("list", "columnar", "numpy") if b in available_backends())


# ----------------------------------------------------------------------
# strategies: streams with the shapes that break incremental engines
# ----------------------------------------------------------------------
def event_streams(max_nodes=5, max_events=24):
    """Sorted event streams heavy on ties, bursts and repeated edges.

    Gaps are drawn from a zero-heavy palette, so same-timestamp ticks
    (carbon-copy bursts) and multi-edge repetitions appear constantly —
    the corners where strict ordering and window edges matter.
    """
    step = st.tuples(
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.0, 2.0, 5.0]),
    ).filter(lambda e: e[0] != e[1])

    def build(steps):
        t = 0.0
        events = []
        for u, v, dt in steps:
            t += dt
            events.append(Event(u, v, t))
        events.sort(key=lambda e: (e.t, e.u, e.v))
        return events

    return st.lists(step, min_size=1, max_size=max_events).map(build)


configs = st.tuples(
    st.sampled_from([2, 3, 3, 4]),                      # n_events
    st.sampled_from([2.0, 4.0, None]),                  # delta_c
    st.sampled_from([6.0, 12.0, None]),                 # delta_w
    st.sampled_from([3.0, 7.0, 15.0]),                  # window W
    st.sampled_from([None, 3]),                         # max_nodes
)


def _constraints(delta_c, delta_w):
    if delta_c is None and delta_w is None:
        return TimingConstraints(delta_w=8.0)
    return TimingConstraints(delta_c=delta_c, delta_w=delta_w)


def assert_prefix_parity(events, k, constraints, window, *, max_nodes=None, **engine_kwargs):
    """Push the stream event-by-event; batch-recount after every push."""
    engine = OnlineCensus(k, constraints, window, max_nodes=max_nodes, **engine_kwargs)
    prefix: list[Event] = []
    for ev in events:
        engine.push(ev)
        prefix.append(ev)
        ref = run_census(
            TemporalGraph(prefix).slice(ev.t - window, ev.t),
            k,
            constraints,
            max_nodes=max_nodes,
        )
        online = engine.census()
        assert online.code_counts == ref.code_counts
        assert online.total == ref.total
        assert online.pair_counts == ref.pair_counts
        assert online.pair_sequence_counts == ref.pair_sequence_counts
    return engine


# ----------------------------------------------------------------------
# the core differential property
# ----------------------------------------------------------------------
@given(event_streams(), configs)
@settings(max_examples=60, deadline=None)
def test_every_prefix_matches_batch_census(events, config):
    k, delta_c, delta_w, window, max_nodes = config
    assert_prefix_parity(events, k, _constraints(delta_c, delta_w), window, max_nodes=max_nodes)


@given(event_streams(), configs)
@settings(max_examples=30, deadline=None)
def test_parity_survives_aggressive_pruning(events, config):
    """prune_every=1 rebases the graph after every push; counts must hold."""
    k, delta_c, delta_w, window, max_nodes = config
    assert_prefix_parity(
        events,
        k,
        _constraints(delta_c, delta_w),
        window,
        max_nodes=max_nodes,
        prune_every=1,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(events=event_streams(max_events=16))
@settings(max_examples=15, deadline=None)
def test_parity_on_every_backend(backend, events):
    """The engine's live graph runs each backend's append-tail path."""
    constraints = TimingConstraints(delta_c=3.0, delta_w=6.0)
    engine = assert_prefix_parity(
        events, 3, constraints, 10.0, backend=backend, prune_every=7
    )
    assert engine.graph.backend == backend


def tie_free_streams(max_nodes=5, max_events=14):
    """Strictly increasing timestamps: the predicate-stability precondition.

    The consecutive-events restriction treats an event at exactly a
    motif's boundary timestamp as an interruption, so a same-tick arrival
    *after* discovery could flip a committed verdict — which is why the
    engine's predicate contract requires verdicts stable under strictly
    later arrivals.  Without ties that stability holds exactly.
    """
    step = st.tuples(
        st.integers(0, max_nodes - 1),
        st.integers(0, max_nodes - 1),
        st.sampled_from([0.5, 1.0, 1.0, 2.0, 5.0]),
    ).filter(lambda e: e[0] != e[1])

    def build(steps):
        t = 0.0
        events = []
        for u, v, dt in steps:
            t += dt
            events.append(Event(u, v, t))
        return events

    return st.lists(step, min_size=1, max_size=max_events).map(build)


@given(tie_free_streams())
@settings(max_examples=20, deadline=None)
def test_parity_with_shard_safe_predicate(events):
    """A window-local restriction predicate filters both sides alike."""
    constraints = TimingConstraints(delta_c=3.0, delta_w=6.0)
    window = 6.0  # window == ΔW: the slice holds the whole δ-neighborhood
    engine = OnlineCensus(
        3, constraints, window, max_nodes=3, predicate=satisfies_consecutive_events
    )
    prefix: list[Event] = []
    for ev in events:
        engine.push(ev)
        prefix.append(ev)
        ref = run_census(
            TemporalGraph(prefix).slice(ev.t - window, ev.t),
            3,
            constraints,
            max_nodes=3,
            predicate=satisfies_consecutive_events,
        )
        assert engine.counts() == ref.code_counts


# ----------------------------------------------------------------------
# the long randomized stream (the acceptance-criterion shape)
# ----------------------------------------------------------------------
def test_long_randomized_stream_parity():
    """A 10k-event bursty stream: spot-check batch parity along the way.

    Full per-prefix recounts at this size are quadratic, so a twin
    engine under prune_every=1 tracks the primary push-by-push (a full
    cross-check of the incremental state) and the batch recount runs at
    every 500th prefix and at the end.
    """
    rng = random.Random(20220713)
    t = 0.0
    events = []
    for _ in range(10_000):
        t += rng.choice([0.0, 0.0, 1.0, 1.0, 2.0, 3.0, 8.0])
        u = rng.randrange(40)
        v = rng.randrange(40)
        if u == v:
            v = (v + 1) % 40
        events.append(Event(u, v, t))
    events.sort(key=lambda e: (e.t, e.u, e.v))

    constraints = TimingConstraints(delta_c=6.0, delta_w=12.0)
    window = 40.0
    primary = OnlineCensus(3, constraints, window, max_nodes=3)
    twin = OnlineCensus(3, constraints, window, max_nodes=3, prune_every=1)
    prefix: list[Event] = []
    for i, ev in enumerate(events, start=1):
        primary.push(ev)
        twin.push(ev)
        prefix.append(ev)
        assert primary.counts() == twin.counts()
        if i % 500 == 0 or i == len(events):
            ref = run_census(
                TemporalGraph(prefix).slice(ev.t - window, ev.t),
                3,
                constraints,
                max_nodes=3,
            )
            online = primary.census()
            assert online.code_counts == ref.code_counts
            assert online.total == ref.total
    assert primary.discovered > 0
    assert primary.expired > 0
    assert len(twin.graph) < len(primary.graph)  # pruning really dropped history


# ----------------------------------------------------------------------
# window-edge and bookkeeping semantics
# ----------------------------------------------------------------------
class TestWindowEdges:
    def test_anchor_at_exact_window_edge_is_counted(self):
        constraints = TimingConstraints(delta_w=10.0)
        engine = OnlineCensus(2, constraints, 10.0)
        engine.push(Event(0, 1, 0.0))
        new = engine.push(Event(1, 2, 10.0))
        # anchor t=0 sits exactly at now - W = 0: still inside the
        # closed window, like slice_time's bisect_left.
        assert len(new) == 1
        assert engine.live_instances == 1

    def test_anchor_expires_just_past_the_edge(self):
        constraints = TimingConstraints(delta_w=10.0)
        engine = OnlineCensus(2, constraints, 10.0)
        engine.push(Event(0, 1, 0.0))
        engine.push(Event(1, 2, 10.0))
        engine.advance_to(10.5)
        assert engine.live_instances == 0
        assert engine.counts() == {}

    def test_fp_window_edge_matches_slice(self):
        # 8.3 - 4.4 rounds up past 3.9: the anchor check must use the
        # same subtraction as the batch slice, not a rearranged form.
        constraints = TimingConstraints(delta_w=4.4)
        window = 4.4
        events = [Event(0, 1, 3.9), Event(1, 2, 8.3)]
        engine = OnlineCensus(2, constraints, window)
        for ev in events:
            engine.push(ev)
        ref = run_census(
            TemporalGraph(events).slice(8.3 - window, 8.3), 2, constraints
        )
        assert engine.counts() == ref.code_counts

    def test_same_tick_events_never_share_an_instance(self):
        constraints = TimingConstraints(delta_w=10.0)
        engine = OnlineCensus(2, constraints, 10.0)
        engine.push(Event(0, 1, 5.0))
        new = engine.push(Event(1, 2, 5.0))
        assert new == []
        assert engine.live_instances == 0

    def test_instances_wider_than_window_never_counted(self):
        # ΔW admits the pair, but it cannot fit any trailing window.
        constraints = TimingConstraints(delta_w=10.0)
        engine = OnlineCensus(2, constraints, 5.0)
        engine.push(Event(0, 1, 0.0))
        assert engine.push(Event(1, 2, 8.0)) == []
        assert engine.counts() == {}


class TestBookkeeping:
    def test_push_rejects_backward_time(self):
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(0, 1, 5.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.push(Event(1, 2, 4.0))

    def test_push_rejects_predating_an_advanced_clock(self):
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(0, 1, 5.0))
        engine.advance_to(20.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.push(Event(1, 2, 10.0))

    def test_advance_cannot_go_backward(self):
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(0, 1, 5.0))
        with pytest.raises(ValueError, match="backward"):
            engine.advance_to(1.0)

    def test_constructor_validation(self):
        constraints = TimingConstraints(delta_w=5.0)
        with pytest.raises(ValueError, match="n_events"):
            OnlineCensus(0, constraints, 10.0)
        with pytest.raises(ValueError, match="window"):
            OnlineCensus(2, constraints, 0.0)
        with pytest.raises(ValueError, match="window"):
            OnlineCensus(2, constraints, float("inf"))
        with pytest.raises(ValueError, match="prune_every"):
            OnlineCensus(2, constraints, 10.0, prune_every=0)

    def test_ledger_identity(self):
        """discovered == live + expired, and drain indexes arrivals."""
        rng = random.Random(5)
        t = 0.0
        events = []
        for _ in range(150):
            t += rng.choice([0.0, 1.0, 2.0])
            u, v = rng.randrange(6), rng.randrange(6)
            if u == v:
                v = (v + 1) % 6
            events.append(Event(u, v, t))
        events.sort(key=lambda e: (e.t, e.u, e.v))
        engine = OnlineCensus(3, TimingConstraints(delta_c=2.0, delta_w=4.0), 6.0)
        for idx, new in engine.drain(events):
            for inst in new:
                assert inst[-1] == idx  # every new instance ends at the arrival
        assert engine.pushed == len(events)
        assert engine.discovered == engine.live_instances + engine.expired

    def test_returned_indices_resolve_against_graph(self):
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(3, 4, 1.0))
        new = engine.push(Event(4, 5, 2.0))
        assert new == [(0, 1)]
        assert engine.graph.event_at(new[0][0]) == Event(3, 4, 1.0)

    def test_global_indices_survive_pruning(self):
        engine = OnlineCensus(
            2, TimingConstraints(delta_w=2.0), 2.0, prune_every=1
        )
        for i in range(50):
            engine.push(Event(i % 3, (i + 1) % 3, float(10 * i)))
        assert len(engine.graph) < 50  # history was really dropped
        engine.push(Event(0, 1, 500.0))
        assert engine.push(Event(1, 2, 501.0)) == [(50, 51)]  # global indices

    def test_census_snapshot_fields(self):
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(0, 1, 1.0))
        engine.push(Event(1, 2, 2.0))
        census = engine.census()
        assert census.n_events == 2
        assert census.total == 1
        assert census.timespans == {} and census.intermediate_positions == {}
        assert sum(engine.proportions().values()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_restore_roundtrip_parity(tmp_path, backend):
    pytest.importorskip("numpy", reason="checkpoints use the numpy page format")
    rng = random.Random(11)
    t = 0.0
    events = []
    for _ in range(260):
        t += rng.choice([0.0, 1.0, 2.0])
        u, v = rng.randrange(8), rng.randrange(8)
        if u == v:
            v = (v + 1) % 8
        events.append(Event(u, v, t))
    events.sort(key=lambda e: (e.t, e.u, e.v))
    constraints = TimingConstraints(delta_c=3.0, delta_w=6.0)
    window = 10.0

    engine = OnlineCensus(3, constraints, window, prune_every=64)
    for ev in events[:160]:
        engine.push(ev)
    engine.snapshot(tmp_path / "ckpt")

    resumed = OnlineCensus.restore(tmp_path / "ckpt", backend=backend)
    assert resumed.counts() == engine.counts()
    assert resumed.pushed == engine.pushed
    assert resumed.graph.backend == backend
    for ev in events[160:]:
        engine.push(ev)
        resumed.push(ev)
        assert resumed.counts() == engine.counts()
    ref = run_census(
        TemporalGraph(events).slice(events[-1].t - window, events[-1].t),
        3,
        constraints,
    )
    assert resumed.census().code_counts == ref.code_counts
    assert resumed.census().total == ref.total


class TestCheckpointValidation:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        pytest.importorskip("numpy", reason="checkpoints use the numpy page format")
        engine = OnlineCensus(2, TimingConstraints(delta_w=5.0), 10.0)
        engine.push(Event(0, 1, 1.0))
        engine.push(Event(1, 2, 2.0))
        path = tmp_path / "ckpt"
        engine.snapshot(path)
        return path

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            OnlineCensus.restore(tmp_path / "nope")

    def test_wrong_format_rejected(self, checkpoint):
        import json

        state_path = checkpoint / "state.json"
        state = json.loads(state_path.read_text())
        state["format"] = "something-else"
        state_path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="format"):
            OnlineCensus.restore(checkpoint)

    def test_future_version_rejected(self, checkpoint):
        import json

        state_path = checkpoint / "state.json"
        state = json.loads(state_path.read_text())
        state["version"] = 99
        state_path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="version"):
            OnlineCensus.restore(checkpoint)

    def test_truncated_ledger_rejected(self, checkpoint):
        import json

        state_path = checkpoint / "state.json"
        state = json.loads(state_path.read_text())
        state["ledger"] = state["ledger"][:-1]
        state_path.write_text(json.dumps(state))
        with pytest.raises(ValueError, match="ledger"):
            OnlineCensus.restore(checkpoint)

    def test_predicate_mismatch_rejected(self, checkpoint):
        with pytest.raises(ValueError, match="predicate"):
            OnlineCensus.restore(checkpoint, predicate=lambda g, inst: True)

    def test_predicate_required_when_snapshotted_with_one(self, tmp_path):
        pytest.importorskip("numpy", reason="checkpoints use the numpy page format")
        engine = OnlineCensus(
            2,
            TimingConstraints(delta_w=5.0),
            10.0,
            predicate=satisfies_consecutive_events,
        )
        engine.push(Event(0, 1, 1.0))
        path = tmp_path / "ckpt"
        engine.snapshot(path)
        with pytest.raises(ValueError, match="predicate"):
            OnlineCensus.restore(path)
        resumed = OnlineCensus.restore(path, predicate=satisfies_consecutive_events)
        assert resumed.pushed == 1
