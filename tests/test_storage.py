"""The storage-engine contract and cross-backend parity suite.

Every backend registered in :mod:`repro.storage` must answer every query
identically to :class:`~repro.storage.ListStorage`, the reference
implementation extracted verbatim from the original ``TemporalGraph``.
The parity tests here sweep randomized generated graphs, so adding a
backend to ``BACKENDS`` below subjects it to the full contract.

``"numpy"`` registers only when NumPy is importable, so ``BACKENDS`` is
filtered against the live registry — on a NumPy-less interpreter the
suite covers the two pure-Python backends and skips the rest.
"""

from __future__ import annotations

import pytest

from repro.algorithms.counting import run_census
from repro.algorithms.enumeration import enumerate_instances
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph
from repro.datasets.generators import ActivityConfig, generate
from repro.storage import (
    ColumnarStorage,
    ENV_VAR,
    GraphStorage,
    ListStorage,
    available_backends,
    get_backend,
    make_storage,
    register_backend,
)

BACKENDS = tuple(
    name for name in ("list", "columnar", "numpy") if name in available_backends()
)

#: The backends parity-checked against the ``"list"`` reference.
NON_REFERENCE_BACKENDS = tuple(name for name in BACKENDS if name != "list")

EVENTS = [(0, 1, 10), (1, 2, 20), (0, 1, 30), (2, 0, 40), (1, 2, 40)]


def random_graph(seed: int, *, same_ts: bool = False) -> TemporalGraph:
    """A small, mechanism-rich generated graph (always list-backed)."""
    pytest.importorskip("numpy", reason="graph synthesis is numpy-seeded")
    config = ActivityConfig(
        n_nodes=40,
        n_events=300,
        timespan=30_000.0,
        p_reply=0.4,
        p_repeat=0.3,
        p_cc=0.3,
        p_forward=0.25,
        p_in_burst=0.2,
        cc_same_timestamp=same_ts,
        reaction_mean=60.0,
    )
    return generate(config, seed=seed)


def reference_and(backend: str, events) -> tuple[GraphStorage, GraphStorage]:
    """The ``"list"`` reference plus one backend under test, same events."""
    return (
        ListStorage.from_events(events),
        get_backend(backend).from_events(events),
    )


class TestRegistry:
    def test_available_backends(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_get_backend_by_name(self):
        assert get_backend("list") is ListStorage
        assert get_backend("columnar") is ColumnarStorage

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="columnar"):
            get_backend("no-such-engine")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "columnar")
        assert get_backend() is ColumnarStorage
        g = TemporalGraph.from_tuples(EVENTS)
        assert g.backend == "columnar"
        assert isinstance(g.storage, ColumnarStorage)

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "columnar")
        assert TemporalGraph.from_tuples(EVENTS, backend="list").backend == "list"

    def test_register_backend_roundtrip(self):
        class Fake(ListStorage):
            backend_name = "fake-for-test"

        register_backend("fake-for-test", Fake)
        try:
            assert get_backend("fake-for-test") is Fake
            assert TemporalGraph.from_tuples(
                EVENTS, backend="fake-for-test"
            ).backend == "fake-for-test"
        finally:
            from repro.storage import _BACKENDS

            _BACKENDS.pop("fake-for-test")

    def test_make_storage(self):
        storage = make_storage([Event(0, 1, 5.0)], backend="columnar")
        assert isinstance(storage, ColumnarStorage)
        assert storage.to_events() == (Event(0, 1, 5.0),)

    def test_numpy_backend_registered_iff_numpy_available(self):
        from repro.storage import NumpyStorage, numpy_backend

        if numpy_backend.available():
            assert "numpy" in available_backends()
            assert get_backend("numpy") is NumpyStorage
        else:
            assert "numpy" not in available_backends()


class TestContract:
    """Backend-agnostic contract checks, run against each backend."""

    @pytest.fixture(params=BACKENDS)
    def storage(self, request) -> GraphStorage:
        return make_storage(
            [Event(*tri) for tri in EVENTS], backend=request.param
        )

    def test_events_sorted_and_indexed(self, storage):
        assert [ev.t for ev in storage.events] == [10, 20, 30, 40, 40]
        assert storage.times == [10, 20, 30, 40, 40]
        assert len(storage) == 5

    def test_scalars(self, storage):
        assert storage.nodes == {0, 1, 2}
        assert storage.num_nodes == 3
        assert storage.num_edges == 3
        assert storage.start_time == 10
        assert storage.end_time == 40

    def test_empty(self, storage):
        empty = type(storage).from_events([])
        assert empty.to_events() == ()
        assert empty.start_time is None and empty.end_time is None
        assert empty.times == []
        assert empty.num_nodes == 0 and empty.num_edges == 0
        assert empty.events_in(0, 1e9) == []
        assert empty.node_events_in(0, 0, 1e9) == []

    def test_window_queries(self, storage):
        assert storage.node_events_in(0, 10, 30) == [0, 2]
        assert storage.count_node_events_in(1, 10, 40) == 4
        assert storage.edge_events_in((1, 2), 20, 40) == [1, 3]
        assert storage.count_edge_events_in((9, 9), 0, 100) == 0
        assert storage.events_in(20, 40) == [1, 2, 3, 4]
        assert storage.count_events_in(20, 40) == 4

    def test_node_events_between_is_half_open(self, storage):
        assert storage.node_events_between(0, 10, 40) == [2, 4]
        assert storage.node_events_between(0, 9, 40) == [0, 2, 4]
        assert storage.node_events_between(99, 0, 100) == []

    def test_point_lookups(self, storage):
        assert storage.node_event_indices(2) == [1, 3, 4]
        assert storage.edge_event_indices((0, 1)) == [0, 2]
        assert storage.neighbors(0) == {1, 2}
        assert storage.get_nbrs([0, 1]) == {0: [1, 2], 1: [0, 2]}

    def test_iter_uvt(self, storage):
        assert [tuple(x) for x in storage.iter_uvt()] == [
            (ev.u, ev.v, ev.t) for ev in storage.events
        ]

    def test_slice_time(self, storage):
        sliced = storage.slice_time(20, 40)
        assert sliced.to_events() == storage.events[1:]
        assert type(sliced) is type(storage)

    def test_slice_nodes(self, storage):
        sliced = storage.slice_nodes([0, 1])
        assert sliced.to_events() == (Event(0, 1, 10), Event(0, 1, 30))

    def test_coarsen(self, storage):
        coarse = storage.coarsen(25)
        assert set(ev.t for ev in coarse.to_events()) == {0, 25}
        assert len(coarse) == len(storage)
        with pytest.raises(ValueError):
            storage.coarsen(0)

    def test_append_and_update(self, storage):
        idx = storage.append(Event(3, 0, 41))
        assert idx == 5
        assert storage.events[5] == Event(3, 0, 41)
        assert storage.node_events_in(3, 0, 100) == [5]
        assert storage.num_nodes == 4
        assert storage.update([Event(3, 0, 41), Event(0, 1, 50)]) == [6, 7]
        assert storage.edge_event_indices((3, 0)) == [5, 6]
        assert storage.end_time == 50

    def test_append_rejects_out_of_order(self, storage):
        with pytest.raises(ValueError, match="non-decreasing"):
            storage.append(Event(5, 6, 1))

    def test_update_is_atomic_on_invalid_batch(self, storage):
        before = storage.to_events()
        with pytest.raises(ValueError, match="non-decreasing"):
            storage.update([Event(1, 5, 50), Event(1, 6, 45)])
        assert storage.to_events() == before  # nothing committed
        with pytest.raises(ValueError, match="self-loop"):
            storage.update([Event(1, 5, 50), Event(6, 6, 51)])
        assert storage.to_events() == before

    def test_event_at_matches_events_tuple(self, storage):
        for idx in range(len(storage)):
            assert storage.event_at(idx) == storage.events[idx]
        assert storage.event_at(-1) == storage.events[-1]
        storage.append(Event(7, 8, 99))
        assert storage.event_at(len(storage) - 1) == Event(7, 8, 99)

    def test_append_rejects_loops_and_negatives(self, storage):
        with pytest.raises(ValueError):
            storage.append(Event(5, 5, 99))
        empty = type(storage).from_events([])
        with pytest.raises(ValueError):
            empty.append(Event(0, 1, -1))


class TestColumnarInternals:
    def test_columns_are_flat_arrays(self):
        from array import array

        storage = ColumnarStorage.from_events([Event(*t) for t in EVENTS])
        assert isinstance(storage._col_u, array)
        assert storage._col_u.typecode == "q"
        assert storage._col_t.typecode == "d"
        assert list(storage._col_u) == [0, 1, 0, 1, 2]

    def test_python_fallback_matches_numpy_build(self):
        fast = ColumnarStorage.from_events([Event(*t) for t in EVENTS])
        slow = ColumnarStorage.from_events([])
        slow._build_python(fast.events)
        assert slow._node_slot.keys() == fast._node_slot.keys()
        for node in fast._node_slot:
            assert slow.node_event_indices(node) == fast.node_event_indices(node)
        for edge in fast._edge_slot:
            assert slow.edge_event_indices(edge) == fast.edge_event_indices(edge)
        assert list(slow._col_u) == list(fast._col_u)
        assert list(slow._col_t) == list(fast._col_t)

    def test_tail_compaction_preserves_answers(self):
        storage = ColumnarStorage.from_events([Event(*t) for t in EVENTS])
        storage.compact_threshold = 3
        for k in range(8):
            storage.append(Event(k % 3, (k + 1) % 3, 50 + k))
        assert len(storage._tail) < 3  # compaction fired
        reference = ListStorage.from_events(storage.to_events())
        assert storage.node_events == reference.node_events
        assert storage.edge_times == reference.edge_times

    def test_views_invalidate_on_append(self):
        storage = ColumnarStorage.from_events([Event(*t) for t in EVENTS])
        before = dict(storage.node_events)
        storage.append(Event(0, 2, 60))
        assert storage.node_events[0] == before[0] + [5]
        assert storage.times[-1] == 60


class TestBackendParity:
    """Every registered backend must be answer-identical to ListStorage."""

    @pytest.fixture(scope="class", params=[101, 202, 303])
    def seed_events(self, request):
        return random_graph(request.param, same_ts=request.param == 202).events

    @pytest.fixture(scope="class", params=NON_REFERENCE_BACKENDS)
    def pair(self, request, seed_events):
        return reference_and(request.param, seed_events)

    def test_views_identical_including_order(self, pair):
        ref, col = pair
        assert ref.events == col.events
        assert ref.times == col.times
        assert ref.node_events == col.node_events
        assert list(ref.node_events) == list(col.node_events)
        assert ref.node_times == col.node_times
        assert ref.edge_events == col.edge_events
        assert list(ref.edge_events) == list(col.edge_events)
        assert ref.edge_times == col.edge_times

    def test_windowed_queries_identical(self, pair):
        ref, col = pair
        t0, t1 = ref.start_time, ref.end_time
        span = t1 - t0
        cuts = [t0 - 1, t0, t0 + span / 4, t0 + span / 2, t0 + 3 * span / 4, t1, t1 + 1]
        nodes = sorted(ref.nodes)[:12] + [10**6]
        edges = list(ref.edge_events)[:12] + [(10**6, 10**6 + 1)]
        for lo in cuts:
            for hi in cuts:
                assert ref.events_in(lo, hi) == col.events_in(lo, hi)
                assert ref.count_events_in(lo, hi) == col.count_events_in(lo, hi)
                for node in nodes:
                    assert ref.node_events_in(node, lo, hi) == col.node_events_in(
                        node, lo, hi
                    )
                    assert ref.count_node_events_in(
                        node, lo, hi
                    ) == col.count_node_events_in(node, lo, hi)
                    assert ref.node_events_between(
                        node, lo, hi
                    ) == col.node_events_between(node, lo, hi)
                for edge in edges:
                    assert ref.edge_events_in(edge, lo, hi) == col.edge_events_in(
                        edge, lo, hi
                    )
                    assert ref.count_edge_events_in(
                        edge, lo, hi
                    ) == col.count_edge_events_in(edge, lo, hi)

    def test_slices_identical(self, pair):
        ref, col = pair
        t0, t1 = ref.start_time, ref.end_time
        mid = (t0 + t1) / 2
        assert ref.slice_time(t0, mid).to_events() == col.slice_time(t0, mid).to_events()
        some_nodes = sorted(ref.nodes)[::3]
        assert (
            ref.slice_nodes(some_nodes).to_events()
            == col.slice_nodes(some_nodes).to_events()
        )
        assert ref.coarsen(300).to_events() == col.coarsen(300).to_events()

    def test_neighbors_identical(self, pair):
        ref, col = pair
        for node in ref.nodes:
            assert ref.neighbors(node) == col.neighbors(node)
        nodes = sorted(ref.nodes)
        assert ref.get_nbrs(nodes) == col.get_nbrs(nodes)

    def test_batched_queries_identical(self, pair):
        ref, col = pair
        t0, t1 = ref.start_time, ref.end_time
        span = t1 - t0
        nodes = (sorted(ref.nodes)[:16] + [10**6]) * 2
        t_los = [t0 + (i % 7) * span / 7 - 1 for i in range(len(nodes))]
        t_his = [lo + span / 5 for lo in t_los]
        assert col.count_node_events_in_batch(
            nodes, t_los, t_his
        ) == ref.count_node_events_in_batch(nodes, t_los, t_his)
        windows = [(t0, t1), (t0 + span / 3, t0 + 2 * span / 3), (t1, t0), (t1, t1)]
        for lo, hi in windows:
            assert col.adjacent_events_between(
                nodes[:5], lo, hi
            ) == ref.adjacent_events_between(nodes[:5], lo, hi)

    def test_slice_range_and_shard_payload_identical(self, pair):
        ref, col = pair
        assert col.slice_range(3, 40).to_events() == ref.slice_range(3, 40).to_events()
        rebuilt = type(col).from_shard_payload(col.shard_payload(3, 40))
        assert rebuilt.to_events() == ref.events[3:40]
        assert type(rebuilt) is type(col)


class TestGraphLevelParity:
    """Whole-pipeline parity: enumeration and censuses across backends."""

    @pytest.mark.parametrize("seed", [7, 8])
    def test_enumerate_instances_identical(self, seed):
        graph = random_graph(seed)
        constraints = TimingConstraints(delta_c=600, delta_w=1800)
        per_backend = [
            list(
                enumerate_instances(
                    graph.with_backend(backend), 3, constraints, max_nodes=3
                )
            )
            for backend in BACKENDS
        ]
        assert per_backend[0], "sweep should find instances"
        assert all(insts == per_backend[0] for insts in per_backend[1:])

    @pytest.mark.parametrize("seed", [9, 10])
    def test_run_census_identical(self, seed):
        graph = random_graph(seed, same_ts=seed == 10)
        constraints = TimingConstraints.only_w(1800)
        censuses = [
            run_census(
                graph.with_backend(backend),
                3,
                constraints,
                max_nodes=3,
                collect_timespans=True,
            )
            for backend in BACKENDS
        ]
        first = censuses[0]
        assert first.total > 0
        for census in censuses[1:]:
            assert census.code_counts == first.code_counts
            assert census.pair_counts == first.pair_counts
            assert census.pair_sequence_counts == first.pair_sequence_counts
            assert census.timespans == first.timespans
            assert census.total == first.total


class TestTemporalGraphFacade:
    def test_backend_propagates_through_transformations(self):
        g = TemporalGraph.from_tuples(EVENTS, backend="columnar")
        assert g.backend == "columnar"
        for derived in (
            g.slice(10, 30),
            g.slice_nodes([0, 1]),
            g.head(2),
            g.degrade_resolution(25),
            g.filter_events(lambda ev: ev.u == 0),
            g.relabeled(),
        ):
            assert derived.backend == "columnar"

    def test_slice_nodes_induced_subgraph(self):
        g = TemporalGraph.from_tuples(EVENTS)
        sub = g.slice_nodes([0, 1])
        assert [ev.edge for ev in sub.events] == [(0, 1), (0, 1)]
        assert sub.nodes == {0, 1}
        assert sub.times == [10, 30]

    def test_slice_nodes_keeps_name_and_accepts_override(self):
        g = TemporalGraph.from_tuples(EVENTS, name="base")
        assert g.slice_nodes([0, 1]).name == "base"
        assert g.slice_nodes([0, 1], name="sub").name == "sub"

    def test_slice_nodes_empty_selection(self):
        g = TemporalGraph.from_tuples(EVENTS)
        assert len(g.slice_nodes([7, 8])) == 0

    def test_slice_nodes_then_census_roundtrip(self):
        graph = random_graph(55)
        nodes = sorted(graph.nodes)[: len(graph.nodes) // 2]
        constraints = TimingConstraints.only_w(900)
        direct = run_census(graph.slice_nodes(nodes), 2, constraints)
        rebuilt = run_census(
            TemporalGraph(graph.slice_nodes(nodes).events), 2, constraints
        )
        assert direct.code_counts == rebuilt.code_counts

    def test_append_extends_live_graph(self):
        g = TemporalGraph.from_tuples(EVENTS, backend="columnar")
        idx = g.append(Event(2, 1, 45))
        assert idx == 5
        assert g.events[idx] == Event(2, 1, 45)
        assert g.num_edges == 4
        assert g.extend([Event(2, 1, 50), Event(1, 0, 50)]) == [6, 7]
        assert g.edge_events_in((2, 1), 0, 100) == [5, 6]

    def test_with_backend_preserves_content(self):
        g = TemporalGraph.from_tuples(EVENTS, name="g")
        h = g.with_backend("columnar")
        assert h.backend == "columnar"
        assert h.events == g.events
        assert h.name == "g"
