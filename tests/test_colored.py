"""Tests for colored temporal motifs (Kovanen 2013 extension)."""

import pytest

from repro.core.colored import (
    color_assortativity,
    colored_code,
    count_colored_motifs,
    group_by_structure,
    homophily_gap,
    parse_colored_code,
    shuffle_colors,
)
from repro.core.constraints import TimingConstraints
from repro.core.events import Event
from repro.core.temporal_graph import TemporalGraph


@pytest.fixture
def colored_graph():
    graph = TemporalGraph.from_tuples(
        [(0, 1, 0), (1, 0, 5), (0, 2, 10), (2, 1, 15)]
    )
    colors = {0: "F", 1: "F", 2: "M"}
    return graph, colors


class TestColoredCode:
    def test_orbit_order(self, colored_graph):
        graph, colors = colored_graph
        assert colored_code(graph, (0, 1), colors) == "0110|F,F"
        assert colored_code(graph, (0, 2), colors) == "0102|F,F,M"

    def test_callable_coloring(self, colored_graph):
        graph, _colors = colored_graph
        code = colored_code(graph, (0, 1), lambda n: "even" if n % 2 == 0 else "odd")
        assert code == "0110|even,odd"

    def test_missing_color_raises(self, colored_graph):
        graph, _ = colored_graph
        with pytest.raises(KeyError):
            colored_code(graph, (0, 1), {0: "F"})

    def test_parse_roundtrip(self):
        code, colors = parse_colored_code("0110|F,M")
        assert code == "0110"
        assert colors == ("F", "M")

    def test_parse_rejects_uncolored(self):
        with pytest.raises(ValueError):
            parse_colored_code("0110")


class TestCounting:
    def test_counts_split_by_color(self, colored_graph):
        graph, colors = colored_graph
        counts = count_colored_motifs(
            graph, 2, TimingConstraints(delta_c=100, delta_w=100), colors
        )
        assert counts["0110|F,F"] == 1          # the ping-pong between the Fs
        assert sum(counts.values()) >= 3

    def test_structural_totals_match_uncolored(self, colored_graph):
        from repro.algorithms.counting import count_motifs

        graph, colors = colored_graph
        constraints = TimingConstraints(delta_c=100, delta_w=100)
        colored = count_colored_motifs(graph, 2, constraints, colors)
        plain = count_motifs(graph, 2, constraints)
        regrouped = group_by_structure(colored)
        assert {code: sum(c.values()) for code, c in regrouped.items()} == dict(plain)


class TestAssortativity:
    def test_monochrome_fraction(self):
        counts = {"0110|F,F": 3, "0110|F,M": 1}
        assert color_assortativity(counts) == 0.75

    def test_code_filter(self):
        counts = {"0110|F,F": 1, "0101|F,M": 1}
        assert color_assortativity(counts, code_filter="0110") == 1.0
        assert color_assortativity(counts, code_filter="0101") == 0.0
        assert color_assortativity(counts, code_filter="9999") == 0.0

    def test_empty(self):
        assert color_assortativity({}) == 0.0


class TestNullModel:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy", reason="the color shuffle is numpy-seeded")

    def test_shuffle_preserves_color_multiset(self):
        coloring = {i: ("F" if i < 7 else "M") for i in range(10)}
        shuffled = shuffle_colors(coloring, seed=3)
        assert sorted(shuffled.values()) == sorted(coloring.values())
        assert set(shuffled) == set(coloring)

    def test_homophily_detected_on_segregated_graph(self):
        """Two color-segregated cliques chatting internally -> observed
        monochrome fraction beats the shuffled null."""
        events = []
        t = 0.0
        for base in (0, 10):  # two groups of five nodes
            for step in range(40):
                u = base + step % 5
                v = base + (step + 1 + step // 5) % 5
                if u != v:
                    events.append(Event(u, v, t))
                    t += 10.0
        graph = TemporalGraph(events)
        coloring = {n: ("A" if n < 10 else "B") for n in graph.nodes}
        observed, null_mean = homophily_gap(
            graph,
            2,
            TimingConstraints(delta_c=100, delta_w=100),
            coloring,
            n_null=4,
            seed=0,
        )
        assert observed == 1.0
        assert observed > null_mean
